#!/bin/sh
# GVM interpreter perf gate: run the gvm_perf workloads (the
# interpreter-bound cores of gvm_microbench + listing1_sum_squares) in
# smoke mode, twice — full optimization vs GVM_OPT=off — and require a
# minimum speedup on every interpreter-bound workload, plus a shape
# check on the JSON report.
#
# The committed BENCH_gvm.json baseline comes from the full-size run:
#   cargo run --release -p gozer-bench --bin gvm_perf -- --compare --json BENCH_gvm.json
#
# The smoke threshold is deliberately far below the committed baseline
# speedups: it exists to catch "someone turned the fast paths off" (a
# ~1.0x reading), not to police machine-to-machine variance.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"
MIN_SPEEDUP="${GVM_MIN_SPEEDUP:-1.3}"

OUT="${TMPDIR:-/tmp}/gozer-gvm-smoke.$$"
mkdir -p "$OUT"
trap 'rm -rf "$OUT"' EXIT

echo "+ gvm_perf --compare --min-speedup $MIN_SPEEDUP (smoke)"
BENCH_SMOKE=1 "$CARGO" run --release $OFFLINE -q -p gozer-bench --bin gvm_perf -- \
    --compare --min-speedup "$MIN_SPEEDUP" --json "$OUT/gvm.json"

for key in '"schema"' '"full"' '"off"' '"speedup_full_vs_off"' '"fib"' '"loop_sum"' \
    '"loc_sum_squares_256"' '"par_sum_squares_256"' '"yield_resume_depth50"'; do
    grep -q "$key" "$OUT/gvm.json" \
        || { echo "gvm-smoke: $key missing from gvm.json" >&2; exit 1; }
done

echo "gvm-smoke: OK (worst interpreter-bound speedup >= ${MIN_SPEEDUP}x)"
