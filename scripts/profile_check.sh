#!/bin/sh
# profile-check: run the gozer-repl profiler on the example pipeline and
# assert the output is a usable profile — a hot-function table whose
# inclusive/exclusive columns are consistent, per-opcode counts,
# continuation costs with a nonzero serialize sample, and a folded-stack
# file every line of which flamegraph.pl would accept.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"

WORKFLOW=examples/pipeline.gz
FOLDED="$WORKFLOW.folded"
rm -f "$FOLDED"

OUT=$("$CARGO" run -q $OFFLINE -p gozer --bin gozer-repl -- \
    profile "$WORKFLOW" main 6)

fail=0
check() {
    # check <label> <grep-pattern>
    if printf '%s\n' "$OUT" | grep -q "$2"; then
        echo "profile-check: ok   $1"
    else
        echo "profile-check: FAIL — $1 (no match for '$2')"
        fail=1
    fi
}

check "workflow result"        '^result: 410$'
check "hot-function table"     '^== hot functions'
check "recursion attributed"   '^validate-digits '
check "fork child attributed"  '^audit '
check "opcode counts"          '^== opcodes'
check "call opcode counted"    '^call  *[1-9]'
check "continuation costs"     '^serialize:  *[1-9]'
check "nonzero serialize min"  'min [1-9][0-9]*ns'

if [ ! -f "$FOLDED" ]; then
    echo "profile-check: FAIL — folded stack file $FOLDED not written"
    fail=1
else
    # Every line must be "path weight" with a positive integer weight —
    # the exact shape flamegraph.pl consumes.
    bad=$(grep -cvE '^[^ ]+ [1-9][0-9]*$' "$FOLDED" || true)
    lines=$(grep -c . "$FOLDED" || true)
    if [ "$bad" -ne 0 ] || [ "$lines" -eq 0 ]; then
        echo "profile-check: FAIL — $FOLDED has $bad malformed line(s) of $lines"
        fail=1
    else
        echo "profile-check: ok   folded stacks ($lines lines, all well-formed)"
    fi
    if grep -q '^main' "$FOLDED" && grep -q ';' "$FOLDED"; then
        echo "profile-check: ok   folded stacks nest under main"
    else
        echo "profile-check: FAIL — folded stacks missing main root or nesting"
        fail=1
    fi
    rm -f "$FOLDED"
fi

[ "$fail" -eq 0 ] || exit 1
echo "profile-check: OK"
