#!/bin/sh
# Fuzz smoke: run every fuzz target for a bounded number of iterations.
# Each target feeds its parser adversarial input (random bytes, mutated
# valid records, pathological shapes) and requires Err-or-value — any
# panic, abort, or hang is a finding and fails the gate.
#
# FUZZ_ITERS widens the sweep (default 5000 per target); FUZZ_SEED pins
# the base seed for replay; FUZZ_VERBOSE=1 prints per-case seeds.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"
FUZZ_ITERS="${FUZZ_ITERS:-5000}"
export FUZZ_ITERS

# A wedged target is a finding too: bound each run's wall time.
# (POSIX sh has no built-in timeout; coreutils timeout is available.)
LIMIT="${FUZZ_TIMEOUT:-600}"

for target in reader compiler serial_state serial_delta log_replay frame_decode bytecode; do
    echo "+ fuzz $target ($FUZZ_ITERS iterations)"
    timeout "$LIMIT" "$CARGO" run --release $OFFLINE -q -p gozer-fuzz --bin "$target" \
        || { echo "fuzz-smoke: $target FAILED (panic, abort, or ${LIMIT}s hang)" >&2; exit 1; }
done

echo "fuzz-smoke: OK ($FUZZ_ITERS iterations x 7 targets, 0 findings)"
