#!/bin/sh
# recovery-check: the production-recovery gate.
#
# 1. The *armed* sweep — the full recovery suite (lease reclaim,
#    supervisor respawn/orphan resume, engine call retry, call-timeout
#    synthesis) with chaos enabled for the entire run and no harness
#    respawns anywhere. A failing seed prints its own replay command.
# 2. The dead-letter assertion — a poison message must land in
#    quarantine after the redelivery budget, surface as
#    gozer_dead_letters_total in the metrics export, and terminate its
#    task with a Failed record (checked on both the bluebox and vinz
#    sides).
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"
CHAOS_SEEDS="${CHAOS_SEEDS:-16}"
export CHAOS_SEEDS

run() {
    echo "+ $*"
    "$@"
}

# The armed sweep and its satellites (includes the flaky-service
# convergence sweep and the supervisor respawn test).
run "$CARGO" test -p vinz --test recovery $OFFLINE -- --nocapture

# Dead-letter lifecycle, broker side: budget spend, quarantine,
# observers, and the metrics family.
run "$CARGO" test -p bluebox --test recovery $OFFLINE

# Dead-letter lifecycle, task side: the quarantined message's task ends
# Failed with the counters moved.
run "$CARGO" test -p vinz --test recovery $OFFLINE \
    poisoned_run_fiber_dead_letters_and_fails_the_task -- --exact

echo "recovery-check: OK (armed sweep width $CHAOS_SEEDS)"
