#!/bin/sh
# Store smoke: the §5 production-day bench with BENCH_SMOKE=1 (slice and
# store-replay populations shrunk so it finishes in seconds), then a
# shape check on the JSON report — the same fields as the committed
# BENCH_store.json baseline. Shape only, no perf gating: CI machines are
# too noisy to assert the LogStore speedup factor here (the committed
# baseline records it from a quiet machine).
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"

OUT="${TMPDIR:-/tmp}/gozer-store-smoke.$$.json"
trap 'rm -f "$OUT"' EXIT

echo "+ production-day bench (smoke)"
env BENCH_SMOKE=1 GOZER_PROFILE=0 "$CARGO" run --release $OFFLINE -q -p gozer-bench \
    --bin sec5_production_day -- --json "$OUT"

for key in '"slice"' '"tasks"' '"completed"' '"persists"' \
           '"store"' '"file_saves_per_sec"' '"log_saves_per_sec"' '"speedup"' \
           '"file_fsyncs"' '"log_fsyncs"' '"log_group_commits"' '"log_bytes"'; do
    grep -q "$key" "$OUT" \
        || { echo "store-smoke: $key missing from store report" >&2; exit 1; }
done

# The one perf-adjacent fact stable enough to gate: group commit must
# actually amortize — strictly fewer fsyncs than saves.
log_fsyncs=$(sed -n 's/.*"log_fsyncs": \([0-9]*\).*/\1/p' "$OUT")
file_fsyncs=$(sed -n 's/.*"file_fsyncs": \([0-9]*\).*/\1/p' "$OUT")
[ -n "$log_fsyncs" ] && [ -n "$file_fsyncs" ] && [ "$log_fsyncs" -lt "$file_fsyncs" ] \
    || { echo "store-smoke: group commit did not amortize fsyncs ($log_fsyncs vs $file_fsyncs)" >&2; exit 1; }

echo "store-smoke: OK"
