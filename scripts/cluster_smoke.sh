#!/bin/sh
# Multi-process cluster smoke: boot a broker (vinz deployment with a TCP
# listener), attach two real gozer-worker OS processes, stream remote
# calls through them, `kill -9` one worker mid-stream, restart it, and
# require every task to finish with the exact value. The one gate that
# exercises the transport with genuine process death outside the cargo
# test harness.
#
# Orphan safety: every spawned pid is reaped by the EXIT/INT/TERM trap,
# and a final pattern sweep catches workers whose pids we lost track of.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"

echo "+ $CARGO build --release $OFFLINE -p gozer-worker"
"$CARGO" build --release $OFFLINE -p gozer-worker

WORKER=target/release/gozer-worker
DRIVER=target/release/cluster-smoke
TMP="${TMPDIR:-/tmp}/gozer-cluster-smoke.$$"
mkdir -p "$TMP"

W0_PID=""
W1_PID=""
DRIVER_PID=""

cleanup() {
    # Reap everything we started, then sweep for orphans by pattern
    # (workers reconnect forever if the broker died first; never leak
    # them past the gate).
    for pid in "$W0_PID" "$W1_PID" "$DRIVER_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    pkill -9 -f "gozer-worker --broker" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

# Broker side: publishes its ephemeral address, waits for the fleet,
# then streams 40 staggered tasks (~2s of live remote traffic).
"$DRIVER" --addr-file "$TMP/addr" --workers 2 --tasks 40 \
    --spin-ms 25 --stagger-ms 50 > "$TMP/driver.out" 2>"$TMP/driver.err" &
DRIVER_PID=$!

# Wait for the broker to publish its address.
i=0
while [ ! -s "$TMP/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "cluster-smoke: broker never published its address" >&2
        cat "$TMP/driver.err" >&2 || true
        exit 1
    fi
    kill -0 "$DRIVER_PID" 2>/dev/null || {
        echo "cluster-smoke: broker exited before publishing its address" >&2
        cat "$TMP/driver.err" >&2 || true
        exit 1
    }
    sleep 0.1
done
ADDR="$(cat "$TMP/addr")"
echo "cluster-smoke: broker at $ADDR"

"$WORKER" --broker "$ADDR" --name s0 --node 100 --service Compute:2 --seed 1 &
W0_PID=$!
"$WORKER" --broker "$ADDR" --name s1 --node 101 --service Compute:2 --seed 2 &
W1_PID=$!

# Let the stream get going, then kill -9 a worker mid-stream — no
# signal handler, no flush — and restart it a moment later.
sleep 1
echo "cluster-smoke: kill -9 worker s0 (pid $W0_PID)"
kill -9 "$W0_PID"
wait "$W0_PID" 2>/dev/null || true
W0_PID=""
sleep 0.3
"$WORKER" --broker "$ADDR" --name s0 --node 100 --service Compute:2 --seed 3 &
W0_PID=$!
echo "cluster-smoke: restarted worker s0 (pid $W0_PID)"

# The driver's exit code is the verdict; RESULT line is the receipt.
STATUS=0
wait "$DRIVER_PID" || STATUS=$?
DRIVER_PID=""
cat "$TMP/driver.out"
if [ "$STATUS" -ne 0 ]; then
    echo "cluster-smoke: FAILED (driver exit $STATUS)" >&2
    cat "$TMP/driver.err" >&2 || true
    exit 1
fi
grep -q "^RESULT ok" "$TMP/driver.out" || {
    echo "cluster-smoke: FAILED (no RESULT ok line)" >&2
    exit 1
}

echo "cluster-smoke: OK (one kill -9 + restart survived)"
