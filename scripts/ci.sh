#!/bin/sh
# CI gate: release build, full test suite, and the 16-seed chaos sweep.
#
# Offline-friendly: the workspace uses only in-tree path dependencies,
# so --offline always works; we pass it when the network is known-bad
# and let plain cargo work everywhere else.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"

run() {
    echo "+ $*"
    "$@"
}

run "$CARGO" build --release $OFFLINE
run "$CARGO" test -q $OFFLINE

# The deterministic chaos sweep: 16 seeds (CHAOS_SEEDS to widen). A
# failing seed prints its own one-line replay command.
CHAOS_SEEDS="${CHAOS_SEEDS:-16}"
export CHAOS_SEEDS
run "$CARGO" test -p vinz --test chaos $OFFLINE -- --nocapture
run "$CARGO" test -p bluebox chaos $OFFLINE
run "$CARGO" test --test survivability $OFFLINE

# Recovery gate: the armed sweep (chaos stays enabled; leases,
# supervisor, and retries absorb every failure) plus the dead-letter
# quarantine assertions.
run make recovery-check

# Observability gate: the text exporter must serve all required metric
# families with non-zero activity after a real workflow run.
run make obs-check

# Profiler gate: `gozer-repl profile` on the example pipeline must emit
# a consistent hot-function report and well-formed folded stacks.
run make profile-check

# Introspection gate: the live HTTP endpoint must serve /metrics
# (byte-identical to the in-process exporter), /healthz, /tasks, and
# /timeline/<task> with well-formed payloads.
run make introspect-check

# Bench smoke: run the serialization and cache benches with shrunk
# populations (BENCH_SMOKE=1) and validate the JSON report shape — the
# same reports committed at the repo root as BENCH_*.json baselines.
# Shape only, no perf gating: CI machines are too noisy for thresholds.
BENCH_TMP="${TMPDIR:-/tmp}/gozer-bench-smoke.$$"
mkdir -p "$BENCH_TMP"
trap 'rm -rf "$BENCH_TMP"' EXIT
run env BENCH_SMOKE=1 "$CARGO" run --release $OFFLINE -q -p gozer-bench \
    --bin fig1_workflow_lifetime -- --json "$BENCH_TMP/serialization.json"
run env BENCH_SMOKE=1 "$CARGO" run --release $OFFLINE -q -p gozer-bench \
    --bin sec42_cache -- --json "$BENCH_TMP/cache.json"
for key in '"delta_saves"' '"bytes_per_save"' '"steady_state"' '"reduction"'; do
    grep -q "$key" "$BENCH_TMP/serialization.json" \
        || { echo "bench-smoke: $key missing from serialization.json" >&2; exit 1; }
done
for key in '"mutable_affinity_on"' '"mutable_affinity_off"' '"affinity_hit_rate"' '"paper_mutable_rate"'; do
    grep -q "$key" "$BENCH_TMP/cache.json" \
        || { echo "bench-smoke: $key missing from cache.json" >&2; exit 1; }
done
echo "bench-smoke: OK"

# Adversarial-input gate: bounded-iteration run of every fuzz target
# (reader, compiler, serial state, serial delta) — any panic, abort, or
# hang is a finding — plus the downscaled scale bench with its JSON
# shape check.
FUZZ_ITERS="${FUZZ_ITERS:-2000}"
export FUZZ_ITERS
run make fuzz-smoke

run make scale-smoke

# GVM interpreter perf gate: smoke-mode gvm_perf, full vs GVM_OPT=off,
# with a deliberately loose minimum-speedup assertion (catches "fast
# paths wired off", not machine variance) and a JSON shape check.
run make gvm-smoke

# Store smoke: the production-day bench (cluster slice + the
# FileStore-vs-LogStore saves/sec replay) with its JSON shape check and
# the fsync-amortization assertion.
run make store-smoke

# Multi-process transport gate: real gozer-worker OS processes over the
# TCP transport, one genuine kill -9 + restart mid-stream, exact values
# required. cluster_smoke.sh traps EXIT/INT/TERM and reaps any orphaned
# worker processes, so a failed gate cannot leak children into CI.
run make cluster-smoke

echo "ci: OK (chaos sweep width $CHAOS_SEEDS)"
