#!/bin/sh
# CI gate: release build, full test suite, and the 16-seed chaos sweep.
#
# Offline-friendly: the workspace uses only in-tree path dependencies,
# so --offline always works; we pass it when the network is known-bad
# and let plain cargo work everywhere else.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"

run() {
    echo "+ $*"
    "$@"
}

run "$CARGO" build --release $OFFLINE
run "$CARGO" test -q $OFFLINE

# The deterministic chaos sweep: 16 seeds (CHAOS_SEEDS to widen). A
# failing seed prints its own one-line replay command.
CHAOS_SEEDS="${CHAOS_SEEDS:-16}"
export CHAOS_SEEDS
run "$CARGO" test -p vinz --test chaos $OFFLINE -- --nocapture
run "$CARGO" test -p bluebox chaos $OFFLINE
run "$CARGO" test --test survivability $OFFLINE

# Recovery gate: the armed sweep (chaos stays enabled; leases,
# supervisor, and retries absorb every failure) plus the dead-letter
# quarantine assertions.
run make recovery-check

# Observability gate: the text exporter must serve all required metric
# families with non-zero activity after a real workflow run.
run make obs-check

# Profiler gate: `gozer-repl profile` on the example pipeline must emit
# a consistent hot-function report and well-formed folded stacks.
run make profile-check

echo "ci: OK (chaos sweep width $CHAOS_SEEDS)"
