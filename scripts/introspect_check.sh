#!/bin/sh
# introspect-check: boot a deployment with the live introspection server
# on an ephemeral port, run a workflow, and fetch /metrics, /healthz,
# /tasks, and /timeline/<task> over a plain TCP connection — the same
# path an external Prometheus scrape or curl takes. The driver binary
# (gozer-introspect-check) does the HTTP legwork and asserts the scraped
# /metrics body is byte-identical to the in-process exporter; this
# script shape-checks every route's payload.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"

OUT=$("$CARGO" run -q $OFFLINE -p gozer --bin gozer-introspect-check)

fail=0
check() {
    # check <label> <grep-pattern>
    if printf '%s\n' "$OUT" | grep -q "$2"; then
        echo "introspect-check: ok   $1"
    else
        echo "introspect-check: FAIL — $1 (no match for '$2')"
        fail=1
    fi
}

check "healthz served"         '^== /healthz HTTP/1.1 200 OK$'
check "healthz verdict"        '^ok$'
check "healthz reaper signal"  '^reaper: alive$'
check "healthz instances"      '^instances: 4/4$'
check "tasks served"           '^== /tasks HTTP/1.1 200 OK$'
check "tasks row final"        '^task-1 completed - fibers='
check "timeline served"        '^== /timeline/task-1 HTTP/1.1 200 OK$'
check "timeline header"        '^task task-1$'
check "timeline critical path" '^  critical path:$'
check "timeline totals"        '^  critical totals: '
check "metrics byte-identity"  '^== /metrics byte-identity MATCH$'
check "phase family scraped"   '^# TYPE gozer_task_phase_seconds histogram$'
check "phase samples recorded" '^gozer_task_phase_seconds_count{phase="vm_exec",service="workflow"} [1-9]'
check "latency family scraped" '^gozer_task_latency_seconds_count{service="workflow"} [1-9]'

if [ "$fail" -ne 0 ]; then
    echo "introspect-check: driver output follows for diagnosis" >&2
    printf '%s\n' "$OUT" >&2
    exit 1
fi
echo "introspect-check: OK"
