#!/bin/sh
# obs-check: run an example workflow, scrape the metrics text exporter,
# and assert every required family is present with non-zero activity.
# A regression that stops broker or Vinz events from reaching the
# unified observability layer fails this gate even while functional
# tests still pass.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"

OUT="$("$CARGO" run -q $OFFLINE --example observability)"

fail=0
# Counters are asserted on their sample line, histograms on _count.
for family in \
    bluebox_messages_sent_total \
    bluebox_messages_delivered_total \
    bluebox_queue_wait_seconds_count \
    bluebox_handler_busy_seconds_count \
    vinz_tasks_started_total \
    vinz_fibers_run_total \
    vinz_fiber_persists_total
do
    line=$(printf '%s\n' "$OUT" | grep "^$family" | head -1 || true)
    if [ -z "$line" ]; then
        echo "obs-check: FAIL — family $family missing from exporter output"
        fail=1
        continue
    fi
    value=${line##* }
    case "$value" in
        0 | 0.0)
            echo "obs-check: FAIL — $family is zero"
            fail=1
            ;;
        *)
            echo "obs-check: ok   $family = $value"
            ;;
    esac
done

[ "$fail" -eq 0 ] || exit 1
echo "obs-check: OK"
