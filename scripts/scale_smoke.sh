#!/bin/sh
# Scale smoke: the 1M-fiber scale bench with BENCH_SMOKE=1 (population
# shrunk to thousands so it finishes in seconds), then a shape check on
# the JSON report — the same fields as the committed BENCH_scale.json
# baseline. Shape only, no perf gating: CI machines are too noisy.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"

OUT="${TMPDIR:-/tmp}/gozer-scale-smoke.$$.json"
LAT="${TMPDIR:-/tmp}/gozer-latency-smoke.$$.json"
trap 'rm -f "$OUT" "$LAT"' EXIT

echo "+ scale bench (smoke)"
env BENCH_SMOKE=1 "$CARGO" run --release $OFFLINE -q -p gozer-bench \
    --bin scale -- --json "$OUT" --latency-json "$LAT"

for key in '"suspended_fibers_peak"' '"suspended_fibers_during_churn"' \
           '"starts_per_min"' '"p50"' '"p95"' '"p99"' \
           '"rejected"' '"delayed"' '"sampled"' '"completed"'; do
    grep -q "$key" "$OUT" \
        || { echo "scale-smoke: $key missing from scale report" >&2; exit 1; }
done

# The latency-attribution report: same shape as the committed
# BENCH_latency.json baseline — the closed phase label set plus the
# p99-per-phase fields and the phase/latency reconciliation ratio.
for key in '"phase_coverage"' '"p99_ms"' '"total_seconds"' '"share"' \
           '"queue_wait"' '"durability_hold"' '"lease_redelivery"' \
           '"serialize"' '"deserialize"' '"vm_exec"' '"service_wait"' \
           '"suspended"' '"admission"'; do
    grep -q "$key" "$LAT" \
        || { echo "scale-smoke: $key missing from latency report" >&2; exit 1; }
done

echo "scale-smoke: OK"
