#!/bin/sh
# Scale smoke: the 1M-fiber scale bench with BENCH_SMOKE=1 (population
# shrunk to thousands so it finishes in seconds), then a shape check on
# the JSON report — the same fields as the committed BENCH_scale.json
# baseline. Shape only, no perf gating: CI machines are too noisy.
set -eu

cd "$(dirname "$0")/.."

CARGO="${CARGO:-cargo}"
OFFLINE="${CARGO_OFFLINE:---offline}"

OUT="${TMPDIR:-/tmp}/gozer-scale-smoke.$$.json"
trap 'rm -f "$OUT"' EXIT

echo "+ scale bench (smoke)"
env BENCH_SMOKE=1 "$CARGO" run --release $OFFLINE -q -p gozer-bench \
    --bin scale -- --json "$OUT"

for key in '"suspended_fibers_peak"' '"suspended_fibers_during_churn"' \
           '"starts_per_min"' '"p50"' '"p95"' '"p99"' \
           '"rejected"' '"delayed"' '"sampled"' '"completed"'; do
    grep -q "$key" "$OUT" \
        || { echo "scale-smoke: $key missing from scale report" >&2; exit 1; }
done

echo "scale-smoke: OK"
