//! Top-level package of the Gozer reproduction: hosts the repo-wide
//! integration tests (`tests/`) and runnable examples (`examples/`). The
//! actual library lives in the [`gozer`] facade crate; this simply
//! re-exports it.

pub use gozer::*;
