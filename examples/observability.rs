//! The unified observability layer: one workflow run, three views.
//!
//! 1. The **per-task timeline** — every fiber as a span (children
//!    indented under the fiber that forked them), each event annotated
//!    with the node/instance it executed on and its message id.
//! 2. The **metrics exporter** — broker and Vinz counters/histograms in
//!    Prometheus text format, as a scrape endpoint would serve them.
//! 3. A **snapshot diff** — mean queue-wait and handler-busy latencies
//!    computed over exactly the interval between two snapshots.
//!
//! ```bash
//! cargo run --example observability
//! ```

use std::time::Duration;

use gozer::{GozerSystem, Value};

const WORKFLOW: &str = r#"
(defun main (n)
  (apply #'+ (for-each (i in (range n)) (* i i))))
"#;

fn main() {
    let system = GozerSystem::builder()
        .nodes(2)
        .instances_per_node(2)
        .workflow(WORKFLOW)
        .build()
        .expect("deploy");

    // One handle to everything: the event bus, the task tracker, the
    // metrics registry, the timeline renderer.
    let obs = system.workflow.obs();
    obs.set_tracing(true);
    let before = obs.snapshot();

    let v = system
        .call("main", vec![Value::Int(6)], Duration::from_secs(60))
        .expect("workflow");
    assert_eq!(v, Value::Int((0..6).map(|i| i * i).sum()));

    println!("== per-task timeline ==========================================\n");
    print!("{}", obs.render());

    println!("\n== metrics (Prometheus text format) ===========================\n");
    print!("{}", obs.export_text());

    let delta = obs.snapshot().diff(&before);
    println!("\n== latencies over this run (snapshot diff) ====================\n");
    for (label, key) in [
        ("queue wait", "bluebox_queue_wait_seconds"),
        ("handler busy", "bluebox_handler_busy_seconds"),
    ] {
        match delta.histogram(key).and_then(|h| h.mean()) {
            Some(mean) => println!("mean {label:<13}: {mean:.2?}"),
            None => println!("mean {label:<13}: n/a"),
        }
    }
    system.shutdown();
}
