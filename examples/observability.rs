//! The unified observability layer: one workflow run, five views.
//!
//! 1. The **per-task timeline** — every fiber as a span (children
//!    indented under the fiber that forked them), each event annotated
//!    with the node/instance it executed on and its message id, plus
//!    the task's **critical path**: the chain of phases (queue wait,
//!    VM execution, serialization, service wait, durability holds) that
//!    actually bounded its wall-clock.
//! 2. The **phase breakdown** — each finished task's latency decomposed
//!    into named phases that sum back to exactly its measured duration.
//! 3. The **metrics exporter** — broker and Vinz counters/histograms in
//!    Prometheus text format, as a scrape endpoint would serve them.
//! 4. A **snapshot diff** — mean queue-wait and handler-busy latencies
//!    computed over exactly the interval between two snapshots.
//! 5. The **live introspection endpoint** — the same views over plain
//!    HTTP. Run with a scraping window and curl it:
//!
//!    ```bash
//!    GOZER_INTROSPECT_WAIT_SECS=30 cargo run --example observability
//!    # then, against the printed address:
//!    curl http://<printed-addr>/metrics
//!    curl http://<printed-addr>/healthz
//!    curl http://<printed-addr>/tasks
//!    curl http://<printed-addr>/timeline/task-1
//!    ```
//!
//! ```bash
//! cargo run --example observability
//! ```

use std::time::Duration;

use gozer::{GozerSystem, Phase, Value};

const WORKFLOW: &str = r#"
(defun main (n)
  (apply #'+ (for-each (i in (range n)) (* i i))))
"#;

fn main() {
    let system = GozerSystem::builder()
        .nodes(2)
        .instances_per_node(2)
        .workflow(WORKFLOW)
        .introspect("127.0.0.1:0")
        .build()
        .expect("deploy");

    // One handle to everything: the event bus, the task tracker, the
    // metrics registry, the timeline renderer.
    let obs = system.workflow.obs();
    obs.set_tracing(true);
    let before = obs.snapshot();

    let v = system
        .call("main", vec![Value::Int(6)], Duration::from_secs(60))
        .expect("workflow");
    assert_eq!(v, Value::Int((0..6).map(|i| i * i).sum()));

    println!("== per-task timeline (with critical path) =====================\n");
    print!("{}", obs.render());

    println!("\n== phase breakdown (sums exactly to task latency) =============\n");
    for rec in obs.tracker().all() {
        println!(
            "{}: latency {:.3?}  [{}]",
            rec.id,
            rec.duration(),
            rec.phases.render()
        );
        if let Some((phase, spent)) = rec.phases.dominant() {
            println!("  dominant phase: {phase} ({spent:.3?})");
        }
        assert_eq!(rec.phases.total(), rec.duration());
        assert!(rec.phases.get(Phase::Admission).is_zero());
    }

    println!("\n== metrics (Prometheus text format) ===========================\n");
    print!("{}", obs.export_text());

    let delta = obs.snapshot().diff(&before);
    println!("\n== latencies over this run (snapshot diff) ====================\n");
    for (label, key) in [
        ("queue wait", "bluebox_queue_wait_seconds"),
        ("handler busy", "bluebox_handler_busy_seconds"),
    ] {
        match delta.histogram(key).and_then(|h| h.mean()) {
            Some(mean) => println!("mean {label:<13}: {mean:.2?}"),
            None => println!("mean {label:<13}: n/a"),
        }
    }

    let addr = system.workflow.introspect_addr().expect("introspect bound");
    println!("\n== live introspection ==========================================\n");
    println!("serving http://{addr}/metrics  /healthz  /tasks  /timeline/<task-id>");
    // Interactive exploration: GOZER_INTROSPECT_WAIT_SECS=30 keeps the
    // server up for curl; the default exits immediately (CI scrapes the
    // endpoint through `make introspect-check` instead).
    let wait = std::env::var("GOZER_INTROSPECT_WAIT_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    if wait > 0 {
        println!("(scraping window: {wait}s — e.g. `curl http://{addr}/healthz`)");
        std::thread::sleep(Duration::from_secs(wait));
    }
    system.shutdown();
}
