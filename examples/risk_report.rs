//! A realistic scenario from the paper's domain (RiskMetrics processed
//! financial data): a nightly portfolio risk report.
//!
//! The workflow fetches portfolio holdings from a `PortfolioService`
//! through `deflink`-generated non-blocking stubs, fans out valuation of
//! each position across the cluster with a chunked `for-each` (distributed
//! fibers + local futures), aggregates exposures, and uses a task variable
//! as a circuit breaker that aborts pricing when a data problem is
//! discovered mid-run.
//!
//! ```bash
//! cargo run --example risk_report
//! ```

use std::sync::Arc;
use std::time::Duration;

use gozer::testing::register_value_service;
use gozer::{Cluster, Fault, GozerSystem, ServiceDescription, Value};

const WORKFLOW: &str = r#"
(deflink PS :wsdl "urn:portfolio-service" :port "PortfolioService")

(deftaskvar abort-pricing "Set when a data problem makes results unusable.")

(defhandler pricing-retry
  :code ("{urn:portfolio}Transient")
  :action retry
  :count 3)

(defun value-position (position)
  "Value one position unless the task has been aborted."
  (unless ^abort-pricing^
    (let ((qty (get position :quantity))
          (price (get position :price)))
      (if (< price 0)
          ;; Bad market data: flip the breaker so remaining fibers skip
          ;; work, then report nothing for this position.
          (progn (setf ^abort-pricing^ t) nil)
          {:instrument (get position :instrument)
           :exposure (* qty price)}))))

(defun risk-report (portfolio-id)
  "Value every position of PORTFOLIO-ID and produce exposure totals."
  (let ((positions (with-handler pricing-retry
                     (PS-GetPositions-Method :PortfolioId portfolio-id))))
    (let ((valued (for-each (p in positions :chunk-size 4)
                    (value-position p))))
      (if ^abort-pricing^
          {:status :aborted :portfolio portfolio-id}
          {:status :ok
           :portfolio portfolio-id
           :positions (length valued)
           :total-exposure
           (apply #'+ (mapcar (lambda (v) (get v :exposure))
                              (remove nil valued)))}))))
"#;

fn portfolio_service(cluster: &Arc<Cluster>, poison: bool) {
    let desc = ServiceDescription::new("PortfolioService", "urn:portfolio-service").operation(
        "GetPositions",
        "Returns the positions held by a portfolio.",
        &[("PortfolioId", "string")],
    );
    register_value_service(cluster, "PortfolioService", Some(desc), move |_op, req| {
        let id = req
            .as_map()
            .and_then(|m| m.get(&Value::str("PortfolioId")).cloned())
            .and_then(|v| v.as_str().map(str::to_owned))
            .ok_or_else(|| Fault::new("{urn:portfolio}BadRequest", "missing PortfolioId"))?;
        let mut positions = Vec::new();
        for i in 0..12i64 {
            let mut m = gozer_lang::AssocMap::new();
            m.insert(Value::keyword("instrument"), Value::str(format!("{id}-instr-{i}")));
            m.insert(Value::keyword("quantity"), Value::Int(100 + i * 10));
            // In the poisoned run, one position carries a negative price.
            let price = if poison && i == 7 { -1 } else { 5 + (i % 3) };
            m.insert(Value::keyword("price"), Value::Int(price));
            positions.push(Value::Map(Arc::new(m)));
        }
        Ok(Value::list(positions))
    });
    cluster.spawn_instances("PortfolioService", 0, 2);
}

fn run(portfolio: &str, poison: bool) {
    let cluster = Cluster::new();
    portfolio_service(&cluster, poison);
    let system = GozerSystem::builder()
        .cluster(cluster)
        .nodes(3)
        .instances_per_node(2)
        .workflow(WORKFLOW)
        .build()
        .expect("deploy");
    let report = system
        .call(
            "risk-report",
            vec![Value::str(portfolio)],
            Duration::from_secs(60),
        )
        .expect("risk report");
    println!("report for {portfolio}: {report:?}");
    let status = report
        .as_map()
        .and_then(|m| m.get(&Value::keyword("status")).cloned())
        .unwrap();
    if poison {
        assert_eq!(status, Value::keyword("aborted"));
    } else {
        assert_eq!(status, Value::keyword("ok"));
    }
    system.shutdown();
}

fn main() {
    println!("-- clean market data ------------------------------------");
    run("growth-fund", false);
    println!("\n-- poisoned market data (circuit breaker trips) ----------");
    run("legacy-fund", true);
}
