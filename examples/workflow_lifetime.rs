//! Figure 1 — "Sample Workflow Lifetime": run a small workflow that makes
//! a non-blocking service call and forks two children, then print the
//! recorded lifetime: Start → RunFiber → ServiceCall → Yield → Persist →
//! ResumeFromCall → Fork → AwakeFiber resumes → TaskDone, annotated with
//! the node and instance each step executed on.
//!
//! ```bash
//! cargo run --example workflow_lifetime
//! ```

use std::time::Duration;

use gozer::testing::register_value_service;
use gozer::{Cluster, GozerSystem, ServiceDescription, Value};

const WORKFLOW: &str = r#"
(deflink PRICER :wsdl "urn:pricer" :port "PricerService")

(defun main (n)
  ;; One non-blocking service call (yield -> ResumeFromCall)...
  (let ((base (PRICER-Price-Method :n n)))
    ;; ...then two child fibers (fork -> yield -> AwakeFiber x2).
    (apply #'+ (for-each (i in (list 1 2))
                 (* base i)))))
"#;

fn main() {
    let cluster = Cluster::new();
    register_value_service(
        &cluster,
        "PricerService",
        Some(
            ServiceDescription::new("PricerService", "urn:pricer").operation(
                "Price",
                "Price the instrument.",
                &[("n", "int")],
            ),
        ),
        |_op, req| {
            let n = req
                .as_map()
                .and_then(|m| m.get(&Value::str("n")).cloned())
                .and_then(|v| v.as_int())
                .unwrap_or(0);
            Ok(Value::Int(n * 10))
        },
    );
    cluster.spawn_instances("PricerService", 0, 1);

    let system = GozerSystem::builder()
        .cluster(cluster)
        .nodes(2)
        .instances_per_node(2)
        .workflow(WORKFLOW)
        .build()
        .expect("deploy");
    let obs = system.workflow.obs();
    obs.set_tracing(true);

    let v = system
        .call("main", vec![Value::Int(7)], Duration::from_secs(60))
        .expect("workflow");
    // base = 70; children: 70*1 + 70*2 = 210.
    assert_eq!(v, Value::Int(210));

    println!("Figure 1 — sample workflow lifetime (result {v:?}):\n");
    // The per-task span tree: fibers as nested spans, each annotated
    // with the node/instance it ran on and any injected faults.
    print!("{}", obs.render());

    // Summarize the mechanics the figure illustrates.
    let events = obs.trace_view().events();
    let persists = events
        .iter()
        .filter(|e| matches!(e.kind, gozer::TraceKind::Persist(_)))
        .count();
    let nodes: std::collections::HashSet<u32> = events.iter().map(|e| e.node).collect();
    println!(
        "\nThe task persisted its continuation {persists} times and executed on {} node(s); \
         no thread ever blocked while waiting (§3.2).",
        nodes.len()
    );
    system.shutdown();
}
