//! A long-running ETL scenario: extract batches from a flaky upstream
//! feed (with `defhandler`-driven retries), transform them in `parallel`
//! stages, and survive the crash of an entire node mid-run — the
//! checkpoint/redeliver machinery of §3.1–3.2 keeps the task alive.
//!
//! ```bash
//! cargo run --example etl_pipeline
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gozer::testing::register_value_service;
use gozer::{Cluster, CrashPoint, Fault, GozerSystem, ServiceDescription, Value};

const WORKFLOW: &str = r#"
(deflink FEED :wsdl "urn:feed" :port "FeedService")

(defhandler feed-retry
  :code ("{urn:feed}Transient")
  :action retry
  :count 10)

(defun extract (batch-id)
  "Pull one batch from the upstream feed, retrying transient faults."
  (with-handler feed-retry
    (FEED-GetBatch-Method :BatchId batch-id)))

(defun transform (records)
  "Normalize a batch: uppercase symbols, apply FX, drop invalid rows."
  (remove nil
          (mapcar (lambda (r)
                    (let ((sym (get r :symbol))
                          (amount (get r :amount)))
                      (when (and sym (numberp amount) (> amount 0))
                        {:symbol (string-upcase sym)
                         :amount-usd (* amount 100)})))
                  records)))

(defun load-summary (batches)
  "Reduce transformed batches into a summary map."
  (let ((rows (apply #'append batches)))
    {:rows (length rows)
     :total (apply #'+ (mapcar (lambda (r) (get r :amount-usd)) rows))}))

(defun etl (n-batches)
  (let ((transformed
          (for-each (b in (range n-batches))
            (transform (extract b)))))
    ;; The three summary statistics are independent: compute in parallel
    ;; fibers (§3.5's parallel macro).
    (let ((results (parallel (load-summary transformed)
                             (length transformed)
                             :etl-complete)))
      {:summary (first results)
       :batches (second results)
       :tag (third results)})))
"#;

fn feed_service(cluster: &Arc<Cluster>) {
    let calls = Arc::new(AtomicU64::new(0));
    let desc = ServiceDescription::new("FeedService", "urn:feed").operation(
        "GetBatch",
        "Fetch one batch of raw records.",
        &[("BatchId", "int")],
    );
    register_value_service(cluster, "FeedService", Some(desc), move |_op, req| {
        // Every 5th call fails transiently, exercising the retry handler.
        let n = calls.fetch_add(1, Ordering::SeqCst);
        if n % 5 == 4 {
            return Err(Fault::new("{urn:feed}Transient", "upstream hiccup"));
        }
        let batch = req
            .as_map()
            .and_then(|m| m.get(&Value::str("BatchId")).cloned())
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        let mut records = Vec::new();
        for i in 0..6i64 {
            let mut m = gozer_lang::AssocMap::new();
            m.insert(Value::keyword("symbol"), Value::str(format!("sym{batch}-{i}")));
            // One invalid row per batch (negative amount) to be dropped.
            let amount = if i == 3 { -1 } else { batch * 10 + i };
            m.insert(Value::keyword("amount"), Value::Int(amount));
            records.push(Value::Map(Arc::new(m)));
        }
        Ok(Value::list(records))
    });
    cluster.spawn_instances("FeedService", 1, 2);
}

fn main() {
    let cluster = Cluster::new();
    feed_service(&cluster);
    let system = GozerSystem::builder()
        .cluster(cluster.clone())
        .nodes(3)
        .instances_per_node(2)
        .workflow(WORKFLOW)
        .build()
        .expect("deploy");

    let task = system.start("etl", vec![Value::Int(8)]).expect("start");
    println!("started {task}; crashing node 0 while it runs...");
    std::thread::sleep(Duration::from_millis(30));
    // Take out a whole node mid-run: persisted checkpoints + message
    // redelivery let the survivors finish the task.
    cluster.kill_node(0, CrashPoint::BeforeProcess);

    let rec = system
        .wait(&task, Duration::from_secs(120))
        .expect("task finishes despite the crash");
    println!("status: {:?}", rec.status);
    println!(
        "fibers created: {}, duration: {:?}",
        rec.fibers_created,
        rec.duration()
    );
    let snap = cluster.metrics.snapshot();
    println!(
        "cluster: {} messages sent, {} redelivered after the crash",
        snap.sent, snap.redelivered
    );
    match rec.status {
        gozer::TaskStatus::Completed(v) => {
            println!("result: {v:?}");
            // 8 batches x 6 rows, minus one negative row per batch and
            // the zero-amount row in batch 0: 48 - 8 - 1 = 39.
            let summary = v
                .as_map()
                .and_then(|m| m.get(&gozer::Value::keyword("summary")).cloned())
                .unwrap();
            let rows = summary
                .as_map()
                .and_then(|m| m.get(&gozer::Value::keyword("rows")).cloned())
                .unwrap();
            assert_eq!(rows, Value::Int(39));
        }
        other => panic!("unexpected status {other:?}"),
    }
    system.shutdown();
}
