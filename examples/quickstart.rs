//! Quickstart: the three sum-of-squares variants of the paper's
//! Listing 1 — sequential, locally parallel (futures), and distributed
//! (`for-each` over cluster fibers) — all computing the same answer.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use std::time::{Duration, Instant};

use gozer::{GozerSystem, Gvm, Value};

const LISTING_1: &str = r#"
(defun loc-sum-squares (numbers)
  (apply #'+
         (loop for number in numbers
               collect (* number number))))

(defun par-sum-squares (numbers)
  (apply #'+
         (loop for number in numbers
               collect (future (* number number)))))

(defun dist-sum-squares (numbers)
  (apply #'+
         (for-each (number in numbers)
           (* number number))))
"#;

fn main() {
    let numbers: Vec<Value> = (1..=20).map(Value::Int).collect();
    let expected: i64 = (1..=20).map(|n| n * n).sum();

    // -- local & future variants run on a plain GVM ----------------------
    let gvm = Gvm::new();
    // dist-sum-squares needs the Vinz prelude, so load only the local two
    // here; the full listing goes to the cluster below.
    let local_src: String = LISTING_1
        .split("(defun dist-sum-squares")
        .next()
        .unwrap()
        .to_string();
    gvm.load_str(&local_src, "listing1-local").unwrap();

    for f in ["loc-sum-squares", "par-sum-squares"] {
        let func = gvm.function(f).unwrap();
        let t0 = Instant::now();
        let v = gvm.call_sync(&func, vec![Value::list(numbers.clone())]).unwrap();
        println!("{f:>18}: {v:?}  ({:?})", t0.elapsed());
        assert_eq!(v, Value::Int(expected));
    }

    // -- the distributed variant runs on a simulated cluster -------------
    let system = GozerSystem::builder()
        .nodes(3)
        .instances_per_node(2)
        .workflow(LISTING_1)
        .build()
        .expect("deploy");
    let t0 = Instant::now();
    let v = system
        .call(
            "dist-sum-squares",
            vec![Value::list(numbers)],
            Duration::from_secs(60),
        )
        .expect("distributed run");
    println!("{:>18}: {v:?}  ({:?})", "dist-sum-squares", t0.elapsed());
    assert_eq!(v, Value::Int(expected));

    let rec = system.workflow.obs().tracker().all().pop().unwrap();
    println!(
        "\ntask {} used {} fibers across the cluster; every square ran in its own fiber.",
        rec.id, rec.fibers_created
    );
    system.shutdown();
}
