//! Fuzz target: the load-time bytecode verifier. The interpreter's hot
//! loop trusts operands unchecked, so `verify_program` is the single
//! line of defense against wild indices — it must *reject* (typed
//! `VmError::Bytecode`), never panic, for any `Program` shape. Three
//! generators stress it:
//!
//! 1. fully synthetic programs (random ops, random operands, random
//!    constant pools) — mostly invalid, exercising every reject path;
//! 2. compiled programs with op-level mutations (operand tweaks, op
//!    swaps, truncation) — "almost valid" code that lands near the
//!    fused-op keep-tail-slots checks;
//! 3. untouched compiler output — which must always verify, fused
//!    superinstructions included.
//!
//! Accepted programs are *not* executed: the verifier guarantees
//! in-bounds operands, not termination, and a `Jump(-1)` loop is valid
//! bytecode.

use gozer_fuzz::drive;
use gozer_vm::bytecode::{CaptureSource, Chunk, Op, ParamSpec, Program};
use gozer_vm::{verify_program, Closure, Gvm};
use proptest::TestRng;

const SEEDS: &[&str] = &[
    "(defun f (n) (if (< n 2) n (+ (f (- n 1)) (f (- n 2)))))",
    "(defun g (xs) (let ((acc 0)) (for-each (x xs) (setq acc (+ acc x))) acc))",
    "(defun h () (let ((a 1) (b 2)) (lambda (c) (+ a b c))))",
    "(defun k () (loop for i from 1 to 9 collect (* i i)))",
];

fn random_op(rng: &mut TestRng) -> Op {
    // Operands deliberately straddle the valid range (small pools, small
    // local counts) so both accept and reject paths stay hot.
    let c = rng.below(6) as u32;
    let s = rng.below(6) as u16;
    let n = rng.below(4) as u16;
    let off = rng.below(16) as i32 - 8;
    match rng.below(36) {
        0 => Op::Const(c),
        1 => Op::Nil,
        2 => Op::True,
        3 => Op::Pop,
        4 => Op::Dup,
        5 => Op::LoadLocal(s),
        6 => Op::StoreLocal(s),
        7 => Op::TakeLocal(s),
        8 => Op::LoadCapture(s),
        9 => Op::LoadGlobal(c),
        10 => Op::StoreGlobal(c),
        11 => Op::DefGlobal(c),
        12 => Op::Jump(off),
        13 => Op::JumpIfFalse(off),
        14 => Op::JumpIfTrue(off),
        15 => Op::Call(n),
        16 => Op::TailCall(n),
        17 => Op::Return,
        18 => Op::MakeClosure(c),
        19 => Op::MakeList(n),
        20 => Op::MakeVector(n),
        21 => Op::MakeMap(n),
        22 => Op::Yield,
        23 => Op::PushCC,
        24 => Op::PushHandler,
        25 => Op::PopHandlers(n),
        26 => Op::PushRestart { name: c, offset: off },
        27 => Op::PopRestarts(n),
        // The fused table, quads included — these drive the
        // keep-tail-slots checks, the part of the verifier with real
        // lookahead logic.
        28 => Op::LoadLocal2(s, rng.below(6) as u16),
        29 => Op::LoadLocalConst(s, c),
        30 => Op::GlobalLocal(c, s),
        31 => Op::ConstCall(c, n),
        32 => Op::LoadLocalCall(s, n),
        33 => Op::CallBranchFalse(n, off),
        34 => Op::DupStore(s),
        _ => {
            if rng.below(3) == 0 {
                Op::PopJump(off)
            } else if rng.below(2) == 0 {
                Op::GlobalLocal2Call(c, s, rng.below(6) as u16)
            } else {
                Op::GlobalLocalConstCall(c, s, rng.below(6) as u32)
            }
        }
    }
}

fn random_program(rng: &mut TestRng) -> Program {
    use gozer_lang::{Symbol, Value};
    let n_consts = rng.below(5) as usize;
    let consts: Vec<Value> = (0..n_consts)
        .map(|i| {
            if rng.below(2) == 0 {
                Value::Symbol(Symbol::intern(&format!("g{i}")))
            } else {
                Value::Int(i as i64)
            }
        })
        .collect();
    let n_chunks = 1 + rng.below(3) as usize;
    let chunks = (0..n_chunks)
        .map(|ci| {
            let len = rng.below(12) as usize; // 0 is a reject case too
            let mut code: Vec<Op> = (0..len).map(|_| random_op(rng)).collect();
            if rng.below(4) != 0 && !code.is_empty() {
                // Usually terminate properly so deeper checks are reached.
                let last = code.len() - 1;
                code[last] = Op::Return;
            }
            let n_caps = rng.below(3) as usize;
            Chunk {
                name: format!("c{ci}"),
                doc: None,
                params: ParamSpec::default(),
                local_count: rng.below(5) as u16,
                captures: (0..n_caps)
                    .map(|_| {
                        if rng.below(2) == 0 {
                            CaptureSource::Local(rng.below(6) as u16)
                        } else {
                            CaptureSource::Capture(rng.below(4) as u16)
                        }
                    })
                    .collect(),
                code,
                ic: Vec::new(),
            }
        })
        .collect();
    Program { id: 0xF022, name: "fuzz-bytecode".into(), consts, chunks }
}

/// Compile a seed, then knock its bytecode about: operand tweaks, op
/// replacement, truncation. The ic cache is rebuilt to match (Program
/// construction invariant, not a verifier concern).
fn mutated_compiled(rng: &mut TestRng) -> Program {
    use std::sync::atomic::AtomicU64;
    let gvm = Gvm::with_pool_size(1);
    let src = SEEDS[rng.below(SEEDS.len() as u64) as usize];
    gvm.load_str(src, "fuzz-bytecode").expect("seed compiles");
    let name = src.split_whitespace().nth(1).unwrap();
    let f = gvm.function(name).expect("seed defines its function");
    let cl = f.as_callable::<Closure>().expect("seed value is a closure");
    let mut program = (*cl.program).clone();
    for _ in 0..1 + rng.below(4) {
        let ci = rng.below(program.chunks.len() as u64) as usize;
        let chunk = &mut program.chunks[ci];
        if chunk.code.is_empty() {
            continue;
        }
        let i = rng.below(chunk.code.len() as u64) as usize;
        match rng.below(3) {
            0 => chunk.code[i] = random_op(rng),
            1 => chunk.code.truncate(i + 1),
            _ => {
                let j = rng.below(chunk.code.len() as u64) as usize;
                chunk.code.swap(i, j);
            }
        }
        chunk.ic = chunk.code.iter().map(|_| AtomicU64::new(0)).collect();
    }
    program
}

fn main() {
    drive("bytecode", |rng| match rng.below(8) {
        // Synthetic garbage: any outcome but a panic is fine.
        0..=4 => {
            let _ = verify_program(&random_program(rng));
        }
        // Near-valid mutants: the fused lookahead checks live here.
        5 | 6 => {
            let _ = verify_program(&mutated_compiled(rng));
        }
        // Untouched compiler output must always pass.
        _ => {
            let gvm = Gvm::with_pool_size(1);
            let src = SEEDS[rng.below(SEEDS.len() as u64) as usize];
            gvm.load_str(src, "fuzz-bytecode").expect("seed compiles");
            let name = src.split_whitespace().nth(1).unwrap();
            let f = gvm.function(name).expect("seed defines its function");
            let cl = f.as_callable::<Closure>().expect("closure");
            verify_program(&cl.program).expect("compiler output verifies");
        }
    });
}
