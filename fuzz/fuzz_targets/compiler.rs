//! Fuzz target: the compiler behind `Gvm::load_str`. Any source the
//! reader accepts must compile to a program or a typed error — no
//! panic, no unbounded recursion. Compilation is only reached through
//! readable text, so the generator leans on mutations of valid
//! programs (random garbage rarely parses).

use gozer_fuzz::{drive, mutate};
use gozer_lang::Reader;
use gozer_vm::Gvm;

const SEEDS: &[&str] = &[
    "(defun f (n) (if (< n 2) n (+ (f (- n 1)) (f (- n 2)))))",
    "(defun g (xs) (for-each (x xs) (yield {:v x}) x))",
    "(defun h () (let ((a 1) (b 2)) (lambda (c) (+ a b c))))",
    "(defun k (m) (handler-case (error :boom) (:boom (c) :caught)))",
    "(defun deep () (list (list (list (list 1 2) 3) 4) 5))",
];

fn main() {
    drive("compiler", |rng| {
        let base = SEEDS[rng.below(SEEDS.len() as u64) as usize];
        let src = if rng.below(5) == 0 {
            // Structural mutation: splice two seeds together.
            let other = SEEDS[rng.below(SEEDS.len() as u64) as usize];
            let cut_a = rng.below(base.len() as u64) as usize;
            let cut_b = rng.below(other.len() as u64) as usize;
            let mut s = String::new();
            s.push_str(&base[..cut_a]);
            s.push_str(&other[cut_b..]);
            s
        } else {
            match String::from_utf8(mutate(rng, base.as_bytes(), 3)) {
                Ok(s) => s,
                Err(_) => return,
            }
        };
        // Only readable text reaches the compiler in production; gate
        // the same way here so the target measures the compiler, not
        // the reader.
        if Reader::read_all_str(&src).is_ok() {
            let gvm = Gvm::with_pool_size(1);
            let _ = gvm.load_str(&src, "fuzz-unit");
        }
    });
}
