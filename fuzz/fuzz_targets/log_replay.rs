//! Fuzz target: LogStore crash recovery. A segment directory seeded
//! with adversarial bytes — random garbage, forged magics, mutated and
//! truncated valid logs, mangled checkpoints — must always open to
//! either a working store (torn tails truncated) or a typed
//! `StoreError`; never a panic, never an abort. The length and count
//! fields inside log frames are attacker-controlled and must not drive
//! allocation or indexing.

use std::path::PathBuf;

use gozer_fuzz::{drive, mutate, random_bytes};
use vinz::{LogStore, StateStore};

const SEG_MAGIC: &[u8; 8] = b"GZLOG1\0\0";

/// Build one honest segment + checkpoint to mutate: a store with a few
/// committed records, compacted so a checkpoint exists, then crashed.
fn fixture(dir: &PathBuf) -> (Vec<u8>, Vec<u8>) {
    let store = LogStore::builder(dir)
        .partitions(1)
        .segment_bytes(256)
        .compact_min_bytes(64)
        .compact_dead_ratio(0.05)
        .build()
        .unwrap();
    for i in 0..8 {
        store.put(&format!("fiber/{i}"), &[i as u8; 40]).unwrap();
        store.put("fiber/hot", &[0xEE; 40]).unwrap();
    }
    store.delete("fiber/0").unwrap();
    store.flush().unwrap();
    // Give the writer thread a moment to run its compaction step so the
    // checkpoint file appears (flush returns at the durability point,
    // which precedes compaction in the same cycle).
    for _ in 0..200 {
        if dir.join("checkpoint").exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    store.simulate_crash();
    drop(store);
    let seg = std::fs::read_dir(dir.join("p0"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .max()
        .expect("fixture segment");
    let ckpt = std::fs::read(dir.join("checkpoint")).unwrap_or_default();
    (std::fs::read(seg).unwrap(), ckpt)
}

fn main() {
    let base = std::env::temp_dir().join(format!("gozer-fuzz-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let fixture_dir = base.join("fixture");
    let (valid_seg, valid_ckpt) = fixture(&fixture_dir);

    let mut case = 0u64;
    drive("log_replay", |rng| {
        case += 1;
        let dir = base.join(format!("case-{case}"));
        std::fs::create_dir_all(dir.join("p0")).unwrap();

        // The segment under attack.
        let seg_bytes = match rng.below(4) {
            // Pure garbage, no magic.
            0 => random_bytes(rng, 512),
            // Honest magic, garbage frames: the frame parser's food.
            1 => {
                let mut b = SEG_MAGIC.to_vec();
                b.extend(random_bytes(rng, 512));
                b
            }
            // Mutations / truncations of a genuine crashed log.
            _ => mutate(rng, &valid_seg, 6),
        };
        std::fs::write(dir.join("p0").join("seg-0000000001.log"), &seg_bytes).unwrap();

        // Sometimes a second, older segment (recovery walks them in
        // order; damage in a non-tail segment must surface as Corrupt,
        // not a panic).
        if rng.below(3) == 0 {
            let older = mutate(rng, &valid_seg, 2);
            std::fs::write(dir.join("p0").join("seg-0000000000.log"), &older).unwrap();
        }

        // Sometimes a mangled checkpoint on top.
        if rng.below(3) == 0 {
            let ckpt = if valid_ckpt.is_empty() || rng.below(2) == 0 {
                random_bytes(rng, 256)
            } else {
                mutate(rng, &valid_ckpt, 4)
            };
            std::fs::write(dir.join("checkpoint"), &ckpt).unwrap();
        }

        // The contract: open either fails with a typed error or yields
        // a store that can serve reads and writes.
        if let Ok(store) = LogStore::builder(&dir).partitions(1).build() {
            let _ = store.get("fiber/1");
            let _ = store.get("fiber/hot");
            let _ = store.list("fiber/");
            let _ = store.put("fiber/new", b"post-recovery write");
            let _ = store.flush();
            drop(store);
        }
        let _ = std::fs::remove_dir_all(&dir);
    });
    let _ = std::fs::remove_dir_all(&base);
}
