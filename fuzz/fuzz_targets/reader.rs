//! Fuzz target: the Gozer reader. Arbitrary source text — random
//! garbage, mutated valid programs, pathological nesting — must return
//! `Ok` or a typed `LangError`, never panic or overflow the stack.

use gozer_fuzz::{drive, mutate};
use gozer_lang::Reader;

const SEEDS: &[&str] = &[
    "(defun f (n) (if (< n 2) n (+ (f (- n 1)) (f (- n 2)))))",
    "(defun g (xs) (for-each (x xs) (yield {:v x}) x))",
    "{:a [1 2 3] :b \"str\" :c (list 'sym :kw #\\c)}",
    "; comment\n#| block |# (quote (1 . 2))",
];

fn main() {
    let alphabet: Vec<char> = "()[]{}\"';:#\\ \n\t0123456789abcdef+-*/<>=?!.~@&|%λ"
        .chars()
        .collect();
    drive("reader", |rng| {
        let src = match rng.below(3) {
            // Random text over a reader-relevant alphabet.
            0 => {
                let len = rng.below(300) as usize;
                (0..len)
                    .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                    .collect::<String>()
            }
            // Byte-level mutation of a valid program (UTF-8 permitting).
            1 => {
                let base = SEEDS[rng.below(SEEDS.len() as u64) as usize];
                match String::from_utf8(mutate(rng, base.as_bytes(), 4)) {
                    Ok(s) => s,
                    Err(_) => return,
                }
            }
            // Pathological nesting around the recursion bound.
            _ => {
                let depth = 200 + rng.below(120) as usize;
                let open = ["(", "[", "{"][rng.below(3) as usize];
                let close = match open {
                    "(" => ")",
                    "[" => "]",
                    _ => "}",
                };
                format!("{}1{}", open.repeat(depth), close.repeat(depth))
            }
        };
        let _ = Reader::read_all_str(&src);
    });
}
