//! Fuzz target: the TCP transport's wire codec. Every byte of a frame
//! — length prefix, CRC, tag, string lengths, map/vec counts — comes
//! off a socket an attacker (or a `kill -9` torn write) controls, so
//! `decode_frame` must return a typed [`FrameError`] for anything that
//! is not an exact encoding: never panic, never allocate from an
//! unvalidated length, never read past the buffer. Round-trips of
//! honest frames must be identity, including after re-encode.

use bluebox::wire::{decode_frame, encode_frame, FrameError, SettleBody, WireMsg, WirePayload};
use gozer_fuzz::{drive, mutate, random_bytes};
use proptest::TestRng;

/// A pseudo-random (but seed-deterministic) honest message to mutate.
fn arbitrary_msg(rng: &mut TestRng) -> WireMsg {
    let string = |rng: &mut TestRng, max: u64| -> String {
        let len = rng.below(max);
        (0..len)
            .map(|_| char::from((b'a' + (rng.next_u64() % 26) as u8) as char))
            .collect()
    };
    let payload = |rng: &mut TestRng| -> WirePayload {
        let mut headers = std::collections::BTreeMap::new();
        for _ in 0..rng.below(4) {
            headers.insert(string(rng, 12), string(rng, 20));
        }
        WirePayload {
            service: string(rng, 16),
            operation: string(rng, 16),
            headers,
            body: random_bytes(rng, 200),
            priority: rng.next_u64() as i32,
            hold_until: rng.next_u64(),
        }
    };
    match rng.below(9) {
        0 => WireMsg::Hello {
            worker: string(rng, 24),
            node: rng.next_u64() as u32,
        },
        1 => WireMsg::HelloAck {
            heartbeat_ms: rng.next_u64() % 100_000,
        },
        2 => WireMsg::Register {
            service: string(rng, 16),
            instances: rng.next_u64() as u32 % 1000,
        },
        3 => WireMsg::Registered {
            service: string(rng, 16),
            ids: (0..rng.below(16)).map(|_| rng.next_u64()).collect(),
        },
        4 => WireMsg::Delivery {
            lease: rng.next_u64(),
            redeliveries: rng.next_u64() as u32 % 64,
            payload: payload(rng),
        },
        5 => WireMsg::Settle {
            lease: rng.next_u64(),
            body: if rng.below(2) == 0 {
                SettleBody::Ok(random_bytes(rng, 200))
            } else {
                SettleBody::Fault(string(rng, 24), string(rng, 48))
            },
        },
        6 => WireMsg::Send { payload: payload(rng) },
        7 => WireMsg::Heartbeat { seq: rng.next_u64() },
        _ => WireMsg::Bye,
    }
}

fn main() {
    drive("frame_decode", |rng| {
        let msg = arbitrary_msg(rng);
        let honest = encode_frame(&msg);

        // Honest frames decode to the same message, consuming exactly
        // the frame; a re-encode is byte-identical.
        let (decoded, used) = decode_frame(&honest).expect("honest frame decodes");
        assert_eq!(used, honest.len(), "honest frame fully consumed");
        assert_eq!(encode_frame(&decoded), honest, "re-encode is identity");

        // Every proper prefix is Truncated/Eof — never Ok, never panic.
        if !honest.is_empty() {
            let cut = rng.below(honest.len() as u64) as usize;
            match decode_frame(&honest[..cut]) {
                Err(FrameError::Truncated { .. }) | Err(FrameError::Eof) => {}
                Err(other) => panic!("prefix of len {cut} gave {other:?}"),
                Ok(_) => panic!("prefix of len {cut} decoded"),
            }
        }

        // Arbitrary corruption: typed error or an honest re-decode (a
        // flip may hit bytes the codec legitimately ignores — there are
        // none today, but the contract is only "no panic, no lie").
        let corrupt = mutate(rng, &honest, 8);
        if let Ok((remsg, used)) = decode_frame(&corrupt) {
            assert!(used <= corrupt.len(), "decoder consumed past the buffer");
            // Whatever decoded must survive its own round-trip.
            let reencoded = encode_frame(&remsg);
            let (again, _) = decode_frame(&reencoded).expect("decoded msg re-decodes");
            assert_eq!(encode_frame(&again), reencoded);
        }

        // Pure garbage, including hostile length prefixes: typed errors
        // only, and TooLarge before any allocation happens.
        let garbage = random_bytes(rng, 256);
        let _ = decode_frame(&garbage);
        let mut hostile = Vec::from(u32::MAX.to_le_bytes());
        hostile.extend(random_bytes(rng, 64));
        match decode_frame(&hostile) {
            Err(FrameError::TooLarge { .. }) => {}
            other => panic!("4 GiB length prefix gave {other:?}"),
        }
    });
}
