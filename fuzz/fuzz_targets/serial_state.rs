//! Fuzz target: `gozer-serial` value and full-snapshot deserialization
//! (envelope versions v1 and v2). Arbitrary bytes and mutated valid
//! records must produce `Err` or a decoded value — never panic, never
//! hang (the reader consumes at least one byte per loop iteration by
//! construction; a wedge here would trip the smoke-runner timeout).

use std::sync::Arc;

use gozer_compress::Codec;
use gozer_fuzz::{drive, mutate, random_bytes};
use gozer_lang::Value;
use gozer_serial::{deserialize_state, deserialize_value, serialize_state, serialize_value};
use gozer_vm::{Gvm, RunOutcome};

const WF: &str = r#"
(defun leaf (a)
  (let ((x (yield :one)) (y (yield :two))) (list a x y)))
(defun wrap (a) (list :w (leaf (concat "leaf-" a))))
(defun outer (a) (list :outer (wrap a)))
"#;

fn fixtures(gvm: &Arc<Gvm>) -> (Vec<u8>, Vec<u8>) {
    let f = gvm.function("outer").unwrap();
    let RunOutcome::Suspended(susp) = gvm.call_fiber(&f, vec![Value::from("job")]).unwrap()
    else {
        panic!("expected suspension");
    };
    let snapshot = serialize_state(&susp.state, Codec::None).unwrap();
    let value = serialize_value(
        &Value::list(vec![
            Value::Int(42),
            Value::str("hello"),
            Value::keyword("k"),
            Value::list(vec![Value::Nil, Value::Bool(true)]),
        ]),
        Codec::None,
    )
    .unwrap();
    (snapshot, value)
}

fn main() {
    let gvm = Gvm::with_pool_size(1);
    gvm.load_str(WF, "fuzz-wf").unwrap();
    let (snapshot, value) = fixtures(&gvm);
    drive("serial_state", |rng| {
        let bytes = match rng.below(4) {
            // Pure garbage.
            0 => random_bytes(rng, 512),
            // Garbage behind a valid envelope (v1 or v2, Codec::None)
            // so the payload decoders are exercised.
            1 => {
                let mut b = random_bytes(rng, 512);
                if b.len() >= 4 {
                    b[0] = b'G';
                    b[1] = b'Z';
                    b[2] = 1 + (rng.below(2) as u8);
                    b[3] = 0;
                }
                b
            }
            // Mutated/truncated valid snapshot.
            2 => mutate(rng, &snapshot, 4),
            // Mutated/truncated valid value record.
            _ => mutate(rng, &value, 4),
        };
        let _ = deserialize_value(&bytes, &gvm);
        let _ = deserialize_state(&bytes, &gvm);
    });
}
