//! Fuzz target: delta-snapshot deserialization. Mutated, truncated, and
//! header-forged delta records applied to the correct base (and to a
//! wrong one) must fail with a typed error — in particular the frame
//! counts in the header are attacker-controlled and must not drive
//! allocation or indexing.

use std::sync::Arc;

use gozer_compress::Codec;
use gozer_fuzz::{drive, mutate, random_bytes};
use gozer_lang::Value;
use gozer_serial::{
    deserialize_state, deserialize_state_delta, serialize_state, serialize_state_delta,
};
use gozer_vm::{FiberState, Gvm, RunOutcome};

const WF: &str = r#"
(defun leaf (a)
  (let ((x (yield :one)) (y (yield :two))) (list a x y)))
(defun wrap (a) (list :w (leaf (concat "leaf-" a))))
(defun outer (a) (list :outer (wrap a)))
"#;

fn fixture(gvm: &Arc<Gvm>) -> (Vec<u8>, FiberState, FiberState) {
    let f = gvm.function("outer").unwrap();
    let RunOutcome::Suspended(susp1) = gvm.call_fiber(&f, vec![Value::from("job")]).unwrap()
    else {
        panic!("expected suspension at :one");
    };
    let full1 = serialize_state(&susp1.state, Codec::None).unwrap();
    let state1 = deserialize_state(&full1, gvm).unwrap();
    let RunOutcome::Suspended(susp2) = gvm.resume_fiber(state1, Value::Int(10)).unwrap() else {
        panic!("expected suspension at :two");
    };
    let delta = serialize_state_delta(&susp2.state, susp2.state.clean_prefix, Codec::None, 256)
        .unwrap()
        .expect("delta applies");
    let base = deserialize_state(&full1, gvm).unwrap();
    let RunOutcome::Suspended(other) = gvm
        .call_fiber(&f, vec![Value::from("a-different-job")])
        .unwrap()
    else {
        panic!("expected suspension");
    };
    (delta, base, other.state)
}

fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn main() {
    let gvm = Gvm::with_pool_size(1);
    gvm.load_str(WF, "fuzz-wf").unwrap();
    let (delta, base, wrong_base) = fixture(&gvm);
    drive("serial_delta", |rng| {
        let bytes = match rng.below(3) {
            // Garbage behind the delta's envelope + marker prefix.
            0 => {
                let mut b = random_bytes(rng, 256);
                let mut forged = delta[..5].to_vec(); // GZ, ver, codec, 0xD5
                forged.append(&mut b);
                forged
            }
            // Forged header uvarints (prefix/total), valid tail.
            1 => {
                let mut forged = delta[..5].to_vec();
                write_uvarint(&mut forged, rng.next_u64() >> (rng.below(56) as u32));
                write_uvarint(&mut forged, rng.next_u64() >> (rng.below(56) as u32));
                forged.extend_from_slice(&delta[5..]);
                forged
            }
            // Byte mutations / truncations of the whole record.
            _ => mutate(rng, &delta, 4),
        };
        let _ = deserialize_state_delta(&bytes, &gvm, &base);
        // The unmodified record against a mismatched base must also be
        // rejected (checksum), and a mutated one must never mis-apply.
        let _ = deserialize_state_delta(&bytes, &gvm, &wrong_base);
    });
}
