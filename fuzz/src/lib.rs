//! Shared driver for the offline fuzz targets.
//!
//! Real cargo-fuzz feeds targets from libFuzzer, which needs registry
//! crates and an instrumented build. This workspace is offline, so each
//! target is a plain binary that generates its own inputs from the
//! proptest shim's seeded splitmix64 RNG and loops a bounded number of
//! iterations. A finding is a plain panic (abort the process, nonzero
//! exit); a clean run exits 0 — which is what `make fuzz-smoke` checks.
//!
//! Knobs (environment):
//! * `FUZZ_ITERS` — iterations per target (default 5000).
//! * `FUZZ_SEED`  — base seed (default 0); each iteration derives its
//!   own case seed, printed on entry when `FUZZ_VERBOSE` is set, so a
//!   crashing case replays with `FUZZ_SEED=<case> FUZZ_ITERS=1`.

use proptest::TestRng;

/// Iterations for this run.
pub fn iters() -> u64 {
    std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5000)
}

/// Base seed for this run.
pub fn base_seed() -> u64 {
    std::env::var("FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Run `body` over `iters()` derived case seeds, printing progress and
/// the per-case replay seed when `FUZZ_VERBOSE` is set.
pub fn drive(target: &str, mut body: impl FnMut(&mut TestRng)) {
    let n = iters();
    let base = base_seed();
    let verbose = std::env::var("FUZZ_VERBOSE").is_ok();
    for i in 0..n {
        // Derive a per-case seed so any case replays in isolation.
        let case = TestRng::new(base.wrapping_add(i)).next_u64();
        if verbose {
            eprintln!("{target}: case {i} seed {case}");
        }
        let mut rng = TestRng::new(case);
        body(&mut rng);
    }
    println!("{target}: {n} iterations, 0 findings");
}

/// Random bytes of length < `max_len`.
pub fn random_bytes(rng: &mut TestRng, max_len: u64) -> Vec<u8> {
    let len = rng.below(max_len) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Mutate up to `max_flips` bytes of `base` in place.
pub fn mutate(rng: &mut TestRng, base: &[u8], max_flips: u64) -> Vec<u8> {
    let mut out = base.to_vec();
    if out.is_empty() {
        return out;
    }
    for _ in 0..=rng.below(max_flips) {
        let i = rng.below(out.len() as u64) as usize;
        out[i] = rng.next_u64() as u8;
    }
    // Occasionally truncate as well — length corruption is its own bug
    // class.
    if rng.below(4) == 0 {
        let cut = rng.below(out.len() as u64 + 1) as usize;
        out.truncate(cut);
    }
    out
}
