#![warn(missing_docs)]

//! # zk-lite
//!
//! An in-process reproduction of the Apache ZooKeeper coordination
//! primitives Vinz adopts in §4.2 of the paper (as the replacement for
//! opaque NFS file locks): a hierarchical namespace of *znodes* with
//! versioned data, ephemeral and sequential creation modes, one-shot
//! watches, and the standard distributed-lock recipe built on ephemeral
//! sequential nodes.
//!
//! Sessions model clients on different cluster nodes: closing a session
//! (normally or by simulated crash) removes its ephemeral nodes and fires
//! the relevant watches — which is exactly the property that makes the
//! lock recipe robust against holder failure.
//!
//! ```
//! use zk_lite::{ZkServer, CreateMode};
//! let server = ZkServer::new();
//! let s = server.session();
//! s.create("/config", b"v1".to_vec(), CreateMode::Persistent).unwrap();
//! let (data, version) = s.get("/config").unwrap();
//! assert_eq!(data, b"v1");
//! s.set("/config", b"v2".to_vec(), Some(version)).unwrap();
//! ```

pub mod lock;

pub use lock::DistributedLock;

use std::collections::BTreeMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Node creation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    /// Survives session close.
    Persistent,
    /// Deleted when the creating session closes.
    Ephemeral,
    /// Persistent with a monotonically increasing suffix.
    PersistentSequential,
    /// Ephemeral with a monotonically increasing suffix.
    EphemeralSequential,
}

impl CreateMode {
    fn is_ephemeral(self) -> bool {
        matches!(self, CreateMode::Ephemeral | CreateMode::EphemeralSequential)
    }
    fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }
}

/// Watch event types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Node created.
    Created,
    /// Node deleted.
    Deleted,
    /// Node data changed.
    DataChanged,
    /// Node's child list changed.
    ChildrenChanged,
}

/// A delivered watch event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// Path the watch was set on.
    pub path: String,
    /// What happened.
    pub kind: EventKind,
}

/// Operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZkError {
    /// Path does not exist.
    NoNode(String),
    /// Path already exists.
    NodeExists(String),
    /// Version check failed.
    BadVersion {
        /// The version the caller expected.
        expected: u64,
        /// The node's actual version.
        actual: u64,
    },
    /// Node has children and cannot be deleted.
    NotEmpty(String),
    /// Session has been closed.
    SessionExpired,
    /// Malformed path.
    BadPath(String),
}

impl std::fmt::Display for ZkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZkError::NoNode(p) => write!(f, "no node: {p}"),
            ZkError::NodeExists(p) => write!(f, "node exists: {p}"),
            ZkError::BadVersion { expected, actual } => {
                write!(f, "bad version: expected {expected}, actual {actual}")
            }
            ZkError::NotEmpty(p) => write!(f, "node not empty: {p}"),
            ZkError::SessionExpired => write!(f, "session expired"),
            ZkError::BadPath(p) => write!(f, "bad path: {p}"),
        }
    }
}

impl std::error::Error for ZkError {}

/// Result alias.
pub type ZkResult<T> = Result<T, ZkError>;

struct ZNode {
    data: Vec<u8>,
    version: u64,
    children: BTreeMap<String, ZNode>,
    ephemeral_owner: Option<u64>,
    seq_counter: u64,
}

impl ZNode {
    fn new(data: Vec<u8>, ephemeral_owner: Option<u64>) -> ZNode {
        ZNode {
            data,
            version: 0,
            children: BTreeMap::new(),
            ephemeral_owner,
            seq_counter: 0,
        }
    }
}

type Watcher = (String, WatchKind, Sender<WatchEvent>);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WatchKind {
    Node,
    Children,
}

struct State {
    root: ZNode,
    watchers: Vec<Watcher>,
    next_session: u64,
    /// Paths of ephemeral nodes per live session.
    ephemerals: BTreeMap<u64, Vec<String>>,
}

/// The coordination service.
pub struct ZkServer {
    state: Mutex<State>,
}

impl Default for ZkServer {
    fn default() -> Self {
        Self::new_inner()
    }
}

impl ZkServer {
    /// New empty server.
    pub fn new() -> Arc<ZkServer> {
        Arc::new(Self::new_inner())
    }

    fn new_inner() -> ZkServer {
        ZkServer {
            state: Mutex::new(State {
                root: ZNode::new(Vec::new(), None),
                watchers: Vec::new(),
                next_session: 1,
                ephemerals: BTreeMap::new(),
            }),
        }
    }

    /// Open a client session.
    pub fn session(self: &Arc<ZkServer>) -> Session {
        let mut st = self.state.lock();
        let id = st.next_session;
        st.next_session += 1;
        st.ephemerals.insert(id, Vec::new());
        Session {
            server: self.clone(),
            id,
            closed: Mutex::new(false),
        }
    }

    fn fire(st: &mut State, path: &str, kind: EventKind, watch_kind: WatchKind) {
        // One-shot semantics: matching watchers are removed and notified.
        let mut remaining = Vec::with_capacity(st.watchers.len());
        for (wpath, wkind, tx) in st.watchers.drain(..) {
            if wpath == path && wkind == watch_kind {
                let _ = tx.send(WatchEvent {
                    path: wpath,
                    kind: kind.clone(),
                });
            } else {
                remaining.push((wpath, wkind, tx));
            }
        }
        st.watchers = remaining;
    }

    fn close_session(&self, id: u64) {
        let mut st = self.state.lock();
        let Some(paths) = st.ephemerals.remove(&id) else {
            return;
        };
        // Delete deepest-first so parents empty out.
        let mut paths = paths;
        paths.sort_by_key(|p| std::cmp::Reverse(p.len()));
        for p in paths {
            let existed = {
                let (parent, leaf) = match split_path(&p) {
                    Ok(v) => v,
                    Err(_) => continue,
                };
                match lookup_mut(&mut st.root, &parent) {
                    Some(dir) => dir.children.remove(leaf).is_some(),
                    None => false,
                }
            };
            if existed {
                ZkServer::fire(&mut st, &p, EventKind::Deleted, WatchKind::Node);
                if let Some(parent) = parent_path(&p) {
                    ZkServer::fire(&mut st, &parent, EventKind::ChildrenChanged, WatchKind::Children);
                }
            }
        }
    }
}

fn components(path: &str) -> ZkResult<Vec<&str>> {
    if !path.starts_with('/') || (path.len() > 1 && path.ends_with('/')) {
        return Err(ZkError::BadPath(path.to_string()));
    }
    Ok(path.split('/').filter(|c| !c.is_empty()).collect())
}

fn split_path(path: &str) -> ZkResult<(Vec<&str>, &str)> {
    let mut comps = components(path)?;
    let leaf = comps.pop().ok_or_else(|| ZkError::BadPath(path.into()))?;
    Ok((comps, leaf))
}

fn parent_path(path: &str) -> Option<String> {
    let idx = path.rfind('/')?;
    Some(if idx == 0 { "/".into() } else { path[..idx].into() })
}

fn lookup<'a>(root: &'a ZNode, comps: &[&str]) -> Option<&'a ZNode> {
    let mut node = root;
    for c in comps {
        node = node.children.get(*c)?;
    }
    Some(node)
}

fn lookup_mut<'a>(root: &'a mut ZNode, comps: &[&str]) -> Option<&'a mut ZNode> {
    let mut node = root;
    for c in comps {
        node = node.children.get_mut(*c)?;
    }
    Some(node)
}

/// A client session. Dropping it closes the session (removing its
/// ephemeral nodes), modelling a node crash or clean disconnect.
pub struct Session {
    server: Arc<ZkServer>,
    id: u64,
    closed: Mutex<bool>,
}

impl Session {
    /// Session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    fn check_open(&self) -> ZkResult<()> {
        if *self.closed.lock() {
            Err(ZkError::SessionExpired)
        } else {
            Ok(())
        }
    }

    /// Create a node, returning its actual path (sequential modes append
    /// a zero-padded counter).
    pub fn create(&self, path: &str, data: Vec<u8>, mode: CreateMode) -> ZkResult<String> {
        self.check_open()?;
        let (parent_comps, leaf) = split_path(path)?;
        let mut st = self.server.state.lock();
        let session_id = self.id;
        let parent = lookup_mut(&mut st.root, &parent_comps)
            .ok_or_else(|| ZkError::NoNode(parent_path(path).unwrap_or_default()))?;
        let actual_leaf = if mode.is_sequential() {
            let n = parent.seq_counter;
            parent.seq_counter += 1;
            format!("{leaf}{n:010}")
        } else {
            leaf.to_string()
        };
        if parent.children.contains_key(&actual_leaf) {
            return Err(ZkError::NodeExists(path.to_string()));
        }
        let owner = mode.is_ephemeral().then_some(session_id);
        parent
            .children
            .insert(actual_leaf.clone(), ZNode::new(data, owner));
        let actual_path = if parent_comps.is_empty() {
            format!("/{actual_leaf}")
        } else {
            format!("/{}/{actual_leaf}", parent_comps.join("/"))
        };
        if mode.is_ephemeral() {
            st.ephemerals
                .entry(session_id)
                .or_default()
                .push(actual_path.clone());
        }
        ZkServer::fire(&mut st, &actual_path, EventKind::Created, WatchKind::Node);
        if let Some(pp) = parent_path(&actual_path) {
            ZkServer::fire(&mut st, &pp, EventKind::ChildrenChanged, WatchKind::Children);
        }
        Ok(actual_path)
    }

    /// Read a node's data and version.
    pub fn get(&self, path: &str) -> ZkResult<(Vec<u8>, u64)> {
        self.check_open()?;
        let comps = components(path)?;
        let st = self.server.state.lock();
        let node = lookup(&st.root, &comps).ok_or_else(|| ZkError::NoNode(path.into()))?;
        Ok((node.data.clone(), node.version))
    }

    /// Write a node's data. `expected_version` of `None` skips the check
    /// (ZooKeeper's `version = -1`). Returns the new version.
    pub fn set(&self, path: &str, data: Vec<u8>, expected_version: Option<u64>) -> ZkResult<u64> {
        self.check_open()?;
        let comps = components(path)?;
        let mut st = self.server.state.lock();
        let node =
            lookup_mut(&mut st.root, &comps).ok_or_else(|| ZkError::NoNode(path.into()))?;
        if let Some(expected) = expected_version {
            if node.version != expected {
                return Err(ZkError::BadVersion {
                    expected,
                    actual: node.version,
                });
            }
        }
        node.data = data;
        node.version += 1;
        let new_version = node.version;
        ZkServer::fire(&mut st, path, EventKind::DataChanged, WatchKind::Node);
        Ok(new_version)
    }

    /// Delete a leaf node (with optional version check).
    pub fn delete(&self, path: &str, expected_version: Option<u64>) -> ZkResult<()> {
        self.check_open()?;
        let (parent_comps, leaf) = split_path(path)?;
        let mut st = self.server.state.lock();
        let parent = lookup_mut(&mut st.root, &parent_comps)
            .ok_or_else(|| ZkError::NoNode(path.into()))?;
        let node = parent
            .children
            .get(leaf)
            .ok_or_else(|| ZkError::NoNode(path.into()))?;
        if let Some(expected) = expected_version {
            if node.version != expected {
                return Err(ZkError::BadVersion {
                    expected,
                    actual: node.version,
                });
            }
        }
        if !node.children.is_empty() {
            return Err(ZkError::NotEmpty(path.into()));
        }
        let owner = node.ephemeral_owner;
        parent.children.remove(leaf);
        // Unregister from the owning session's ephemeral list.
        if let Some(owner) = owner {
            if let Some(paths) = st.ephemerals.get_mut(&owner) {
                paths.retain(|p| p != path);
            }
        }
        ZkServer::fire(&mut st, path, EventKind::Deleted, WatchKind::Node);
        if let Some(pp) = parent_path(path) {
            ZkServer::fire(&mut st, &pp, EventKind::ChildrenChanged, WatchKind::Children);
        }
        Ok(())
    }

    /// Does the node exist?
    pub fn exists(&self, path: &str) -> ZkResult<bool> {
        self.check_open()?;
        let comps = components(path)?;
        let st = self.server.state.lock();
        Ok(lookup(&st.root, &comps).is_some())
    }

    /// Sorted child names.
    pub fn children(&self, path: &str) -> ZkResult<Vec<String>> {
        self.check_open()?;
        let comps = components(path)?;
        let st = self.server.state.lock();
        let node = lookup(&st.root, &comps).ok_or_else(|| ZkError::NoNode(path.into()))?;
        Ok(node.children.keys().cloned().collect())
    }

    /// Register a one-shot watch on a node (create/delete/data events).
    /// Returns the channel the event arrives on.
    pub fn watch_node(&self, path: &str) -> ZkResult<Receiver<WatchEvent>> {
        self.check_open()?;
        let (tx, rx) = unbounded();
        let mut st = self.server.state.lock();
        st.watchers.push((path.to_string(), WatchKind::Node, tx));
        Ok(rx)
    }

    /// Register a one-shot watch on a node's child list.
    pub fn watch_children(&self, path: &str) -> ZkResult<Receiver<WatchEvent>> {
        self.check_open()?;
        let (tx, rx) = unbounded();
        let mut st = self.server.state.lock();
        st.watchers
            .push((path.to_string(), WatchKind::Children, tx));
        Ok(rx)
    }

    /// Create the full path if missing (persistent intermediate nodes).
    pub fn ensure_path(&self, path: &str) -> ZkResult<()> {
        let comps = components(path)?;
        let mut sofar = String::new();
        for c in comps {
            sofar.push('/');
            sofar.push_str(c);
            match self.create(&sofar, Vec::new(), CreateMode::Persistent) {
                Ok(_) | Err(ZkError::NodeExists(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Close the session, deleting its ephemeral nodes.
    pub fn close(&self) {
        let mut closed = self.closed.lock();
        if !*closed {
            *closed = true;
            self.server.close_session(self.id);
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_get_set_delete() {
        let server = ZkServer::new();
        let s = server.session();
        s.create("/a", b"1".to_vec(), CreateMode::Persistent).unwrap();
        assert_eq!(s.get("/a").unwrap(), (b"1".to_vec(), 0));
        let v = s.set("/a", b"2".to_vec(), Some(0)).unwrap();
        assert_eq!(v, 1);
        assert_eq!(
            s.set("/a", b"3".to_vec(), Some(0)),
            Err(ZkError::BadVersion {
                expected: 0,
                actual: 1
            })
        );
        s.delete("/a", Some(1)).unwrap();
        assert!(!s.exists("/a").unwrap());
    }

    #[test]
    fn nested_paths_and_children() {
        let server = ZkServer::new();
        let s = server.session();
        s.ensure_path("/x/y").unwrap();
        s.create("/x/y/c1", vec![], CreateMode::Persistent).unwrap();
        s.create("/x/y/c2", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(s.children("/x/y").unwrap(), vec!["c1", "c2"]);
        assert_eq!(s.delete("/x", None), Err(ZkError::NotEmpty("/x".into())));
    }

    #[test]
    fn sequential_nodes_are_ordered() {
        let server = ZkServer::new();
        let s = server.session();
        s.ensure_path("/locks").unwrap();
        let p1 = s
            .create("/locks/lock-", vec![], CreateMode::EphemeralSequential)
            .unwrap();
        let p2 = s
            .create("/locks/lock-", vec![], CreateMode::EphemeralSequential)
            .unwrap();
        assert!(p1 < p2, "{p1} < {p2}");
        assert_eq!(s.children("/locks").unwrap().len(), 2);
    }

    #[test]
    fn ephemerals_vanish_on_session_close() {
        let server = ZkServer::new();
        let s1 = server.session();
        let s2 = server.session();
        s1.ensure_path("/e").unwrap();
        s1.create("/e/tmp", vec![], CreateMode::Ephemeral).unwrap();
        s1.create("/e/keep", vec![], CreateMode::Persistent).unwrap();
        assert!(s2.exists("/e/tmp").unwrap());
        s1.close();
        assert!(!s2.exists("/e/tmp").unwrap());
        assert!(s2.exists("/e/keep").unwrap());
        assert_eq!(s1.get("/e/keep"), Err(ZkError::SessionExpired));
    }

    #[test]
    fn watches_fire_once() {
        let server = ZkServer::new();
        let s = server.session();
        s.create("/w", b"0".to_vec(), CreateMode::Persistent).unwrap();
        let rx = s.watch_node("/w").unwrap();
        s.set("/w", b"1".to_vec(), None).unwrap();
        let ev = rx.try_recv().unwrap();
        assert_eq!(ev.kind, EventKind::DataChanged);
        // One-shot: a second change does not re-fire.
        s.set("/w", b"2".to_vec(), None).unwrap();
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn child_watches() {
        let server = ZkServer::new();
        let s = server.session();
        s.ensure_path("/cw").unwrap();
        let rx = s.watch_children("/cw").unwrap();
        s.create("/cw/k", vec![], CreateMode::Persistent).unwrap();
        assert_eq!(rx.try_recv().unwrap().kind, EventKind::ChildrenChanged);
    }

    #[test]
    fn delete_watch_fires_on_session_crash() {
        let server = ZkServer::new();
        let holder = server.session();
        let observer = server.session();
        holder.ensure_path("/locks").unwrap();
        let p = holder
            .create("/locks/l-", vec![], CreateMode::EphemeralSequential)
            .unwrap();
        let rx = observer.watch_node(&p).unwrap();
        drop(holder); // crash
        assert_eq!(rx.try_recv().unwrap().kind, EventKind::Deleted);
    }

    #[test]
    fn bad_paths_rejected() {
        let server = ZkServer::new();
        let s = server.session();
        assert!(matches!(
            s.create("no-slash", vec![], CreateMode::Persistent),
            Err(ZkError::BadPath(_))
        ));
        assert!(matches!(s.get("/a/"), Err(ZkError::BadPath(_))));
        assert!(matches!(
            s.create("/missing/child", vec![], CreateMode::Persistent),
            Err(ZkError::NoNode(_))
        ));
    }
}
