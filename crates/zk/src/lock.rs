//! The standard ZooKeeper distributed-lock recipe: create an ephemeral
//! sequential node under the lock path; the holder is the smallest
//! sequence number; everyone else watches its predecessor. Holder crash
//! (session close) releases the lock automatically — the property the
//! paper wanted over NFS file locks (§4.2: "simple ... but completely
//! opaque").

use std::time::{Duration, Instant};

use crate::{CreateMode, Session, ZkError, ZkResult};

/// A held distributed lock. Dropping releases it.
pub struct DistributedLock<'a> {
    session: &'a Session,
    /// Our ephemeral node.
    node: String,
}

impl<'a> DistributedLock<'a> {
    /// Acquire the lock named by `base` (a directory path, created if
    /// missing), waiting up to `timeout`. Returns `None` on timeout.
    pub fn acquire(
        session: &'a Session,
        base: &str,
        timeout: Duration,
    ) -> ZkResult<Option<DistributedLock<'a>>> {
        let deadline = Instant::now() + timeout;
        session.ensure_path(base)?;
        let node = session.create(
            &format!("{base}/lock-"),
            Vec::new(),
            CreateMode::EphemeralSequential,
        )?;
        let my_name = node.rsplit('/').next().expect("leaf name").to_string();
        loop {
            let mut children = session.children(base)?;
            children.sort();
            let my_pos = children
                .iter()
                .position(|c| *c == my_name)
                .ok_or_else(|| ZkError::NoNode(node.clone()))?;
            if my_pos == 0 {
                return Ok(Some(DistributedLock { session, node }));
            }
            // Watch the immediate predecessor; its deletion wakes us.
            let predecessor = format!("{base}/{}", children[my_pos - 1]);
            let rx = session.watch_node(&predecessor)?;
            // The predecessor may already be gone (watch set after list).
            if session.exists(&predecessor)? {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() || rx.recv_timeout(remaining).is_err() {
                    // Timed out: withdraw our request.
                    let _ = session.delete(&node, None);
                    return Ok(None);
                }
            }
        }
    }

    /// The path of the lock node we hold.
    pub fn node_path(&self) -> &str {
        &self.node
    }

    /// Release explicitly (also happens on drop).
    pub fn release(self) {
        // Drop impl does the work.
    }
}

impl Drop for DistributedLock<'_> {
    fn drop(&mut self) {
        let _ = self.session.delete(&self.node, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZkServer;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn exclusive_within_one_server() {
        let server = ZkServer::new();
        let s1 = server.session();
        let s2 = server.session();
        let l1 = DistributedLock::acquire(&s1, "/locks/a", Duration::from_millis(100))
            .unwrap()
            .expect("first acquire succeeds");
        // Second contender times out while the lock is held.
        assert!(DistributedLock::acquire(&s2, "/locks/a", Duration::from_millis(50))
            .unwrap()
            .is_none());
        drop(l1);
        // Now it succeeds.
        assert!(DistributedLock::acquire(&s2, "/locks/a", Duration::from_millis(100))
            .unwrap()
            .is_some());
    }

    #[test]
    fn holder_crash_releases() {
        let server = ZkServer::new();
        let s1 = server.session();
        let s2 = server.session();
        let _lock = DistributedLock::acquire(&s1, "/locks/b", Duration::from_millis(100))
            .unwrap()
            .expect("acquired");
        let waiter = std::thread::spawn(move || {
            DistributedLock::acquire(&s2, "/locks/b", Duration::from_secs(5))
                .unwrap()
                .is_some()
        });
        std::thread::sleep(Duration::from_millis(30));
        s1.close(); // crash the holder
        assert!(waiter.join().unwrap(), "waiter should acquire after crash");
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let server = ZkServer::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let server = server.clone();
            let counter = counter.clone();
            let max_seen = max_seen.clone();
            handles.push(std::thread::spawn(move || {
                let s = server.session();
                for _ in 0..20 {
                    let lock =
                        DistributedLock::acquire(&s, "/locks/hot", Duration::from_secs(10))
                            .unwrap()
                            .expect("acquire");
                    let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(inside, Ordering::SeqCst);
                    counter.fetch_sub(1, Ordering::SeqCst);
                    drop(lock);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "mutual exclusion violated");
    }

    #[test]
    fn fifo_fairness() {
        // Sequence numbers give FIFO ordering among waiters.
        let server = ZkServer::new();
        let s0 = server.session();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let l0 = DistributedLock::acquire(&s0, "/locks/fifo", Duration::from_secs(1))
            .unwrap()
            .unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let server = server.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                let s = server.session();
                let lock = DistributedLock::acquire(&s, "/locks/fifo", Duration::from_secs(10))
                    .unwrap()
                    .unwrap();
                order.lock().push(i);
                drop(lock);
            }));
            // Stagger arrivals so queue order is deterministic.
            std::thread::sleep(Duration::from_millis(25));
        }
        drop(l0);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }
}
