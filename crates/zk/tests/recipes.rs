//! Higher-level coordination patterns over zk-lite: optimistic
//! concurrency with version CAS, watch re-registration loops, and
//! leader election via the lock recipe.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use zk_lite::{CreateMode, DistributedLock, EventKind, ZkError, ZkServer};

#[test]
fn optimistic_counter_with_version_cas() {
    // Several sessions increment a counter with compare-and-set retries —
    // the ZooKeeper idiom Vinz's task variables could use.
    let server = ZkServer::new();
    {
        let s = server.session();
        s.create("/counter", b"0".to_vec(), CreateMode::Persistent)
            .unwrap();
    }
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let server = server.clone();
            std::thread::spawn(move || {
                let s = server.session();
                for _ in 0..50 {
                    loop {
                        let (data, version) = s.get("/counter").unwrap();
                        let n: i64 = String::from_utf8_lossy(&data).parse().unwrap();
                        match s.set("/counter", (n + 1).to_string().into_bytes(), Some(version)) {
                            Ok(_) => break,
                            Err(ZkError::BadVersion { .. }) => continue, // lost the race
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = server.session();
    let (data, _) = s.get("/counter").unwrap();
    assert_eq!(String::from_utf8_lossy(&data), "300");
}

#[test]
fn watch_reregistration_observes_every_generation() {
    // One-shot watches must be re-registered; a careful reader using
    // read-then-watch never misses that data *changed* (it may skip
    // intermediate values, which is ZooKeeper's contract too).
    let server = ZkServer::new();
    let writer = server.session();
    writer
        .create("/gen", b"0".to_vec(), CreateMode::Persistent)
        .unwrap();
    let last_seen = Arc::new(AtomicI64::new(0));
    let last2 = last_seen.clone();
    let server2 = server.clone();
    let reader = std::thread::spawn(move || {
        let s = server2.session();
        loop {
            let rx = s.watch_node("/gen").unwrap();
            let (data, _) = s.get("/gen").unwrap();
            let n: i64 = String::from_utf8_lossy(&data).parse().unwrap();
            last2.store(n, Ordering::SeqCst);
            if n >= 20 {
                return;
            }
            // Block until the next change (or give up after a while).
            if rx.recv_timeout(Duration::from_secs(5)).is_err() {
                return;
            }
        }
    });
    for i in 1..=20i64 {
        writer
            .set("/gen", i.to_string().into_bytes(), None)
            .unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    reader.join().unwrap();
    assert_eq!(last_seen.load(Ordering::SeqCst), 20);
}

#[test]
fn leader_election_via_lock_recipe() {
    // Whoever holds the lock is the leader; on crash, leadership moves.
    let server = ZkServer::new();
    let s1 = server.session();
    let s2 = server.session();
    let leader1 = DistributedLock::acquire(&s1, "/election", Duration::from_secs(1))
        .unwrap()
        .expect("first contender leads");
    // The standby can observe the leader's ephemeral node.
    let leader_node = leader1.node_path().to_string();
    assert!(s2.exists(&leader_node).unwrap());
    // Leader crashes; standby takes over promptly.
    let standby = std::thread::spawn(move || {
        DistributedLock::acquire(&s2, "/election", Duration::from_secs(5))
            .unwrap()
            .is_some()
    });
    std::thread::sleep(Duration::from_millis(20));
    s1.close();
    assert!(standby.join().unwrap());
}

#[test]
fn created_event_fires_for_awaited_nodes() {
    let server = ZkServer::new();
    let s = server.session();
    let rx = s.watch_node("/flag").unwrap();
    let server2 = server.clone();
    std::thread::spawn(move || {
        let w = server2.session();
        std::thread::sleep(Duration::from_millis(10));
        w.create("/flag", vec![], CreateMode::Persistent).unwrap();
    });
    let ev = rx.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(ev.kind, EventKind::Created);
    assert_eq!(ev.path, "/flag");
}

#[test]
fn sequential_numbering_is_per_parent() {
    let server = ZkServer::new();
    let s = server.session();
    s.ensure_path("/a").unwrap();
    s.ensure_path("/b").unwrap();
    let a0 = s.create("/a/n-", vec![], CreateMode::PersistentSequential).unwrap();
    let b0 = s.create("/b/n-", vec![], CreateMode::PersistentSequential).unwrap();
    let a1 = s.create("/a/n-", vec![], CreateMode::PersistentSequential).unwrap();
    assert!(a0.ends_with("0000000000"), "{a0}");
    assert!(b0.ends_with("0000000000"), "{b0}");
    assert!(a1.ends_with("0000000001"), "{a1}");
}
