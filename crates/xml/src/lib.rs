#![warn(missing_docs)]

//! # gozer-xml
//!
//! A minimal XML stack for the BlueBox substrate: document model, parser,
//! writer, namespace-qualified names (QNames, as used for error
//! designators in paper §3.7), and WSDL-like service descriptions (§3.3 —
//! "each service describes the operations it offers with an XML document
//! called a WSDL", which `deflink` parses to generate client stubs).

pub mod parser;
pub mod qname;
pub mod wsdl;
pub mod writer;

pub use parser::{parse, ParseError};
pub use qname::QName;
pub use wsdl::{OperationDesc, ParamDesc, ServiceDescription};
pub use writer::write_document;

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Resolved qualified name.
    pub name: QName,
    /// Attributes in document order (namespace declarations excluded).
    pub attrs: Vec<(String, String)>,
    /// Child nodes.
    pub children: Vec<Node>,
}

/// A node: element or character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Nested element.
    Element(Element),
    /// Text content (entity-decoded).
    Text(String),
}

impl Element {
    /// New element with a local (un-namespaced) name.
    pub fn new(local: &str) -> Element {
        Element {
            name: QName::local(local),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// New element with a namespace.
    pub fn qualified(ns: &str, local: &str) -> Element {
        Element {
            name: QName::new(ns, local),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn attr(mut self, name: &str, value: &str) -> Element {
        self.attrs.push((name.to_string(), value.to_string()));
        self
    }

    /// Builder: add a child element.
    pub fn child(mut self, e: Element) -> Element {
        self.children.push(Node::Element(e));
        self
    }

    /// Builder: add text content.
    pub fn text(mut self, t: &str) -> Element {
        self.children.push(Node::Text(t.to_string()));
        self
    }

    /// Attribute lookup.
    pub fn get_attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First child element with the given local name.
    pub fn find(&self, local: &str) -> Option<&Element> {
        self.children.iter().find_map(|n| match n {
            Node::Element(e) if e.name.local == local => Some(e),
            _ => None,
        })
    }

    /// All child elements with the given local name.
    pub fn find_all<'a>(&'a self, local: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter_map(move |n| match n {
            Node::Element(e) if e.name.local == local => Some(e),
            _ => None,
        })
    }

    /// All child elements.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of this element (direct children only).
    pub fn text_content(&self) -> String {
        self.children
            .iter()
            .filter_map(|n| match n {
                Node::Text(t) => Some(t.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Serialize to a string.
    pub fn to_xml(&self) -> String {
        write_document(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let e = Element::new("root")
            .attr("id", "1")
            .child(Element::new("a").text("x"))
            .child(Element::new("a").text("y"))
            .child(Element::new("b"));
        assert_eq!(e.get_attr("id"), Some("1"));
        assert_eq!(e.find("a").unwrap().text_content(), "x");
        assert_eq!(e.find_all("a").count(), 2);
        assert_eq!(e.elements().count(), 3);
        assert!(e.find("missing").is_none());
    }
}
