//! XML serialization with entity escaping and namespace emission.

use std::fmt::Write;

use crate::{Element, Node};

/// Serialize `root` to a string. Namespaced elements get generated
/// prefixes declared at first use.
pub fn write_document(root: &Element) -> String {
    let mut out = String::with_capacity(256);
    let mut namespaces: Vec<String> = Vec::new();
    write_element(&mut out, root, &mut namespaces);
    out
}

fn prefix_for(namespaces: &mut Vec<String>, ns: &str) -> (String, bool) {
    if let Some(i) = namespaces.iter().position(|u| u == ns) {
        (format!("n{i}"), false)
    } else {
        namespaces.push(ns.to_string());
        (format!("n{}", namespaces.len() - 1), true)
    }
}

fn write_element(out: &mut String, e: &Element, namespaces: &mut Vec<String>) {
    let scope_mark = namespaces.len();
    let (tag, ns_decl) = if e.name.ns.is_empty() {
        (e.name.local.clone(), None)
    } else {
        let (prefix, fresh) = prefix_for(namespaces, &e.name.ns);
        let tag = format!("{prefix}:{}", e.name.local);
        let decl = fresh.then(|| format!(" xmlns:{prefix}=\"{}\"", escape_attr(&e.name.ns)));
        (tag, decl)
    };
    let _ = write!(out, "<{tag}");
    if let Some(decl) = ns_decl {
        out.push_str(&decl);
    }
    for (k, v) in &e.attrs {
        let _ = write!(out, " {k}=\"{}\"", escape_attr(v));
    }
    if e.children.is_empty() {
        out.push_str("/>");
    } else {
        out.push('>');
        for child in &e.children {
            match child {
                Node::Element(c) => write_element(out, c, namespaces),
                Node::Text(t) => out.push_str(&escape_text(t)),
            }
        }
        let _ = write!(out, "</{tag}>");
    }
    // Prefix indices must stay stable within a document for re-parsing,
    // so do not truncate; `scope_mark` documents the scoping intent.
    let _ = scope_mark;
}

/// Escape text content.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn writes_and_reparses() {
        let e = Element::new("root")
            .attr("a", "1 & \"two\"")
            .child(Element::new("leaf").text("x < y"))
            .child(Element::qualified("urn:x", "q").text("z"));
        let xml = write_document(&e);
        let back = parse(&xml).unwrap();
        assert_eq!(back.get_attr("a"), Some("1 & \"two\""));
        assert_eq!(back.find("leaf").unwrap().text_content(), "x < y");
        assert_eq!(back.find("q").unwrap().name.ns, "urn:x");
    }

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(write_document(&Element::new("e")), "<e/>");
    }
}
