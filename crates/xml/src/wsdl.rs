//! WSDL-like service descriptions.
//!
//! Every BlueBox service publishes an XML interface document describing
//! its operations (§1). Vinz's `deflink` macro fetches this document,
//! parses it, and generates one Gozer function per operation — including
//! the operation documentation, which Listing 2 shows surviving into the
//! generated stubs.

use crate::{parse, Element, ParseError};

/// One declared parameter of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDesc {
    /// Parameter name (becomes a keyword argument in the generated stub).
    pub name: String,
    /// Declared type, informational (e.g. `"string"`, `"int"`, `"any"`).
    pub type_name: String,
}

/// One operation a service publishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationDesc {
    /// Operation name (e.g. `"ListSessions"`).
    pub name: String,
    /// Human documentation, preserved into generated stubs.
    pub doc: String,
    /// SOAP action URI.
    pub soap_action: String,
    /// Input parameters.
    pub params: Vec<ParamDesc>,
    /// When true, `deflink` generates an erroring macro instead of a
    /// function (the paper's compile-time guard for operations that
    /// cannot be bridged).
    pub unsupported: bool,
}

/// A service interface document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Service name (the WSDL "port" in Listing 2).
    pub name: String,
    /// Target namespace, e.g. `urn:security-manager-service`.
    pub target_ns: String,
    /// Published operations.
    pub operations: Vec<OperationDesc>,
}

impl ServiceDescription {
    /// Start a description.
    pub fn new(name: &str, target_ns: &str) -> ServiceDescription {
        ServiceDescription {
            name: name.to_string(),
            target_ns: target_ns.to_string(),
            operations: Vec::new(),
        }
    }

    /// Builder: add an operation.
    pub fn operation(
        mut self,
        name: &str,
        doc: &str,
        params: &[(&str, &str)],
    ) -> ServiceDescription {
        self.operations.push(OperationDesc {
            name: name.to_string(),
            doc: doc.to_string(),
            soap_action: format!("{}:{}", self.target_ns, name),
            params: params
                .iter()
                .map(|(n, t)| ParamDesc {
                    name: n.to_string(),
                    type_name: t.to_string(),
                })
                .collect(),
            unsupported: false,
        });
        self
    }

    /// Builder: add an operation `deflink` must refuse to bridge.
    pub fn unsupported_operation(mut self, name: &str, doc: &str) -> ServiceDescription {
        self.operations.push(OperationDesc {
            name: name.to_string(),
            doc: doc.to_string(),
            soap_action: format!("{}:{}", self.target_ns, name),
            params: Vec::new(),
            unsupported: true,
        });
        self
    }

    /// Look up an operation by name.
    pub fn find_operation(&self, name: &str) -> Option<&OperationDesc> {
        self.operations.iter().find(|o| o.name == name)
    }

    /// Serialize to the interface-document XML.
    pub fn to_xml(&self) -> String {
        let mut root = Element::qualified("urn:wsdl", "definitions")
            .attr("name", &self.name)
            .attr("targetNamespace", &self.target_ns);
        for op in &self.operations {
            let mut e = Element::new("operation")
                .attr("name", &op.name)
                .attr("soapAction", &op.soap_action);
            if op.unsupported {
                e = e.attr("unsupported", "true");
            }
            e = e.child(Element::new("documentation").text(&op.doc));
            let mut input = Element::new("input");
            for p in &op.params {
                input = input.child(
                    Element::new("part")
                        .attr("name", &p.name)
                        .attr("type", &p.type_name),
                );
            }
            e = e.child(input);
            root = root.child(e);
        }
        root.to_xml()
    }

    /// Parse an interface document.
    pub fn from_xml(xml: &str) -> Result<ServiceDescription, ParseError> {
        let root = parse(xml)?;
        let bad = |message: &str| ParseError {
            message: message.to_string(),
            offset: 0,
        };
        if root.name.local != "definitions" {
            return Err(bad("expected <definitions> root"));
        }
        let name = root
            .get_attr("name")
            .ok_or_else(|| bad("missing service name"))?
            .to_string();
        let target_ns = root
            .get_attr("targetNamespace")
            .ok_or_else(|| bad("missing targetNamespace"))?
            .to_string();
        let mut desc = ServiceDescription {
            name,
            target_ns,
            operations: Vec::new(),
        };
        for op in root.find_all("operation") {
            let name = op
                .get_attr("name")
                .ok_or_else(|| bad("operation missing name"))?
                .to_string();
            let soap_action = op
                .get_attr("soapAction")
                .unwrap_or_default()
                .to_string();
            let doc = op
                .find("documentation")
                .map(Element::text_content)
                .unwrap_or_default();
            let params = op
                .find("input")
                .map(|input| {
                    input
                        .find_all("part")
                        .map(|p| ParamDesc {
                            name: p.get_attr("name").unwrap_or_default().to_string(),
                            type_name: p.get_attr("type").unwrap_or("any").to_string(),
                        })
                        .collect()
                })
                .unwrap_or_default();
            desc.operations.push(OperationDesc {
                name,
                doc,
                soap_action,
                params,
                unsupported: op.get_attr("unsupported") == Some("true"),
            });
        }
        Ok(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceDescription {
        ServiceDescription::new("SecurityManager", "urn:security-manager-service")
            .operation(
                "ListSessions",
                "Returns a list of sessions visible to the caller.",
                &[("FilterParams", "string"), ("WithinRealm", "string")],
            )
            .operation("Ping", "Liveness check.", &[])
            .unsupported_operation("NativeCall", "Cannot be bridged.")
    }

    #[test]
    fn xml_roundtrip() {
        let desc = sample();
        let xml = desc.to_xml();
        let back = ServiceDescription::from_xml(&xml).unwrap();
        assert_eq!(back, desc);
    }

    #[test]
    fn lookup_and_flags() {
        let desc = sample();
        let op = desc.find_operation("ListSessions").unwrap();
        assert_eq!(op.params.len(), 2);
        assert_eq!(op.soap_action, "urn:security-manager-service:ListSessions");
        assert!(!op.unsupported);
        assert!(desc.find_operation("NativeCall").unwrap().unsupported);
        assert!(desc.find_operation("Missing").is_none());
    }
}
