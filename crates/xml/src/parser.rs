//! A small, strict XML parser: elements, attributes, text, comments,
//! processing instructions, CDATA, the five predefined entities, and
//! namespace resolution (`xmlns`/`xmlns:prefix`).

use std::collections::HashMap;
use std::fmt;

use crate::qname::QName;
use crate::{Element, Node};

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum element nesting the parser accepts (stack-exhaustion guard).
pub const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Parse a document, returning its root element.
pub fn parse(input: &str) -> Result<Element, ParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_misc()?;
    let scopes = vec![HashMap::new()];
    let root = p.element(&scopes)?;
    p.skip_misc()?;
    if p.pos < p.input.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs, and a doctype before/after the root.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.comment()?;
            } else if self.starts_with("<?") {
                self.until("?>")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn until(&mut self, end: &str) -> Result<(), ParseError> {
        match self.input[self.pos..]
            .windows(end.len())
            .position(|w| w == end.as_bytes())
        {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(self.err(format!("unterminated construct (expected {end})"))),
        }
    }

    fn comment(&mut self) -> Result<(), ParseError> {
        self.pos += 4; // <!--
        self.until("-->")
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn attr_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return decode_entities(&raw).map_err(|m| self.err(m));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn element(&mut self, scopes: &[HashMap<String, String>]) -> Result<Element, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("elements nested deeper than {MAX_DEPTH}")));
        }
        let result = self.element_inner(scopes);
        self.depth -= 1;
        result
    }

    fn element_inner(
        &mut self,
        scopes: &[HashMap<String, String>],
    ) -> Result<Element, ParseError> {
        self.expect(b'<')?;
        let raw_name = self.name()?;
        // Collect attributes, splitting out namespace declarations.
        let mut attrs: Vec<(String, String)> = Vec::new();
        let mut ns_here: HashMap<String, String> = HashMap::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') => break,
                None => return Err(self.err("unterminated start tag")),
                _ => {}
            }
            let aname = self.name()?;
            self.skip_ws();
            self.expect(b'=')?;
            self.skip_ws();
            let aval = self.attr_value()?;
            if aname == "xmlns" {
                ns_here.insert(String::new(), aval);
            } else if let Some(prefix) = aname.strip_prefix("xmlns:") {
                ns_here.insert(prefix.to_string(), aval);
            } else {
                attrs.push((aname, aval));
            }
        }
        let mut scopes_vec: Vec<HashMap<String, String>>;
        let scopes_ref: &[HashMap<String, String>] = if ns_here.is_empty() {
            scopes
        } else {
            scopes_vec = scopes.to_vec();
            scopes_vec.push(ns_here);
            &scopes_vec
        };
        let name = resolve_name(&raw_name, scopes_ref).map_err(|m| self.err(m))?;
        let mut element = Element {
            name,
            attrs,
            children: Vec::new(),
        };
        // Self-closing?
        if self.peek() == Some(b'/') {
            self.pos += 1;
            self.expect(b'>')?;
            return Ok(element);
        }
        self.expect(b'>')?;
        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != raw_name {
                    return Err(self.err(format!(
                        "mismatched closing tag: expected </{raw_name}>, got </{close}>"
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.comment()?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let start = self.pos;
                self.until("]]>")?;
                let text =
                    String::from_utf8_lossy(&self.input[start..self.pos - 3]).into_owned();
                element.children.push(Node::Text(text));
            } else if self.starts_with("<?") {
                self.until("?>")?;
            } else if self.peek() == Some(b'<') {
                element
                    .children
                    .push(Node::Element(self.element(scopes_ref)?));
            } else if self.peek().is_none() {
                return Err(self.err(format!("unterminated element <{raw_name}>")));
            } else {
                let start = self.pos;
                while self.peek().is_some() && self.peek() != Some(b'<') {
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                let text = decode_entities(&raw).map_err(|m| self.err(m))?;
                if !text.trim().is_empty() {
                    element.children.push(Node::Text(text));
                }
            }
        }
    }
}

fn resolve_name(raw: &str, scopes: &[HashMap<String, String>]) -> Result<QName, String> {
    let (prefix, local) = match raw.split_once(':') {
        Some((p, l)) => (p, l),
        None => ("", raw),
    };
    for scope in scopes.iter().rev() {
        if let Some(uri) = scope.get(prefix) {
            return Ok(QName::new(uri, local));
        }
    }
    if prefix.is_empty() {
        Ok(QName::local(local))
    } else {
        Err(format!("undeclared namespace prefix '{prefix}'"))
    }
}

/// Decode the five predefined entities plus numeric references.
pub fn decode_entities(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after
            .find(';')
            .ok_or_else(|| "unterminated entity reference".to_string())?;
        let entity = &after[..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(char::from_u32(code).ok_or("invalid character reference")?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(char::from_u32(code).ok_or("invalid character reference")?);
            }
            _ => return Err(format!("unknown entity &{entity};")),
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_document() {
        let doc = parse(r#"<?xml version="1.0"?><a id="1"><b>text</b><c/></a>"#).unwrap();
        assert_eq!(doc.name.local, "a");
        assert_eq!(doc.get_attr("id"), Some("1"));
        assert_eq!(doc.find("b").unwrap().text_content(), "text");
        assert!(doc.find("c").unwrap().children.is_empty());
    }

    #[test]
    fn namespaces_resolve() {
        let doc = parse(
            r#"<s:svc xmlns:s="urn:svc" xmlns="urn:default"><op/><s:inner/></s:svc>"#,
        )
        .unwrap();
        assert_eq!(doc.name.ns, "urn:svc");
        let op = doc.find("op").unwrap();
        assert_eq!(op.name.ns, "urn:default");
        assert_eq!(doc.find("inner").unwrap().name.ns, "urn:svc");
    }

    #[test]
    fn entities_decode() {
        let doc = parse("<a>&lt;x&gt; &amp; &#65;&#x42;</a>").unwrap();
        assert_eq!(doc.text_content(), "<x> & AB");
    }

    #[test]
    fn cdata_and_comments() {
        let doc = parse("<a><!-- note --><![CDATA[<raw>&]]></a>").unwrap();
        assert_eq!(doc.text_content(), "<raw>&");
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_crash() {
        let soup = "<a>".repeat(100_000);
        assert!(parse(&soup).is_err());
        let deep = format!("{}x{}", "<a>".repeat(100), "</a>".repeat(100));
        assert!(parse(&deep).is_ok());
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse("<a><b></a>").is_err());
        assert!(parse("<a>").is_err());
        assert!(parse("<a></a><b/>").is_err());
        assert!(parse("<p:a/>").is_err()); // undeclared prefix
        assert!(parse("<a attr=novalue/>").is_err());
    }
}
