//! Namespace-qualified names, with the `{uri}local` string form the paper
//! uses for error designators (Listing 6: `"{urn:service}Connect"`).

use std::fmt;

/// A namespace-qualified name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName {
    /// Namespace URI (empty = no namespace).
    pub ns: String,
    /// Local part.
    pub local: String,
}

impl QName {
    /// Qualified name.
    pub fn new(ns: &str, local: &str) -> QName {
        QName {
            ns: ns.to_string(),
            local: local.to_string(),
        }
    }

    /// Un-namespaced name.
    pub fn local(local: &str) -> QName {
        QName::new("", local)
    }

    /// Parse the `{uri}local` form (also accepts a bare local name).
    pub fn parse(s: &str) -> Option<QName> {
        if let Some(rest) = s.strip_prefix('{') {
            let (ns, local) = rest.split_once('}')?;
            if local.is_empty() {
                return None;
            }
            Some(QName::new(ns, local))
        } else if s.is_empty() {
            None
        } else {
            Some(QName::local(s))
        }
    }

    /// The `{uri}local` string form (bare local when un-namespaced).
    pub fn to_designator(&self) -> String {
        if self.ns.is_empty() {
            self.local.clone()
        } else {
            format!("{{{}}}{}", self.ns, self.local)
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_designator())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print() {
        let q = QName::parse("{urn:service}Connect").unwrap();
        assert_eq!(q.ns, "urn:service");
        assert_eq!(q.local, "Connect");
        assert_eq!(q.to_designator(), "{urn:service}Connect");

        let plain = QName::parse("Connect").unwrap();
        assert_eq!(plain.ns, "");
        assert_eq!(plain.to_designator(), "Connect");
    }

    #[test]
    fn rejects_malformed() {
        assert!(QName::parse("").is_none());
        assert!(QName::parse("{urn:x}").is_none());
        assert!(QName::parse("{unclosed").is_none());
    }
}
