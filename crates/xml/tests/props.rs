//! Property tests: writer→parser round trips for arbitrary documents.

use gozer_xml::{parse, Element, Node};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_-]{0,8}".prop_map(|s| s)
}

/// Text content including characters that need escaping.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z').prop_map(|c| c.to_string()),
            Just("<".to_string()),
            Just(">".to_string()),
            Just("&".to_string()),
            Just("\"".to_string()),
            Just("'".to_string()),
            Just(" ".to_string()),
            Just("é".to_string()),
        ],
        1..12,
    )
    .prop_map(|parts| parts.concat())
    // Pure-whitespace text is dropped by the parser by design.
    .prop_filter("needs a visible char", |s| !s.trim().is_empty())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(&name);
            // Attribute names must be unique for a faithful round trip.
            let mut seen = std::collections::HashSet::new();
            for (k, v) in attrs {
                if seen.insert(k.clone()) {
                    e = e.attr(&k, &v);
                }
            }
            if let Some(t) = text {
                e = e.text(&t);
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec(inner, 0..4),
            proptest::option::of(text_strategy()),
        )
            .prop_map(|(name, children, text)| {
                let mut e = Element::new(&name);
                if let Some(t) = text {
                    e = e.text(&t);
                }
                for c in children {
                    e = e.child(c);
                }
                e
            })
    })
}

/// Adjacent text nodes merge on re-parse; normalize before comparing.
fn normalize(e: &Element) -> Element {
    let mut out = Element::new("x");
    out.name = e.name.clone();
    out.attrs = e.attrs.clone();
    let mut pending_text = String::new();
    for n in &e.children {
        match n {
            Node::Text(t) => pending_text.push_str(t),
            Node::Element(c) => {
                if !pending_text.trim().is_empty() {
                    out.children.push(Node::Text(std::mem::take(&mut pending_text)));
                } else {
                    pending_text.clear();
                }
                out.children.push(Node::Element(normalize(c)));
            }
        }
    }
    if !pending_text.trim().is_empty() {
        out.children.push(Node::Text(pending_text));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_parse_roundtrip(e in element_strategy()) {
        let xml = e.to_xml();
        let parsed = parse(&xml)
            .unwrap_or_else(|err| panic!("unparseable output {xml:?}: {err}"));
        prop_assert_eq!(normalize(&parsed), normalize(&e), "xml: {}", xml);
    }

    #[test]
    fn parser_never_panics_on_noise(s in "[ -~]{0,200}") {
        let _ = parse(&s); // must return Result, not panic
    }

    #[test]
    fn parser_never_panics_on_tag_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<".to_string()),
                Just(">".to_string()),
                Just("&amp;".to_string()),
                Just("&#xZZ;".to_string()),
                Just("<!--".to_string()),
                Just("-->".to_string()),
                Just("x".to_string()),
                Just("\"".to_string()),
            ],
            0..30,
        )
    ) {
        let _ = parse(&parts.concat());
    }
}
