#![warn(missing_docs)]

//! # gozer — the Gozer workflow system
//!
//! A from-scratch Rust reproduction of *"The Gozer Workflow System"*
//! (Madden, Grounds, Sachs, Antonio — IPPS 2010): a Lisp-dialect workflow
//! language whose virtual machine (the GVM) keeps its call stack as plain
//! heap data, so any flow of control can be captured as a **serializable
//! continuation**, persisted, migrated across a cluster, and resumed —
//! plus the **Vinz** distribution layer (tasks, fibers, non-blocking
//! service calls, `for-each`/`parallel`, task variables, condition
//! actions) and a simulated **BlueBox** message-passing cluster to run it
//! all on.
//!
//! This crate is the facade: it re-exports every layer and provides
//! [`GozerSystem`], a builder wiring a cluster, persistence, locks, and a
//! deployed workflow together.
//!
//! ## Local evaluation
//!
//! ```
//! let gvm = gozer::Gvm::new();
//! // Listing 1's par-sum-squares: local parallelism with futures.
//! let v = gvm.eval_str(
//!     "(defun par-sum-squares (numbers)
//!        (apply #'+ (loop for n in numbers collect (future (* n n)))))
//!      (par-sum-squares (range 1 5))").unwrap(); // squares of 1..4
//! assert_eq!(v, gozer::Value::Int(30));
//! ```
//!
//! ## Distributed workflows
//!
//! ```
//! use std::time::Duration;
//! let system = gozer::GozerSystem::builder()
//!     .nodes(2)
//!     .instances_per_node(2)
//!     .workflow(
//!         "(defun dist-sum-squares (numbers)
//!            (apply #'+ (for-each (n in numbers) (* n n))))")
//!     .build()
//!     .unwrap();
//! let result = system.call(
//!     "dist-sum-squares",
//!     vec![gozer::Value::list((1..=4).map(gozer::Value::Int).collect())],
//!     Duration::from_secs(30),
//! ).unwrap();
//! assert_eq!(result, gozer::Value::Int(30));
//! system.shutdown();
//! ```

use std::sync::Arc;
use std::time::Duration;

pub use bluebox::{
    CallError, ChaosConfig, ChaosPlan, ChaosRng, ChaosStatsSnapshot, Cluster, CrashPoint,
    DeadLetter, Fault, FaultAction, FaultPoint, Message, MetricsSnapshot, Policy, RecoveryConfig,
    RecoveryStatsSnapshot, ServiceCtx,
};
pub use gozer_compress::Codec;
pub use gozer_lang::{Reader, Symbol, Value};
pub use gozer_serial::{deserialize_state, deserialize_value, serialize_state, serialize_value};
pub use gozer_vm::{Condition, FiberState, Gvm, RunOutcome, Suspension, VmError};
pub use gozer_xml::{Element, QName, ServiceDescription};
pub use gozer_obs::{
    CriticalPath, CriticalSegment, Event, EventBus, EventKind, FlightDump, FlightRecorder,
    FnProfile, HealthReport, IntrospectServer, IntrospectSource, MetricsRegistry, Obs, Phase,
    PhaseBreakdown, ProfileReport, SerialCostSnapshot, Snapshot, TaskSummary, TaskTimeline,
    TimelineSet, PHASE_COUNT,
};
pub use vinz::{
    DurabilityTicket, FileLocks, FileStore, FileStoreBuilder, FsyncPolicy, InProcessLocks,
    LockManager, LogStats, LogStore, LogStoreBuilder, MemStore, RetryPolicy, StateStore,
    StoreError, SupervisorConfig, TaskRecord, TaskStatus, Trace, TraceEvent, TraceKind,
    VinzConfig, VinzError, Watermark, WorkflowObs, WorkflowService, WorkflowServiceBuilder,
    ZkLocks,
};
pub use zk_lite::ZkServer;

/// Re-export of the test-service and chaos-harness helpers (used by
/// examples, benches, and the randomized survivability suite).
pub mod testing {
    pub use vinz::testing::{
        chaos_seeds, install_flight_panic_hook, register_square_service, register_value_service,
        repro_command, run_workflow_under_chaos, run_workflow_under_chaos_flight, ChaosRun,
    };
}

/// A fully wired deployment: cluster + store + locks + workflow service.
pub struct GozerSystem {
    /// The simulated cluster.
    pub cluster: Arc<Cluster>,
    /// The deployed workflow service.
    pub workflow: WorkflowService,
}

/// Builder for [`GozerSystem`].
pub struct GozerSystemBuilder {
    nodes: u32,
    instances_per_node: usize,
    source: String,
    service_name: String,
    config: VinzConfig,
    policy: Policy,
    store: Option<Arc<dyn StateStore>>,
    locks: Option<Arc<dyn LockManager>>,
    cluster: Option<Arc<Cluster>>,
    introspect_addr: Option<String>,
}

impl GozerSystem {
    /// Start building a system.
    pub fn builder() -> GozerSystemBuilder {
        GozerSystemBuilder {
            nodes: 2,
            instances_per_node: 2,
            source: String::new(),
            service_name: "workflow".into(),
            config: VinzConfig::default(),
            policy: Policy::Fcfs,
            store: None,
            locks: None,
            cluster: None,
            introspect_addr: None,
        }
    }

    /// Run a workflow function to completion and return its value.
    pub fn call(
        &self,
        function: &str,
        args: Vec<Value>,
        timeout: Duration,
    ) -> Result<Value, VinzError> {
        self.workflow.call(function, args, timeout)
    }

    /// Start a workflow asynchronously (the `Start` operation).
    pub fn start(&self, function: &str, args: Vec<Value>) -> Result<String, VinzError> {
        self.workflow.start(function, args, None)
    }

    /// Wait for a started task.
    pub fn wait(&self, task_id: &str, timeout: Duration) -> Option<TaskRecord> {
        self.workflow.wait(task_id, timeout)
    }

    /// Stop all instances and close the cluster.
    pub fn shutdown(&self) {
        self.cluster.shutdown();
    }
}

impl GozerSystemBuilder {
    /// Number of simulated nodes (default 2).
    pub fn nodes(mut self, n: u32) -> Self {
        self.nodes = n.max(1);
        self
    }

    /// Workflow service instances per node (default 2).
    pub fn instances_per_node(mut self, n: usize) -> Self {
        self.instances_per_node = n.max(1);
        self
    }

    /// The workflow's Gozer source.
    pub fn workflow(mut self, source: &str) -> Self {
        self.source = source.to_string();
        self
    }

    /// Service name (default `"workflow"`).
    pub fn service_name(mut self, name: &str) -> Self {
        self.service_name = name.to_string();
        self
    }

    /// Vinz configuration.
    pub fn config(mut self, config: VinzConfig) -> Self {
        self.config = config;
        self
    }

    /// Enable the GVM execution profiler on every node runtime
    /// (per-opcode counts, per-function time attribution, folded
    /// stacks; read back through `workflow.obs().profile()`).
    pub fn profiling(mut self, on: bool) -> Self {
        self.config.profiling = on;
        self
    }

    /// Message-queue scheduling policy (default FCFS, as in production —
    /// §5).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Persistence store (default [`MemStore`]).
    pub fn store(mut self, store: Arc<dyn StateStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Lock manager (default [`InProcessLocks`]).
    pub fn locks(mut self, locks: Arc<dyn LockManager>) -> Self {
        self.locks = Some(locks);
        self
    }

    /// Use an existing cluster (e.g. with extra services registered).
    pub fn cluster(mut self, cluster: Arc<Cluster>) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Serve live introspection over HTTP on `addr` (`"127.0.0.1:0"`
    /// for an ephemeral port); the bound address is available from
    /// `workflow.introspect_addr()` after [`GozerSystemBuilder::build`].
    pub fn introspect(mut self, addr: &str) -> Self {
        self.introspect_addr = Some(addr.to_string());
        self
    }

    /// Deploy everything.
    pub fn build(self) -> Result<GozerSystem, VinzError> {
        let cluster = self
            .cluster
            .unwrap_or_else(|| Cluster::with_policy(self.policy));
        let store = self.store.unwrap_or_else(|| Arc::new(MemStore::new()));
        let locks = self
            .locks
            .unwrap_or_else(|| Arc::new(InProcessLocks::new()));
        let mut builder = WorkflowService::builder(&cluster, &self.service_name)
            .source(&self.source)
            .store(store)
            .locks(locks)
            .config(self.config);
        if let Some(addr) = &self.introspect_addr {
            builder = builder.introspect(addr);
        }
        for node in 0..self.nodes {
            builder = builder.instances(node, self.instances_per_node);
        }
        let workflow = builder.deploy()?;
        Ok(GozerSystem { cluster, workflow })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_deploys_and_runs() {
        let system = GozerSystem::builder()
            .nodes(1)
            .instances_per_node(2)
            .workflow("(defun main () (+ 20 22))")
            .build()
            .unwrap();
        let v = system
            .call("main", vec![], Duration::from_secs(30))
            .unwrap();
        assert_eq!(v, Value::Int(42));
        system.shutdown();
    }

    #[test]
    fn builder_rejects_bad_source() {
        let err = GozerSystem::builder()
            .workflow("(defun main (") // unterminated
            .build();
        assert!(err.is_err());
    }
}
