//! An interactive Gozer REPL — the paper calls the language a "scripting
//! language" with "support for interactive development"; this is that
//! loop.
//!
//! ```bash
//! cargo run -p gozer --bin gozer-repl
//! ```
//!
//! Multi-line input is supported (the reader keeps accepting lines until
//! parentheses balance). `:quit` exits, `:log` dumps captured output.
//!
//! ## The `timeline` subcommand
//!
//! ```bash
//! cargo run -p gozer --bin gozer-repl -- timeline workflow.gz main 5
//! ```
//!
//! Deploys the workflow source on a simulated 2-node cluster, runs
//! `main` with the given (integer or string) arguments, and prints the
//! Figure-1-style per-task timeline — every fiber as a span annotated
//! with the node/instance it executed on — followed by the metrics in
//! Prometheus text format.
//!
//! ## The `profile` subcommand
//!
//! ```bash
//! cargo run -p gozer --bin gozer-repl -- profile workflow.gz main 5
//! ```
//!
//! Same deployment, but with the GVM execution profiler enabled:
//! prints the top-N hot-function table (calls, inclusive/exclusive
//! time), the opcode mix, and the continuation serialize/deserialize
//! costs, and writes the folded stacks to `<file>.folded` — pipe that
//! through `flamegraph.pl` for an SVG. `profile --top-pairs <file>
//! <function>` adds the hottest adjacent opcode pairs, the reproducible
//! source of the superinstruction fusion table.

use std::io::{BufRead, Write};

use gozer::{GozerSystem, Gvm, Value};

fn paren_balance(src: &str) -> i32 {
    let mut depth = 0;
    let mut in_string = false;
    let mut escaped = false;
    let mut prev: Option<char> = None;
    for c in src.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else {
            match c {
                '"' => in_string = true,
                '(' | '[' | '{'
                    // #\( is a character literal, not an opener.
                    if prev != Some('\\') => {
                        depth += 1;
                    }
                ')' | ']' | '}'
                    if prev != Some('\\') => {
                        depth -= 1;
                    }
                _ => {}
            }
        }
        prev = Some(c);
    }
    depth
}

/// `timeline <file> <function> [args...]`: run a workflow and print the
/// per-task observability report.
fn run_timeline(args: &[String]) -> Result<(), String> {
    let (path, rest) = args
        .split_first()
        .ok_or("usage: gozer-repl timeline <file> <function> [args...]")?;
    let (function, rest) = rest
        .split_first()
        .ok_or("usage: gozer-repl timeline <file> <function> [args...]")?;
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let sys = GozerSystem::builder()
        .nodes(2)
        .instances_per_node(2)
        .workflow(&source)
        .build()
        .map_err(|e| format!("deploy failed: {e}"))?;
    let obs = sys.workflow.obs();
    obs.set_tracing(true);
    let call_args: Vec<Value> = rest
        .iter()
        .map(|a| {
            a.parse::<i64>()
                .map(Value::Int)
                .unwrap_or_else(|_| Value::str(a))
        })
        .collect();
    let v = sys
        .call(function, call_args, std::time::Duration::from_secs(300))
        .map_err(|e| format!("workflow failed: {e}"))?;
    println!("result: {v:?}\n");
    print!("{}", obs.render());
    println!("\n# metrics");
    print!("{}", obs.export_text());
    sys.shutdown();
    Ok(())
}

/// `profile [--top-pairs] <file> <function> [args...]`: run a workflow
/// with the GVM profiler on; print the hot-function report and write
/// the folded stacks next to the source file. With `--top-pairs`, also
/// print the hottest adjacent opcode pairs — the reproducible source of
/// the superinstruction fusion table (`crates/vm/src/fuse.rs`).
fn run_profile(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: gozer-repl profile [--top-pairs] <file> <function> [args...]";
    let mut args = args;
    let mut top_pairs = false;
    if args.first().map(String::as_str) == Some("--top-pairs") {
        top_pairs = true;
        args = &args[1..];
    }
    let (path, rest) = args.split_first().ok_or(USAGE)?;
    let (function, rest) = rest.split_first().ok_or(USAGE)?;
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let sys = GozerSystem::builder()
        .nodes(2)
        .instances_per_node(2)
        .workflow(&source)
        .profiling(true)
        .build()
        .map_err(|e| format!("deploy failed: {e}"))?;
    let call_args: Vec<Value> = rest
        .iter()
        .map(|a| {
            a.parse::<i64>()
                .map(Value::Int)
                .unwrap_or_else(|_| Value::str(a))
        })
        .collect();
    let v = sys
        .call(function, call_args, std::time::Duration::from_secs(300))
        .map_err(|e| format!("workflow failed: {e}"))?;
    println!("result: {v:?}\n");
    let profile = sys.workflow.obs().profile();
    print!("{}", profile.render(20));
    if top_pairs {
        println!("\n== top opcode pairs (fusion candidates) ==");
        print!("{}", profile.top_pairs(20));
    }
    let folded_path = format!("{path}.folded");
    std::fs::write(&folded_path, profile.folded_stacks())
        .map_err(|e| format!("cannot write {folded_path}: {e}"))?;
    println!("\nfolded stacks: {folded_path} (pipe through flamegraph.pl for an SVG)");
    sys.shutdown();
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("timeline") {
        if let Err(e) = run_timeline(&args[1..]) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    if args.first().map(String::as_str) == Some("profile") {
        if let Err(e) = run_profile(&args[1..]) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        return;
    }
    let gvm = Gvm::new();
    gvm.log_to_stdout
        .store(true, std::sync::atomic::Ordering::Relaxed);
    println!("Gozer REPL — (Lisp dialect of the Gozer workflow system)");
    println!("Type forms; :quit exits.\n");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("gozer> ");
        } else {
            print!("  ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                ":quit" | ":q" => break,
                ":log" => {
                    for entry in gvm.take_log() {
                        println!("{entry}");
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if paren_balance(&buffer) > 0 {
            continue; // keep reading lines
        }
        let src = std::mem::take(&mut buffer);
        match gvm.eval_str(&src) {
            Ok(v) => println!("=> {v:?}"),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye.");
}
