//! An interactive Gozer REPL — the paper calls the language a "scripting
//! language" with "support for interactive development"; this is that
//! loop.
//!
//! ```bash
//! cargo run -p gozer --bin gozer-repl
//! ```
//!
//! Multi-line input is supported (the reader keeps accepting lines until
//! parentheses balance). `:quit` exits, `:log` dumps captured output.

use std::io::{BufRead, Write};

use gozer::Gvm;

fn paren_balance(src: &str) -> i32 {
    let mut depth = 0;
    let mut in_string = false;
    let mut escaped = false;
    let mut prev: Option<char> = None;
    for c in src.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else {
            match c {
                '"' => in_string = true,
                '(' | '[' | '{'
                    // #\( is a character literal, not an opener.
                    if prev != Some('\\') => {
                        depth += 1;
                    }
                ')' | ']' | '}'
                    if prev != Some('\\') => {
                        depth -= 1;
                    }
                _ => {}
            }
        }
        prev = Some(c);
    }
    depth
}

fn main() {
    let gvm = Gvm::new();
    gvm.log_to_stdout
        .store(true, std::sync::atomic::Ordering::Relaxed);
    println!("Gozer REPL — (Lisp dialect of the Gozer workflow system)");
    println!("Type forms; :quit exits.\n");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("gozer> ");
        } else {
            print!("  ...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                ":quit" | ":q" => break,
                ":log" => {
                    for entry in gvm.take_log() {
                        println!("{entry}");
                    }
                    continue;
                }
                "" => continue,
                _ => {}
            }
        }
        buffer.push_str(&line);
        if paren_balance(&buffer) > 0 {
            continue; // keep reading lines
        }
        let src = std::mem::take(&mut buffer);
        match gvm.eval_str(&src) {
            Ok(v) => println!("=> {v:?}"),
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye.");
}
