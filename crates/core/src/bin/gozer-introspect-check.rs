//! Driver for the `introspect-check` CI gate: boot a deployment with
//! the live introspection server on an ephemeral port, run a workflow,
//! then fetch `/metrics`, `/healthz`, `/tasks`, and `/timeline/<task>`
//! over a plain `std::net::TcpStream` — the same path an external
//! scraper takes — and print each response under a `== <route>` marker
//! for `scripts/introspect_check.sh` to shape-check. Also asserts here
//! (where both sides are reachable) that the scraped `/metrics` body is
//! byte-identical to the in-process exporter.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use gozer::{GozerSystem, Value};

const WORKFLOW: &str = r#"
(defun main (n)
  (apply #'+ (for-each (i in (range n)) (* i i))))
"#;

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect to introspect server");
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: gozer\r\n\r\n").as_bytes())
        .expect("send request");
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read response");
    let (head, body) = resp.split_once("\r\n\r\n").expect("response head");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

fn main() {
    let system = GozerSystem::builder()
        .nodes(2)
        .instances_per_node(2)
        .workflow(WORKFLOW)
        .introspect("127.0.0.1:0")
        .build()
        .expect("deploy");
    let obs = system.workflow.obs();
    obs.set_tracing(true);
    let addr = system.workflow.introspect_addr().expect("server bound");

    let task = system.start("main", vec![Value::Int(6)]).expect("start");
    let rec = system
        .wait(&task, Duration::from_secs(60))
        .expect("task finishes");
    assert!(rec.status.is_final(), "task reached a final state");

    for route in ["/healthz", "/tasks", &format!("/timeline/{task}")] {
        let (status, body) = http_get(addr, route);
        println!("== {route} {status}");
        print!("{body}");
        if !body.ends_with('\n') {
            println!();
        }
    }

    // Byte identity between the wire and the in-process exporter.
    // Closure-backed samples can tick between the two reads on a busy
    // machine; retry until a stable pair lines up.
    let mut identical = false;
    let mut scraped = String::new();
    for _ in 0..40 {
        let (status, body) = http_get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK", "/metrics status");
        scraped = body;
        if scraped == obs.export_text() {
            identical = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    println!("== /metrics byte-identity {}", if identical { "MATCH" } else { "MISMATCH" });
    print!("{scraped}");

    system.shutdown();
    if !identical {
        std::process::exit(1);
    }
}
