//! Run the Listing-1 workflow under seeded fault injection and print
//! what got injected — the quickest way to see the chaos harness work:
//!
//! ```bash
//! cargo run --release -p gozer --example chaos_demo            # default seed
//! CHAOS_SEED=7 cargo run --release -p gozer --example chaos_demo
//! ```
//!
//! The same seed always produces the same fault *schedule*; run a seed
//! twice and the workflow lands on the same answer by the same rules.

use gozer::testing::{chaos_seeds, run_workflow_under_chaos};
use gozer::{ChaosConfig, Value};

const WORKFLOW: &str = "
(defun main (n)
  (apply #'+ (for-each (i in (range n)) (* i i))))
";

fn main() {
    let n = 12i64;
    let expected: i64 = (0..n).map(|i| i * i).sum();
    for seed in chaos_seeds(4) {
        match run_workflow_under_chaos(
            WORKFLOW,
            "main",
            vec![Value::Int(n)],
            ChaosConfig::survivability(seed),
        ) {
            Ok(run) => {
                assert_eq!(run.value, Value::Int(expected));
                println!(
                    "seed {seed}: ok (value {expected}{}) — faults {:?}",
                    if run.recovered {
                        ", via crash recovery"
                    } else {
                        ""
                    },
                    run.stats
                );
            }
            Err(e) => {
                eprintln!("{e}");
                eprintln!("  replay: CHAOS_SEED={seed} cargo run -p gozer --example chaos_demo");
                std::process::exit(1);
            }
        }
    }
}
