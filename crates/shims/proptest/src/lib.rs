//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_recursive`, range and regex-literal strategies,
//! `collection::vec`, `option::of`, `char::range`, [`Just`], unions via
//! `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert*`/`prop_assume!`.
//!
//! Differences from real proptest, deliberate for an offline test shim:
//!
//! * **No shrinking** — a failing case reports its exact inputs and the
//!   deterministic case seed instead of a minimized one.
//! * **Deterministic by default** — cases derive from a fixed seed, so
//!   CI runs are reproducible; set `PROPTEST_SEED` to explore other
//!   schedules.
//! * Regex strategies support the subset actually used: literals,
//!   character classes (with ranges), `.`, and `{n}`/`{n,m}`/`*`/`+`/`?`
//!   quantifiers.

use std::fmt;
use std::sync::Arc;

/// The seeded generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discard values failing a predicate (resamples; panics if the
    /// filter rejects persistently).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Build recursive structures: `recurse` receives a strategy for the
    /// nested level and returns the branching level. `depth` bounds the
    /// recursion; the size/branch hints of real proptest are accepted
    /// and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::weighted(vec![(1, leaf.clone()), (2, branch)]).boxed();
        }
        strat
    }

    /// Type-erase the strategy (cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe strategy surface backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn new_value_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S> DynStrategy<S::Value> for S
where
    S: Strategy,
{
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 consecutive samples", self.reason);
    }
}

/// Choice between boxed strategies, optionally weighted (the engine
/// behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: fmt::Debug + 'static> Union<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum::<u32>().max(1);
        Union { arms, total }
    }
}

impl<T: fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.new_value(rng);
            }
            pick -= w;
        }
        self.arms.last().expect("arms").1.new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Regex-literal strategies (subset: literals, classes, `.`, and
/// `{n}`/`{n,m}`/`*`/`+`/`?` quantifiers).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        string::generate_from_pattern(self, rng)
    }
}

mod string {
    use super::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        Any,
    }

    pub(crate) fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed class in regex {pattern:?}"));
                    let members = &chars[i + 1..close];
                    i = close + 1;
                    Atom::Class(parse_class(members, pattern))
                }
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).unwrap_or_else(|| {
                        panic!("dangling escape in regex {pattern:?}")
                    });
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (lo, hi) = parse_quantifier(&chars, &mut i, pattern);
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(sample_atom(&atom, rng));
            }
        }
        out
    }

    fn parse_class(members: &[char], pattern: &str) -> Vec<(char, char)> {
        assert!(!members.is_empty(), "empty class in regex {pattern:?}");
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < members.len() {
            if i + 2 < members.len() + 1 && members.get(i + 1) == Some(&'-') && i + 2 < members.len()
            {
                ranges.push((members[i], members[i + 2]));
                i += 3;
            } else {
                ranges.push((members[i], members[i]));
                i += 1;
            }
        }
        ranges
    }

    fn parse_quantifier(chars: &[char], i: &mut usize, pattern: &str) -> (usize, usize) {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| *i + p)
                    .unwrap_or_else(|| panic!("unclosed quantifier in regex {pattern:?}"));
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                *i += 1;
                (0, 8)
            }
            Some('+') => {
                *i += 1;
                (1, 8)
            }
            Some('?') => {
                *i += 1;
                (0, 1)
            }
            _ => (1, 1),
        }
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Any => char::from_u32(rng.below(95) as u32 + 0x20).expect("printable"),
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as u64).saturating_sub(*lo as u64) + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick as u32).expect("class char");
                    }
                    pick -= span;
                }
                ranges[0].0
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{BoxedStrategy, Strategy, TestRng};
    use std::fmt;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: fmt::Debug + Sized + 'static {
        /// Produce the canonical strategy.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    struct FullDomain<T>(fn(&mut TestRng) -> T);

    impl<T: fmt::Debug + 'static> Strategy for FullDomain<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    FullDomain(|rng: &mut TestRng| rng.next_u64() as $t).boxed()
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            FullDomain(|rng: &mut TestRng| rng.next_u64() & 1 == 1).boxed()
        }
    }

    impl Arbitrary for char {
        fn arbitrary() -> BoxedStrategy<char> {
            FullDomain(|rng: &mut TestRng| {
                char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
            })
            .boxed()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary() -> BoxedStrategy<f64> {
            FullDomain(|rng: &mut TestRng| {
                // Finite floats across a wide magnitude range.
                let mag = rng.unit_f64() * 600.0 - 300.0;
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                sign * mag.exp2() * rng.unit_f64()
            })
            .boxed()
        }
    }
}

/// The canonical strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-lower, exclusive-upper element-count range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose length falls in `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    /// `None` roughly a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }
}

/// `char` strategies.
pub mod char {
    use super::{Strategy, TestRng};

    /// See [`range`].
    pub struct CharRange(char, char);

    /// Uniform char in `[lo, hi]`.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange(lo, hi)
    }

    impl Strategy for CharRange {
        type Value = char;
        fn new_value(&self, rng: &mut TestRng) -> char {
            let span = self.1 as u64 - self.0 as u64 + 1;
            char::from_u32(self.0 as u32 + rng.below(span) as u32).expect("char in range")
        }
    }
}

/// The case runner behind the `proptest!` macro.
pub mod test_runner {
    use super::TestRng;

    /// Per-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A discard with the given reason.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one generated case, produced by the macro expansion.
    pub struct CaseResult {
        /// Debug rendering of the generated inputs.
        pub repr: String,
        /// Body outcome: panic payload, rejection, or pass/fail.
        pub outcome: std::thread::Result<Result<(), TestCaseError>>,
    }

    /// Base seed: fixed for reproducible CI, overridable for exploration.
    fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x00C0_FFEE_5EED_1234)
    }

    /// Run `config.cases` generated cases of `case`.
    pub fn run_cases(
        config: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> CaseResult,
    ) {
        let base = base_seed();
        let mut rejects = 0u64;
        let mut ran = 0u64;
        let mut stream = 0u64;
        while ran < config.cases as u64 {
            let mut rng = TestRng::new(base ^ (stream.wrapping_mul(0x2545_F491_4F6C_DD1D)));
            stream += 1;
            let result = case(&mut rng);
            match result.outcome {
                Ok(Ok(())) => ran += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejects += 1;
                    if rejects > 20 * config.cases as u64 {
                        panic!(
                            "proptest {name}: too many prop_assume! rejections \
                             ({rejects} rejects for {ran} accepted cases)"
                        );
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "proptest {name} failed (case {stream}, PROPTEST_SEED={base}):\n  \
                         inputs: {}\n  {msg}",
                        result.repr
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest {name} panicked (case {stream}, PROPTEST_SEED={base}):\n  \
                         inputs: {}",
                        result.repr
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, BoxedStrategy, Just, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. See crate docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expands each `fn` item inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::new_value(&($strat), __rng);)+
                let mut __repr = String::new();
                $(
                    __repr.push_str(concat!(stringify!($arg), " = "));
                    __repr.push_str(&format!("{:?}; ", &$arg));
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let __ret: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                        __ret
                    }),
                );
                $crate::test_runner::CaseResult { repr: __repr, outcome: __outcome }
            });
        }
        $crate::__proptest_items!{ $cfg; $($rest)* }
    };
}

/// Choose between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat),)+])
    };
}

/// Assert inside a property test (reports generated inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} != {:?}", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} != {:?}: {}", __a, __b, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {:?} == {:?}", __a, __b
        );
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::new(9);
        for _ in 0..200 {
            let s = crate::Strategy::new_value(&"[a-zA-Z][a-zA-Z0-9_-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
                "{s:?}"
            );
            let t = crate::Strategy::new_value(&"[ -~]{0,20}", &mut rng);
            assert!(t.len() <= 20 && t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
        }
    }

    #[test]
    fn deterministic_generation() {
        let strat = crate::collection::vec(0u32..100, 1..10);
        let a: Vec<Vec<u32>> = (0..10)
            .map(|i| crate::Strategy::new_value(&strat, &mut crate::TestRng::new(i)))
            .collect();
        let b: Vec<Vec<u32>> = (0..10)
            .map(|i| crate::Strategy::new_value(&strat, &mut crate::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(x in -50i64..50, ys in crate::collection::vec(0u32..10, 0..5)) {
            prop_assume!(x != -50);
            prop_assert!(x >= -49 && x < 50);
            prop_assert_eq!(ys.len(), ys.iter().count());
        }

        #[test]
        fn oneof_and_recursive_work(v in nested_strategy()) {
            prop_assert!(depth_of(&v) <= 4, "depth {}", depth_of(&v));
        }
    }

    #[derive(Debug, Clone)]
    enum Nested {
        Leaf(i64),
        Node(Vec<Nested>),
    }

    fn nested_strategy() -> BoxedStrategy<Nested> {
        let leaf = prop_oneof![(-5i64..5).prop_map(Nested::Leaf), Just(Nested::Leaf(0))];
        leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Nested::Node)
        })
    }

    fn depth_of(n: &Nested) -> usize {
        match n {
            Nested::Leaf(_) => 1,
            Nested::Node(children) => {
                1 + children.iter().map(depth_of).max().unwrap_or(0)
            }
        }
    }
}
