//! Offline shim for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros — as a simple
//! wall-clock timing harness. Each benchmark runs `sample_size`
//! samples (after one warm-up) and prints the median per-iteration
//! time. No statistics beyond that, no HTML reports, no comparisons.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Entry point handed to each registered benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.to_string(), self.sample_size, f);
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: impl fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter rendering.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// Identify by function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// Identify by parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(function) => write!(f, "{function}/{}", self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Collects iteration timings for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, adaptively batching very fast routines.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: aim for samples of at least ~1ms each.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let iters = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        } else {
            1
        };
        self.iters_per_sample = iters;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    // Warm-up sample, discarded.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut per_iter: Vec<u128> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() / bencher.iters_per_sample.max(1) as u128)
        .collect();
    per_iter.sort_unstable();
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0);
    eprintln!("  {label}: median {} per iter ({} samples)", fmt_nanos(median), per_iter.len());
}

fn fmt_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n + 1))
        });
        group.finish();
    }
}
