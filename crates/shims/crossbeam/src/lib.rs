//! Offline shim for the `crossbeam` crate.
//!
//! Provides the `crossbeam::channel` MPMC API surface the workspace
//! uses (`bounded`, `unbounded`, cloneable senders *and* receivers,
//! `recv`/`recv_timeout`/`try_recv`) on top of a mutex + condvar queue.
//! Semantics match crossbeam where the codebase depends on them:
//! disconnection when all senders (or all receivers) drop, blocking
//! `send` on a full bounded channel, FIFO delivery.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        /// Waiters for data (receivers) and, on bounded channels, for
        /// space (senders).
        recv_cond: Condvar,
        send_cond: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    fn chan<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            recv_cond: Condvar::new(),
            send_cond: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        chan(None)
    }

    /// Create a bounded channel; `send` blocks while `cap` messages are
    /// queued. `bounded(0)` is approximated with capacity 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        chan(Some(cap.max(1)))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.recv_cond.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.send_cond.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.lock();
            if let Some(cap) = self.0.capacity {
                while queue.len() >= cap {
                    if self.0.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(value));
                    }
                    queue = self
                        .0
                        .send_cond
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            queue.push_back(value);
            drop(queue);
            self.0.recv_cond.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    self.0.send_cond.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .recv_cond
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        /// Receive, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.0.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    self.0.send_cond.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .0
                    .recv_cond
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.lock();
            if let Some(v) = queue.pop_front() {
                self.0.send_cond.notify_one();
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.0.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.0.lock().is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn multi_consumer_competes() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let total: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn bounded_blocks_until_space() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(3).unwrap();
                tx
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            let _tx = t.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }
    }
}
