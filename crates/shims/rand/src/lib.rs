//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The workspace only uses seeded, reproducible generation — `StdRng::
//! seed_from_u64`, `gen_range`, `gen_bool`, `gen`, and the
//! `Distribution` trait — so this shim implements exactly that over a
//! splitmix64 core. Not cryptographically secure; deterministic per
//! seed, which is all the benches and the chaos harness require.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draw one standard sample.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: splitmix64 (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Distribution sampling (the `rand::distributions` module subset).
pub mod distributions {
    use super::Rng;

    /// A distribution over `T` values.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// A process-global convenience generator (fresh arbitrary seed per
/// call site use; not reproducible, mirrors `rand::thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos ^ std::process::id() as u64)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&f), "{f}");
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i), "{i}");
            let u = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&u), "{u}");
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
