//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal API surface it actually uses: `Mutex`, `RwLock`,
//! and `Condvar` with parking_lot's panic-free, non-poisoning guards.
//! Everything is a thin wrapper over `std::sync`; poisoning is swallowed
//! (parking_lot has no poisoning), which matches how the codebase treats
//! lock acquisition as infallible.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (non-poisoning `lock()`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or `deadline` passes; reports which happened.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Block until notified or `timeout` elapses; reports which happened.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                let r = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                if r.timed_out() {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        assert!(h.join().unwrap());
    }
}
