//! First-class continuations (`push-cc` / `%resume-cc`, paper §3.1/§4.1)
//! and deeper condition-system interactions.

use gozer_lang::Value;
use gozer_vm::{Gvm, RunOutcome};

fn eval(src: &str) -> Value {
    let gvm = Gvm::with_pool_size(2);
    gvm.eval_str(src)
        .unwrap_or_else(|e| panic!("eval failed: {e}\nsource: {src}"))
}

#[test]
fn push_cc_returns_a_continuation_object() {
    let gvm = Gvm::with_pool_size(1);
    gvm.eval_str("(defun wf () (let ((k (push-cc))) (type-of k)))")
        .unwrap();
    let f = gvm.function("wf").unwrap();
    let RunOutcome::Done(v) = gvm.call_fiber(&f, vec![]).unwrap() else {
        panic!("expected completion");
    };
    assert_eq!(v, Value::symbol("continuation"));
}

#[test]
fn resume_cc_restarts_from_capture_point() {
    // Classic loop-via-continuation: capture once, re-enter until a
    // counter reaches the limit. The captured state snapshots `n`, so
    // each resume must pass the next value explicitly.
    let gvm = Gvm::with_pool_size(1);
    gvm.eval_str(
        "(defvar *trips* 0)
         (defun wf ()
           (let ((k (push-cc)))
             ;; k is the continuation value on first pass; on re-entry it
             ;; is whatever %resume-cc delivered.
             (setq *trips* (+ *trips* 1))
             (if (< *trips* 4)
                 (%resume-cc (if (functionp k) nil k) :again)
                 :done)))",
    )
    .unwrap();
    // The continuation value isn't a function; stash it in a global on
    // first pass instead.
    let gvm2 = Gvm::with_pool_size(1);
    gvm2.eval_str(
        "(defvar *k* nil)
         (defvar *trips* 0)
         (defun wf ()
           (let ((k (push-cc)))
             (when (equal (type-of k) 'continuation)
               (setq *k* k))
             (setq *trips* (+ *trips* 1))
             (if (< *trips* 4)
                 (%resume-cc *k* :again)
                 (list :done *trips*))))",
    )
    .unwrap();
    let f = gvm2.function("wf").unwrap();
    let RunOutcome::Done(v) = gvm2.call_fiber(&f, vec![]).unwrap() else {
        panic!("expected completion");
    };
    // NOTE: *trips* is a process-global, not part of the continuation, so
    // it survives re-entry: 4 trips total.
    assert_eq!(v, gvm2.eval_str("(list :done 4)").unwrap());
}

#[test]
fn continuation_is_multi_shot() {
    // The same continuation can be resumed any number of times; each
    // entry sees the captured locals.
    let gvm = Gvm::with_pool_size(1);
    gvm.eval_str(
        "(defvar *k* nil)
         (defvar *count* 0)
         (defun capture ()
           (let ((v (push-cc)))
             (when (equal (type-of v) 'continuation)
               (setq *k* v)
               (setq v :first))
             v))
         (defun driver ()
           (let ((first (capture)))
             (setq *count* (+ *count* 1))
             (if (< *count* 3)
                 (%resume-cc *k* (list :resumed *count*))
                 (list first *count*))))",
    )
    .unwrap();
    let f = gvm.function("driver").unwrap();
    let RunOutcome::Done(v) = gvm.call_fiber(&f, vec![]).unwrap() else {
        panic!()
    };
    // Third pass: capture returned (list :resumed 2), count = 3.
    assert_eq!(v, gvm.eval_str("(list (list :resumed 2) 3)").unwrap());
}

#[test]
fn resume_cc_is_rejected_in_nested_contexts() {
    let gvm = Gvm::with_pool_size(2);
    let err = gvm
        .eval_str(
            "(defvar *k2* nil)
             (defun wf ()
               (let ((k (push-cc)))
                 (when (equal (type-of k) 'continuation)
                   (setq *k2* k)
                   ;; resuming from a future (background) thread must fail
                   (touch (future (%resume-cc *k2* 1))))))
             nil",
        )
        .and_then(|_| {
            let f = gvm.function("wf").unwrap();
            gvm.call_fiber(&f, vec![]).map(|_| Value::Nil)
        });
    assert!(err.is_err(), "expected nested resume to error");
}

// ---- deeper condition-system behaviour ----------------------------------

#[test]
fn handler_established_inside_handler_body() {
    // A handler's own body can signal; outer handlers see it.
    assert_eq!(
        eval(
            "(restart-case
               (handler-bind (lambda (outer-c) (invoke-restart 'done :outer))
                 (handler-bind (lambda (inner-c) (error \"re-signal\"))
                   (signal \"original\")))
               (done (v) v))"
        ),
        Value::keyword("outer")
    );
}

#[test]
fn restart_case_nested_same_name_picks_innermost() {
    assert_eq!(
        eval(
            "(restart-case
               (restart-case
                 (handler-bind (lambda (c) (invoke-restart 'r :inner))
                   (error \"x\"))
                 (r (v) (list :inner-clause v)))
               (r (v) (list :outer-clause v)))"
        ),
        eval("(list :inner-clause :inner)")
    );
}

#[test]
fn restart_args_are_delivered_in_order() {
    assert_eq!(
        eval(
            "(restart-case
               (handler-bind (lambda (c) (invoke-restart 'use 1 2 3))
                 (error \"x\"))
               (use (a b c) (list c b a)))"
        ),
        eval("(list 3 2 1)")
    );
}

#[test]
fn compute_restarts_sees_active_restarts() {
    assert_eq!(
        eval(
            "(restart-case
               (restart-case
                 (handler-bind (lambda (c) (invoke-restart 'report (compute-restarts)))
                   (error \"x\"))
                 (a () nil)
                 (b () nil))
               (report (rs) (length rs))
               (c () nil))"
        ),
        // report, c, a, b visible at signal time (report + c from outer,
        // a + b from inner).
        Value::Int(4)
    );
}

#[test]
fn signal_inside_loop_restarts_at_right_frame() {
    // Transfer out of a deep call chain lands at the restart-case frame.
    assert_eq!(
        eval(
            "(defun level3 () (error \"deep\"))
             (defun level2 () (level3))
             (defun level1 () (level2))
             (restart-case
               (handler-bind (lambda (c) (invoke-restart 'catch))
                 (level1))
               (catch () :caught))"
        ),
        Value::keyword("caught")
    );
}

#[test]
fn yields_inside_restart_case_work() {
    // A fiber can suspend while restarts are established; the dynamic
    // stacks travel with the continuation.
    let gvm = Gvm::with_pool_size(1);
    gvm.eval_str(
        "(defun wf ()
           (restart-case
             (progn
               (yield :mid)
               (handler-bind (lambda (c) (invoke-restart 'r :recovered))
                 (error \"after resume\")))
             (r (v) v)))",
    )
    .unwrap();
    let f = gvm.function("wf").unwrap();
    let RunOutcome::Suspended(s) = gvm.call_fiber(&f, vec![]).unwrap() else {
        panic!("expected suspension");
    };
    let RunOutcome::Done(v) = gvm.resume_fiber(s.state, Value::Nil).unwrap() else {
        panic!("expected completion");
    };
    assert_eq!(v, Value::keyword("recovered"));
}
