//! End-to-end language semantics tests for the GVM: evaluation, closures,
//! macros, futures, conditions/restarts, and continuations.

use gozer_lang::Value;
use gozer_vm::{Gvm, RunOutcome, VmError};

fn eval(src: &str) -> Value {
    let gvm = Gvm::with_pool_size(2);
    gvm.eval_str(src).unwrap_or_else(|e| panic!("eval failed: {e}\nsource: {src}"))
}

fn eval_err(src: &str) -> VmError {
    let gvm = Gvm::with_pool_size(2);
    gvm.eval_str(src).expect_err("expected error")
}

#[test]
fn arithmetic_and_comparison() {
    assert_eq!(eval("(+ 1 2 3)"), Value::Int(6));
    assert_eq!(eval("(- 10 1 2)"), Value::Int(7));
    assert_eq!(eval("(- 5)"), Value::Int(-5));
    assert_eq!(eval("(* 2 3 4)"), Value::Int(24));
    assert_eq!(eval("(/ 6 3)"), Value::Int(2));
    assert_eq!(eval("(/ 7 2)"), Value::Float(3.5));
    assert_eq!(eval("(mod -7 3)"), Value::Int(2));
    assert_eq!(eval("(rem -7 3)"), Value::Int(-1));
    assert_eq!(eval("(< 1 2 3)"), Value::Bool(true));
    assert_eq!(eval("(< 1 3 2)"), Value::Nil);
    assert_eq!(eval("(= 1 1.0)"), Value::Bool(true));
    assert_eq!(eval("(max 3 1 4 1 5)"), Value::Int(5));
    assert_eq!(eval("(expt 2 10)"), Value::Int(1024));
}

#[test]
fn overflow_promotes_to_float() {
    let v = eval("(* 9223372036854775807 2)");
    assert!(matches!(v, Value::Float(_)));
}

#[test]
fn let_scoping_and_shadowing() {
    assert_eq!(eval("(let ((x 1) (y 2)) (+ x y))"), Value::Int(3));
    assert_eq!(eval("(let ((x 1)) (let ((x 2)) x))"), Value::Int(2));
    assert_eq!(eval("(let ((x 1)) (let ((x (+ x 1))) x))"), Value::Int(2));
    // parallel let: inits see outer bindings
    assert_eq!(
        eval("(let ((x 1)) (let ((x 10) (y x)) y))"),
        Value::Int(1)
    );
    // let*: sequential
    assert_eq!(eval("(let* ((x 1) (y (+ x 1))) y)"), Value::Int(2));
}

#[test]
fn defun_and_recursion() {
    assert_eq!(
        eval("(progn (defun fact (n) (if (<= n 1) 1 (* n (fact (- n 1))))) (fact 10))"),
        Value::Int(3628800)
    );
}

#[test]
fn tail_recursion_is_constant_space() {
    // 100k iterations would blow a frame-per-call stack.
    assert_eq!(
        eval("(progn (defun count-down (n acc) (if (= n 0) acc (count-down (- n 1) (+ acc 1)))) (count-down 100000 0))"),
        Value::Int(100000)
    );
}

#[test]
fn closures_capture_by_value() {
    assert_eq!(
        eval("(progn (defun adder (n) (lambda (x) (+ x n))) (funcall (adder 5) 10))"),
        Value::Int(15)
    );
    // nested capture through two lambdas
    assert_eq!(
        eval("(let ((a 1)) (funcall (funcall (lambda () (lambda () a)))))"),
        Value::Int(1)
    );
}

#[test]
fn keyword_and_optional_params() {
    assert_eq!(
        eval("(progn (defun f (a &optional (b 10)) (+ a b)) (list (f 1) (f 1 2)))"),
        eval("(list 11 3)")
    );
    assert_eq!(
        eval("(progn (defun g (&key x (y 5)) (list x y)) (g :x 1))"),
        eval("(list 1 5)")
    );
    assert_eq!(
        eval("(progn (defun h (a &rest r) (list a r)) (h 1 2 3))"),
        eval("(list 1 (list 2 3))")
    );
}

#[test]
fn apply_and_funcall() {
    assert_eq!(eval("(apply #'+ 1 2 (list 3 4))"), Value::Int(10));
    assert_eq!(eval("(funcall #'* 3 4)"), Value::Int(12));
}

#[test]
fn core_macros() {
    assert_eq!(eval("(when t 1 2 3)"), Value::Int(3));
    assert_eq!(eval("(when nil 1)"), Value::Nil);
    assert_eq!(eval("(unless nil 7)"), Value::Int(7));
    assert_eq!(eval("(cond (nil 1) ((= 1 1) 2) (t 3))"), Value::Int(2));
    assert_eq!(eval("(cond (nil 1) (otherwise 9))"), Value::Int(9));
    assert_eq!(
        eval("(case (+ 1 1) (1 :one) (2 :two) (otherwise :many))"),
        Value::keyword("two")
    );
    assert_eq!(
        eval("(let ((acc 0)) (dotimes (i 5) (setq acc (+ acc i))) acc)"),
        Value::Int(10)
    );
    assert_eq!(
        eval("(let ((acc nil)) (dolist (x (list 1 2 3)) (push x acc)) acc)"),
        eval("(list 3 2 1)")
    );
    assert_eq!(eval("(let ((x 1)) (incf x 4) x)"), Value::Int(5));
    assert_eq!(eval("(prog1 1 2 3)"), Value::Int(1));
}

#[test]
fn loop_macro_subset() {
    // Listing 1's loc-sum-squares shape.
    assert_eq!(
        eval("(apply #'+ (loop for n in (list 1 2 3 4) collect (* n n)))"),
        Value::Int(30)
    );
    assert_eq!(eval("(loop for i from 1 to 5 sum i)"), Value::Int(15));
    assert_eq!(eval("(loop for i from 0 below 10 by 2 count (evenp i))"), Value::Int(5));
    assert_eq!(
        eval("(let ((n 0)) (loop repeat 4 do (incf n)) n)"),
        Value::Int(4)
    );
    assert_eq!(
        eval("(loop for i from 1 to 100 while (< i 4) collect i)"),
        eval("(list 1 2 3)")
    );
}

#[test]
fn quasiquote() {
    assert_eq!(eval("`(1 2 ,(+ 1 2))"), eval("(list 1 2 3)"));
    assert_eq!(eval("(let ((xs (list 2 3))) `(1 ,@xs 4))"), eval("(list 1 2 3 4)"));
    assert_eq!(eval("`(a b)"), eval("(list 'a 'b)"));
}

#[test]
fn user_macros() {
    assert_eq!(
        // Load semantics: a macro must be a separate top-level form before
        // its first use (the compiler expands at compile time).
        eval(
            "(defmacro my-or2 (a b)
               (let ((v (gensym)))
                 `(let ((,v ,a)) (if ,v ,v ,b))))
             (list (my-or2 nil 2) (my-or2 1 (error \"not evaluated\")))"
        ),
        eval("(list 2 1)")
    );
}

#[test]
fn strings_and_format() {
    assert_eq!(
        eval("(format nil \"~a + ~a = ~d~%\" 1 2 3)"),
        Value::str("1 + 2 = 3\n")
    );
    assert_eq!(eval("(concat \"a\" 1 :k)"), Value::str("a1:k"));
    assert_eq!(eval("(string-split \"a,b,c\" \",\")"), eval("(list \"a\" \"b\" \"c\")"));
    assert_eq!(eval("(string-join (list 1 2) \"-\")"), Value::str("1-2"));
}

#[test]
fn method_calls() {
    assert_eq!(eval("(. \"hello^\" (endsWith \"^\"))"), Value::Bool(true));
    assert_eq!(eval("(. \"hello\" (toUpperCase))"), Value::str("HELLO"));
    assert_eq!(eval("(. (list 1 2 3) (size))"), Value::Int(3));
    assert_eq!(
        eval(
            "(let ((msg (create-object \"message\")))
               (. msg (set \"a\" 41))
               (+ 1 (. msg (get \"a\"))))"
        ),
        Value::Int(42)
    );
}

#[test]
fn higher_order_natives() {
    assert_eq!(
        eval("(mapcar (lambda (x) (* x 10)) (list 1 2 3))"),
        eval("(list 10 20 30)")
    );
    assert_eq!(
        eval("(reduce #'+ (list 1 2 3 4) 100)"),
        Value::Int(110)
    );
    assert_eq!(
        eval("(sort (list 3 1 2) #'<)"),
        eval("(list 1 2 3)")
    );
    assert_eq!(
        eval("(remove-if #'evenp (list 1 2 3 4 5))"),
        eval("(list 1 3 5)")
    );
    assert_eq!(
        eval("(mapcar #'+ (list 1 2) (list 10 20))"),
        eval("(list 11 22)")
    );
}

#[test]
fn prelude_functions() {
    assert_eq!(eval("(cadr (list 1 2 3))"), Value::Int(2));
    assert_eq!(
        eval("(funcall (curry #'+ 1 2) 3)"),
        Value::Int(6)
    );
    assert_eq!(
        eval("(funcall (complement #'evenp) 3)"),
        Value::Bool(true)
    );
    assert_eq!(eval("(funcall (constantly 9) 1 2 3)"), Value::Int(9));
    assert_eq!(
        eval("(mapcan (lambda (x) (list x x)) (list 1 2))"),
        eval("(list 1 1 2 2)")
    );
}

// ---- futures (§2) -------------------------------------------------------

#[test]
fn futures_compute_in_parallel_and_force_transparently() {
    // par-sum-squares from Listing 1: futures are forced when passed to
    // the + native.
    assert_eq!(
        eval("(apply #'+ (loop for n in (range 1 11) collect (future (* n n))))"),
        Value::Int(385)
    );
}

#[test]
fn touch_and_future_done() {
    assert_eq!(eval("(touch (future 42))"), Value::Int(42));
    assert_eq!(eval("(touch 42)"), Value::Int(42));
    assert_eq!(eval("(future-done? 42)"), Value::Bool(true));
}

#[test]
fn pcall_forces_arguments() {
    assert_eq!(
        eval("(pcall #'+ (future 1) (future 2))"),
        Value::Int(3)
    );
}

#[test]
fn future_errors_surface_at_touch() {
    let err = eval_err("(touch (future (error \"boom\")))");
    assert!(err.to_string().contains("boom"), "{err}");
}

#[test]
fn futures_eager_mode() {
    let gvm = Gvm::with_pool_size(2);
    gvm.futures_enabled
        .store(false, std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        gvm.eval_str("(touch (future (* 6 7)))").unwrap(),
        Value::Int(42)
    );
}

// ---- conditions and restarts (§3.7) -------------------------------------

#[test]
fn unhandled_error_fails_fiber() {
    let err = eval_err("(error \"kaput ~a\" 7)");
    assert!(err.to_string().contains("kaput 7"));
}

#[test]
fn handler_bind_with_restart_case() {
    // handler transfers to the `use-instead` restart.
    assert_eq!(
        eval(
            "(restart-case
               (handler-bind (lambda (c) (invoke-restart 'use-instead 99))
                 (+ 1 (error \"nope\")))
               (use-instead (v) v))"
        ),
        Value::Int(99)
    );
}

#[test]
fn declined_conditions_continue_to_outer_handler() {
    assert_eq!(
        eval(
            "(restart-case
               (handler-bind (lambda (c) nil) ; declines
                 (handler-bind (lambda (c) (if (condition-matches? c \"error\")
                                                (invoke-restart 'out 1)
                                                nil))
                   (error \"x\")))
               (out (v) v))"
        ),
        Value::Int(1)
    );
}

#[test]
fn signal_without_handlers_returns_nil() {
    assert_eq!(eval("(progn (signal \"meh\") 5)"), Value::Int(5));
}

#[test]
fn retry_restart_reruns_operation() {
    // A function that fails the first 2 times; the handler retries.
    assert_eq!(
        eval(
            "(progn
               (defvar *attempts* 0)
               (defun flaky ()
                 (setq *attempts* (+ *attempts* 1))
                 (if (< *attempts* 3) (error \"transient\") *attempts*))
               (defun call-with-retry ()
                 (restart-case
                   (handler-bind (lambda (c) (invoke-restart 'retry))
                     (flaky))
                   (retry () (call-with-retry))))
               (call-with-retry))"
        ),
        Value::Int(3)
    );
}

#[test]
fn ignore_errors_macro() {
    assert_eq!(eval("(ignore-errors (error \"x\") 1)"), Value::Nil);
    assert_eq!(eval("(ignore-errors 7)"), Value::Int(7));
}

#[test]
fn handlers_see_condition_payload() {
    assert_eq!(
        eval(
            "(restart-case
               (handler-bind (lambda (c) (invoke-restart 'out (condition-message c)))
                 (error \"the-message\"))
               (out (m) m))"
        ),
        Value::str("the-message")
    );
}

#[test]
fn condition_designator_matching() {
    assert_eq!(
        eval(
            "(let ((c (make-condition :types (list \"java.net.SocketException\") :message \"conn\")))
               (list (condition-matches? c \"java.net.SocketException\")
                     (condition-matches? c \"condition\")
                     (condition-matches? c \"other\")))"
        ),
        eval("(list t t nil)")
    );
}

// ---- continuations (§4.1) ------------------------------------------------

#[test]
fn yield_suspends_and_resume_delivers_value() {
    let gvm = Gvm::with_pool_size(2);
    gvm.eval_str("(defun wf () (+ 100 (yield :waiting)))").unwrap();
    let f = gvm.function("wf").unwrap();
    let outcome = gvm.call_fiber(&f, vec![]).unwrap();
    let RunOutcome::Suspended(susp) = outcome else {
        panic!("expected suspension");
    };
    assert_eq!(susp.payload, Value::keyword("waiting"));
    let outcome = gvm.resume_fiber(susp.state, Value::Int(11)).unwrap();
    let RunOutcome::Done(v) = outcome else {
        panic!("expected completion");
    };
    assert_eq!(v, Value::Int(111));
}

#[test]
fn multiple_yields_in_a_loop() {
    let gvm = Gvm::with_pool_size(2);
    gvm.eval_str(
        "(defun wf (n)
           (let ((acc 0))
             (dotimes (i n)
               (setq acc (+ acc (yield i))))
             acc))",
    )
    .unwrap();
    let f = gvm.function("wf").unwrap();
    let mut outcome = gvm.call_fiber(&f, vec![Value::Int(3)]).unwrap();
    let mut yielded = Vec::new();
    let result = loop {
        match outcome {
            RunOutcome::Suspended(s) => {
                yielded.push(s.payload.clone());
                outcome = gvm.resume_fiber(s.state, Value::Int(10)).unwrap();
            }
            RunOutcome::Done(v) => break v,
        }
    };
    assert_eq!(yielded, vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
    assert_eq!(result, Value::Int(30));
}

#[test]
fn continuation_state_is_cloneable_and_replayable() {
    // The same suspension can be resumed twice with different values —
    // the continuation is plain data.
    let gvm = Gvm::with_pool_size(2);
    gvm.eval_str("(defun wf () (* 2 (yield nil)))").unwrap();
    let f = gvm.function("wf").unwrap();
    let RunOutcome::Suspended(susp) = gvm.call_fiber(&f, vec![]).unwrap() else {
        panic!("expected suspension");
    };
    let state2 = susp.state.clone();
    let RunOutcome::Done(a) = gvm.resume_fiber(susp.state, Value::Int(3)).unwrap() else {
        panic!()
    };
    let RunOutcome::Done(b) = gvm.resume_fiber(state2, Value::Int(5)).unwrap() else {
        panic!()
    };
    assert_eq!(a, Value::Int(6));
    assert_eq!(b, Value::Int(10));
}

#[test]
fn yield_forces_pending_futures_before_capture() {
    // A pending future referenced by a local must be determined by the
    // time the suspension is returned (§4.1).
    let gvm = Gvm::with_pool_size(2);
    gvm.eval_str(
        "(defun wf ()
           (let ((f (future (progn (sleep-millis 20) 7))))
             (yield :snap)
             (touch f)))",
    )
    .unwrap();
    let f = gvm.function("wf").unwrap();
    let RunOutcome::Suspended(susp) = gvm.call_fiber(&f, vec![]).unwrap() else {
        panic!("expected suspension");
    };
    // All futures inside the captured state are determined.
    let RunOutcome::Done(v) = gvm.resume_fiber(susp.state, Value::Nil).unwrap() else {
        panic!()
    };
    assert_eq!(v, Value::Int(7));
}

#[test]
fn yield_from_future_thread_is_an_error() {
    let err = eval_err("(touch (future (yield 1)))");
    assert!(
        err.to_string().contains("unexpected unwind") || err.to_string().contains("Yield"),
        "{err}"
    );
}

#[test]
fn reader_macro_installed_at_runtime() {
    // Listing 5: install ^var^ syntax, then use it in later forms. Here
    // the handler rewrites to a quoted marker we can observe.
    assert_eq!(
        // The macro character takes effect for forms read after the
        // installing form, so it must be a separate top-level form.
        eval(
            "(set-macro-character #\\^
               (lambda (the-stream c)
                 (let ((var-name (read the-stream t nil t)))
                   `(list :task-var ',var-name)))
               t)
             (first ^exit-flag^)"
        ),
        Value::keyword("task-var")
    );
}

#[test]
fn eval_and_read_from_string() {
    assert_eq!(eval("(eval (read-from-string \"(+ 1 2)\"))"), Value::Int(3));
    assert_eq!(
        eval("(eval (list '+ 1 2))"),
        Value::Int(3)
    );
}

#[test]
fn docstrings_survive_compilation() {
    assert_eq!(
        eval("(progn (defun f (x) \"doc here\" x) (doc #'f))"),
        Value::str("doc here")
    );
}

#[test]
fn log_collects_output() {
    let gvm = Gvm::with_pool_size(2);
    gvm.eval_str("(log \"hello\" 42)").unwrap();
    assert_eq!(gvm.take_log(), vec!["hello 42".to_string()]);
}

#[test]
fn assert_macro() {
    assert_eq!(eval("(progn (assert (= 1 1)) :ok)"), Value::keyword("ok"));
    let err = eval_err("(assert (= 1 2))");
    assert!(err.to_string().contains("assertion failed"));
}

#[test]
fn unhandled_conditions_carry_backtraces() {
    let gvm = Gvm::with_pool_size(1);
    // The `+ 0` wrappers defeat tail-call elimination so every frame is
    // live at signal time.
    gvm.eval_str(
        "(defun inner () (error \"deep failure\"))
         (defun middle () (+ 0 (inner)))
         (defun outer () (+ 0 (middle)))",
    )
    .unwrap();
    let f = gvm.function("outer").unwrap();
    let err = gvm.call_fiber(&f, vec![]).unwrap_err();
    let VmError::Signal(cond) = err else {
        panic!("expected signal");
    };
    let bt = cond
        .field("backtrace")
        .and_then(|v| v.as_str().map(str::to_owned))
        .expect("backtrace attached");
    assert!(bt.contains("outer"), "{bt}");
    assert!(bt.contains("middle"), "{bt}");
    assert!(bt.contains("inner"), "{bt}");
}
