//! Differential tests for the PR-10 interpreter optimizations:
//! superinstruction fusion, inline-cached globals, frame pooling, and
//! the arithmetic fast paths are all *semantics-preserving*, and the
//! profiler must report **bit-identical opcode and pair counts** fused
//! vs unfused (constituent crediting) — that is the determinism
//! contract serialized continuations ride on.

use gozer_lang::Value;
use gozer_vm::{set_fuse_override, Gvm, RunOutcome};
use proptest::prelude::*;
use std::sync::Arc;

/// Build a VM whose programs compile with fusion forced on or off
/// (compilation happens on the calling thread, so the thread-local
/// override is race-free here).
fn gvm_with_fuse(fuse: bool, src: &str) -> Arc<Gvm> {
    set_fuse_override(Some(fuse));
    let gvm = Gvm::with_pool_size(1);
    gvm.profiler().set_enabled(true);
    let r = gvm.load_str(src, "fusion-test");
    set_fuse_override(None);
    r.unwrap_or_else(|e| panic!("load failed: {e}\nsource: {src}"));
    gvm
}

/// Run `call` on both a fused and an unfused VM loaded with `src`;
/// assert identical results and identical profiler opcode *and* pair
/// counts.
fn differential(src: &str, function: &str, args: Vec<Value>) -> Value {
    let fused = gvm_with_fuse(true, src);
    let unfused = gvm_with_fuse(false, src);
    let f1 = fused.function(function).unwrap();
    let f2 = unfused.function(function).unwrap();
    let v1 = fused.call_sync(&f1, args.clone()).unwrap();
    let v2 = unfused.call_sync(&f2, args).unwrap();
    assert_eq!(v1, v2, "fused and unfused disagree on {function}");
    let s1 = fused.profiler().snapshot();
    let s2 = unfused.profiler().snapshot();
    assert_eq!(
        s1.opcodes, s2.opcodes,
        "constituent opcode counts must be bit-identical fused vs unfused ({function})"
    );
    assert_eq!(
        s1.pairs, s2.pairs,
        "adjacent-pair counts must be bit-identical fused vs unfused ({function})"
    );
    v1
}

#[test]
fn fib_identical_across_modes() {
    let v = differential(
        "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        "fib",
        vec![Value::Int(14)],
    );
    assert_eq!(v, Value::Int(377));
}

#[test]
fn loop_sum_identical_across_modes() {
    let v = differential(
        "(defun sum-to (n) (loop for i from 1 to n sum i))",
        "sum-to",
        vec![Value::Int(500)],
    );
    assert_eq!(v, Value::Int(125250));
}

#[test]
fn collect_map_identical_across_modes() {
    let v = differential(
        "(defun squares (n)
           (apply #'+ (loop for i from 1 to n collect (* i i))))",
        "squares",
        vec![Value::Int(50)],
    );
    assert_eq!(v, Value::Int(42925));
}

#[test]
fn globals_and_closures_identical_across_modes() {
    let v = differential(
        "(defvar *acc* 0)
         (defun step-fn (x) (setq *acc* (+ *acc* x)) *acc*)
         (defun run (n)
           (setq *acc* 0)
           (let ((add (lambda (a b) (+ a b))))
             (loop for i from 1 to n sum (add (step-fn i) i))))",
        "run",
        vec![Value::Int(40)],
    );
    // sum over i of (acc_i + i) where acc_i = i(i+1)/2.
    let expected: i64 = (1..=40).map(|i| i * (i + 1) / 2 + i).sum();
    assert_eq!(v, Value::Int(expected));
}

#[test]
fn yield_resume_identical_across_modes() {
    // The continuation-capture path: both modes must suspend at the
    // same logical point, resume identically, and count identically.
    let src = "(defun gen (n)
                 (let ((acc 0))
                   (loop for i from 1 to n do
                     (setq acc (+ acc (yield i))))
                   acc))";
    let run = |fuse: bool| {
        let gvm = gvm_with_fuse(fuse, src);
        let f = gvm.function("gen").unwrap();
        let mut outcome = gvm.call_fiber(&f, vec![Value::Int(5)]).unwrap();
        let mut payloads = Vec::new();
        loop {
            match outcome {
                RunOutcome::Suspended(s) => {
                    payloads.push(s.payload.clone());
                    // Resume with double the yielded value.
                    let Value::Int(i) = s.payload else { panic!("int payload") };
                    outcome = gvm.resume_fiber(s.state, Value::Int(i * 2)).unwrap();
                }
                RunOutcome::Done(v) => return (payloads, v, gvm.profiler().snapshot()),
            }
        }
    };
    let (p1, v1, s1) = run(true);
    let (p2, v2, s2) = run(false);
    assert_eq!(p1, p2);
    assert_eq!(v1, v2);
    assert_eq!(v1, Value::Int(30)); // 2*(1+2+3+4+5)
    assert_eq!(s1.opcodes, s2.opcodes);
    assert_eq!(s1.pairs, s2.pairs);
}

// ---- regression pins for the satellite refactors ----------------------

#[test]
fn store_global_and_def_global_share_runtime_semantics() {
    // The duplicated StoreGlobal/DefGlobal arms were collapsed into one:
    // both write the named global unconditionally at runtime (defvar's
    // define-if-unbound policy is a compile-time concern). Pin that.
    let gvm = Gvm::with_pool_size(1);
    gvm.eval_str("(defvar *g* 1)").unwrap();
    assert_eq!(gvm.eval_str("*g*").unwrap(), Value::Int(1));
    gvm.eval_str("(setq *g* 2)").unwrap();
    assert_eq!(gvm.eval_str("*g*").unwrap(), Value::Int(2));
    // defun redefinition goes through the same write path.
    gvm.eval_str("(defun f () 1)").unwrap();
    assert_eq!(gvm.eval_str("(f)").unwrap(), Value::Int(1));
    gvm.eval_str("(defun f () 2)").unwrap();
    assert_eq!(gvm.eval_str("(f)").unwrap(), Value::Int(2));
}

#[test]
fn inline_cache_sees_redefinition() {
    // Warm a callsite's inline cache hard, redefine the global it
    // caches, and require the very next call to see the new binding —
    // the generation-stamp protocol's visibility guarantee.
    let gvm = Gvm::with_pool_size(1);
    gvm.load_str(
        "(defvar *op* nil)
         (setq *op* (lambda (a b) (+ a b)))
         (defun apply-op (n)
           (let ((acc 0))
             (loop for i from 1 to n do (setq acc (*op* acc i)))
             acc))",
        "ic-test",
    )
    .unwrap();
    let f = gvm.function("apply-op").unwrap();
    assert_eq!(gvm.call_sync(&f, vec![Value::Int(100)]).unwrap(), Value::Int(5050));
    gvm.eval_str("(setq *op* (lambda (a b) (- a b)))").unwrap();
    let folded: i64 = (1..=100i64).fold(0, |acc, i| acc - i);
    assert_eq!(gvm.call_sync(&f, vec![Value::Int(100)]).unwrap(), Value::Int(folded));
}

#[test]
fn global_writes_visible_within_one_activation() {
    // A setq in the middle of a hot loop must be visible to the
    // inline-cached read in the same activation (epoch bump ordering).
    let gvm = Gvm::with_pool_size(1);
    let v = gvm
        .eval_str(
            "(progn
               (defvar *c* 0)
               (defun bump (n)
                 (loop for i from 1 to n do (setq *c* (+ *c* 1)))
                 *c*)
               (bump 64))",
        )
        .unwrap();
    assert_eq!(v, Value::Int(64));
}

#[test]
fn take_local_collect_survives_yield_in_body() {
    // `loop collect` compiles the accumulator through TakeLocal (move,
    // leave nil) so %append1 can mutate in place. A yield mid-body
    // captures between the move and the store-back; resume must not
    // lose or duplicate accumulated elements.
    let src = "(defun gen (n)
                 (loop for i from 1 to n collect (progn (yield i) (* i i))))";
    for fuse in [true, false] {
        let gvm = gvm_with_fuse(fuse, src);
        let f = gvm.function("gen").unwrap();
        let mut outcome = gvm.call_fiber(&f, vec![Value::Int(6)]).unwrap();
        loop {
            match outcome {
                RunOutcome::Suspended(s) => {
                    outcome = gvm.resume_fiber(s.state, Value::Nil).unwrap();
                }
                RunOutcome::Done(v) => {
                    let expected = Value::list((1..=6i64).map(|i| Value::Int(i * i)).collect());
                    assert_eq!(v, expected, "fuse={fuse}");
                    break;
                }
            }
        }
    }
}

// ---- property sweep ----------------------------------------------------

/// A tiny expression AST covering the fused-op shapes: two-local calls,
/// local-and-const calls, comparisons feeding branches, let bindings.
#[derive(Debug, Clone)]
enum Expr {
    Lit(i64),
    Var,
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    Let(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn to_gozer(&self, depth: usize) -> String {
        match self {
            Expr::Lit(i) => i.to_string(),
            Expr::Var => {
                if depth == 0 {
                    "p".into()
                } else {
                    format!("v{}", depth - 1)
                }
            }
            Expr::Add(a, b) => format!("(+ {} {})", a.to_gozer(depth), b.to_gozer(depth)),
            Expr::Sub(a, b) => format!("(- {} {})", a.to_gozer(depth), b.to_gozer(depth)),
            Expr::Mul(a, b) => format!("(* {} {})", a.to_gozer(depth), b.to_gozer(depth)),
            Expr::If(c, t, e) => format!(
                "(if (< 0 {}) {} {})",
                c.to_gozer(depth),
                t.to_gozer(depth),
                e.to_gozer(depth)
            ),
            Expr::Let(a, b) => format!(
                "(let ((v{} {})) {})",
                depth,
                a.to_gozer(depth),
                b.to_gozer(depth + 1)
            ),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![(-20i64..20).prop_map(Expr::Lit), Just(Expr::Var)];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::If(Box::new(c), Box::new(t), Box::new(e))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Let(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_identical_fused_vs_unfused(e in expr_strategy(), p in -10i64..10) {
        // Wrap the expression in a function and a small driver loop so
        // the fused call shapes (quads included) actually trigger.
        let src = format!(
            "(defun f (p) {})
             (defun drive (p) (loop for i from 0 to 3 sum (f (+ p i))))",
            e.to_gozer(0)
        );
        differential(&src, "drive", vec![Value::Int(p)]);
    }
}
