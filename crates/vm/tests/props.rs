//! Property tests for the compiler + interpreter: randomly generated
//! expressions must evaluate to the same value as a Rust-side model, and
//! compilation must be deterministic (the invariant fiber migration
//! relies on).

use gozer_lang::Value;
use gozer_vm::{Compiler, Gvm, GvmHost};
use proptest::prelude::*;

/// A tiny expression AST mirrored in Gozer and in Rust.
#[derive(Debug, Clone)]
enum Expr {
    Lit(i64),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    Let(Box<Expr>, Box<Expr>), // (let ((x a)) b(x)) — b references x as +x
    Var,                       // innermost bound variable (0 when unbound)
}

impl Expr {
    fn to_gozer(&self, depth: usize) -> String {
        match self {
            Expr::Lit(i) => i.to_string(),
            Expr::Add(a, b) => format!("(+ {} {})", a.to_gozer(depth), b.to_gozer(depth)),
            Expr::Sub(a, b) => format!("(- {} {})", a.to_gozer(depth), b.to_gozer(depth)),
            Expr::Mul(a, b) => format!("(* {} {})", a.to_gozer(depth), b.to_gozer(depth)),
            Expr::Min(a, b) => format!("(min {} {})", a.to_gozer(depth), b.to_gozer(depth)),
            Expr::Max(a, b) => format!("(max {} {})", a.to_gozer(depth), b.to_gozer(depth)),
            Expr::If(c, t, e) => format!(
                "(if (< 0 {}) {} {})",
                c.to_gozer(depth),
                t.to_gozer(depth),
                e.to_gozer(depth)
            ),
            Expr::Let(a, b) => format!(
                "(let ((v{} {})) {})",
                depth,
                a.to_gozer(depth),
                b.to_gozer(depth + 1)
            ),
            Expr::Var => {
                if depth == 0 {
                    "0".to_string()
                } else {
                    format!("v{}", depth - 1)
                }
            }
        }
    }

    fn eval(&self, env: &[i64]) -> i64 {
        match self {
            Expr::Lit(i) => *i,
            Expr::Add(a, b) => a.eval(env).wrapping_add(b.eval(env)),
            Expr::Sub(a, b) => a.eval(env).wrapping_sub(b.eval(env)),
            Expr::Mul(a, b) => a.eval(env).wrapping_mul(b.eval(env)),
            Expr::Min(a, b) => a.eval(env).min(b.eval(env)),
            Expr::Max(a, b) => a.eval(env).max(b.eval(env)),
            Expr::If(c, t, e) => {
                if c.eval(env) > 0 {
                    t.eval(env)
                } else {
                    e.eval(env)
                }
            }
            Expr::Let(a, b) => {
                let v = a.eval(env);
                let mut env2 = env.to_vec();
                env2.push(v);
                b.eval(&env2)
            }
            Expr::Var => env.last().copied().unwrap_or(0),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    // Small literals so products stay within i64 at depth ≤ 5 and the
    // Gozer side never hits the float-promotion path.
    let leaf = prop_oneof![(-50i64..50).prop_map(Expr::Lit), Just(Expr::Var)];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Max(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::If(Box::new(c), Box::new(t), Box::new(e))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Expr::Let(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_expressions_match_reference(e in expr_strategy()) {
        let expected = e.eval(&[]);
        // Values that would overflow i64 along the way can diverge via
        // float promotion; the wrapping model catches true overflow, so
        // only compare when the magnitudes stay sane.
        let magnitude_ok = expected.abs() < (1i64 << 40);
        prop_assume!(magnitude_ok);
        let gvm = Gvm::with_pool_size(1);
        let v = gvm.eval_str(&e.to_gozer(0)).unwrap();
        if let Value::Int(got) = v {
            prop_assert_eq!(got, expected);
        }
        // Float means an intermediate overflowed; the model wrapped, so
        // skip (rare with 50-bounded literals at depth 5).
    }

    #[test]
    fn compilation_is_deterministic(e in expr_strategy()) {
        // Identical source must compile to identical programs on
        // independent VMs — migrated continuations depend on it.
        let src = e.to_gozer(0);
        let form = gozer_lang::Reader::read_one_str(&src).unwrap();
        let gvm1 = Gvm::with_pool_size(1);
        let gvm2 = Gvm::with_pool_size(1);
        let p1 = Compiler::compile_toplevel(&GvmHost(&gvm1), &form, "t", 1).unwrap();
        let p2 = Compiler::compile_toplevel(&GvmHost(&gvm2), &form, "t", 1).unwrap();
        prop_assert_eq!(p1.chunks.len(), p2.chunks.len());
        for (c1, c2) in p1.chunks.iter().zip(p2.chunks.iter()) {
            prop_assert_eq!(&c1.code, &c2.code);
            prop_assert_eq!(c1.local_count, c2.local_count);
        }
        prop_assert_eq!(p1.consts.len(), p2.consts.len());
    }

    #[test]
    fn suspended_expression_resumes_equal(e in expr_strategy()) {
        // Wrap the expression so a yield interrupts it mid-evaluation,
        // serialize the continuation, deserialize on a fresh VM with the
        // same program, and check the final value matches direct eval.
        let expected = e.eval(&[]);
        prop_assume!(expected.abs() < (1i64 << 40));
        let src = format!("(defun wf () (+ (yield :snap) {}))", e.to_gozer(0));
        let gvm1 = Gvm::with_pool_size(1);
        gvm1.load_str(&src, "wf").unwrap();
        let f = gvm1.function("wf").unwrap();
        let outcome = gvm1.call_fiber(&f, vec![]).unwrap();
        let gozer_vm::RunOutcome::Suspended(s) = outcome else {
            return Err(TestCaseError::fail("expected suspension"));
        };
        let bytes = gozer_serial_roundtrip(&s.state, &src);
        let gvm2 = Gvm::with_pool_size(1);
        gvm2.load_str(&src, "wf").unwrap();
        let state = gozer_serial::deserialize_state(&bytes, &gvm2).unwrap();
        let gozer_vm::RunOutcome::Done(v) = gvm2.resume_fiber(state, Value::Int(0)).unwrap()
        else {
            return Err(TestCaseError::fail("expected completion"));
        };
        if let Value::Int(got) = v {
            prop_assert_eq!(got, expected);
        }
    }
}

fn gozer_serial_roundtrip(state: &gozer_vm::FiberState, _src: &str) -> Vec<u8> {
    gozer_serial::serialize_state(state, gozer_compress::Codec::Deflate).unwrap()
}
