//! Breadth tests for the native standard library: sequences, strings,
//! maps, predicates, metaprogramming helpers.

use gozer_lang::Value;
use gozer_vm::{Gvm, VmError};

fn eval(src: &str) -> Value {
    let gvm = Gvm::with_pool_size(1);
    gvm.eval_str(src)
        .unwrap_or_else(|e| panic!("eval failed: {e}\nsource: {src}"))
}

fn eval_err(src: &str) -> VmError {
    Gvm::with_pool_size(1)
        .eval_str(src)
        .expect_err("expected error")
}

#[test]
fn list_accessors() {
    assert_eq!(eval("(first (list 1 2 3))"), Value::Int(1));
    assert_eq!(eval("(second (list 1 2 3))"), Value::Int(2));
    assert_eq!(eval("(third (list 1 2 3))"), Value::Int(3));
    assert_eq!(eval("(first nil)"), Value::Nil);
    assert_eq!(eval("(rest (list 1))"), Value::Nil);
    assert_eq!(eval("(last (list 1 2 3))"), Value::Int(3));
    assert_eq!(eval("(butlast (list 1 2 3))"), eval("(list 1 2)"));
    assert_eq!(eval("(nth 1 (list :a :b :c))"), Value::keyword("b"));
    assert_eq!(eval("(nth 99 (list 1))"), Value::Nil);
    assert_eq!(eval("(nthcdr 2 (list 1 2 3 4))"), eval("(list 3 4)"));
    assert_eq!(eval("(car (cons 0 (list 1)))"), Value::Int(0));
    assert_eq!(eval("(cdr (list 1 2))"), eval("(list 2)"));
}

#[test]
fn list_searching() {
    assert_eq!(eval("(member 2 (list 1 2 3))"), eval("(list 2 3)"));
    assert_eq!(eval("(member 9 (list 1 2 3))"), Value::Nil);
    assert_eq!(
        eval("(assoc :b (list (list :a 1) (list :b 2)))"),
        eval("(list :b 2)")
    );
    assert_eq!(eval("(getf (list :a 1 :b 2) :b)"), Value::Int(2));
    assert_eq!(eval("(getf (list :a 1) :z 99)"), Value::Int(99));
    assert_eq!(eval("(position 3 (list 1 2 3))"), Value::Int(2));
    assert_eq!(eval("(position-if #'evenp (list 1 3 4))"), Value::Int(2));
    assert_eq!(eval("(find-if #'evenp (list 1 3 6 8))"), Value::Int(6));
    assert_eq!(eval("(count 1 (list 1 2 1 1))"), Value::Int(3));
    assert_eq!(eval("(count-if #'oddp (list 1 2 3))"), Value::Int(2));
    assert_eq!(eval("(every #'evenp (list 2 4 6))"), Value::Bool(true));
    assert_eq!(eval("(every #'evenp (list 2 5))"), Value::Nil);
    assert_eq!(eval("(some #'evenp (list 1 3 4))"), Value::Bool(true));
}

#[test]
fn list_transforms() {
    assert_eq!(eval("(append (list 1) nil (list 2 3))"), eval("(list 1 2 3)"));
    assert_eq!(eval("(reverse (list 1 2 3))"), eval("(list 3 2 1)"));
    assert_eq!(eval("(remove 2 (list 1 2 3 2))"), eval("(list 1 3)"));
    assert_eq!(eval("(flatten (list 1 (list 2 (list 3)) 4))"), eval("(list 1 2 3 4)"));
    assert_eq!(eval("(subseq (list 1 2 3 4 5) 1 3)"), eval("(list 2 3)"));
    assert_eq!(eval("(subseq \"hello\" 1 3)"), Value::str("el"));
    assert_eq!(eval("(range 3)"), eval("(list 0 1 2)"));
    assert_eq!(eval("(range 5 1 -2)"), eval("(list 5 3)"));
    assert_eq!(eval("(sort (list \"b\" \"a\" \"c\"))"), eval("(list \"a\" \"b\" \"c\")"));
    assert_eq!(eval("(vector->list [1 2])"), eval("(list 1 2)"));
    assert_eq!(eval("(list->vector (list 1 2))"), eval("[1 2]"));
    // seq->list on a map yields (k v) pairs.
    assert_eq!(eval("(length (seq->list {:a 1 :b 2}))"), Value::Int(2));
    // length is generic.
    assert_eq!(eval("(length \"abc\")"), Value::Int(3));
    assert_eq!(eval("(length [1 2 3 4])"), Value::Int(4));
    assert_eq!(eval("(length {:a 1})"), Value::Int(1));
    assert_eq!(eval("(length nil)"), Value::Int(0));
}

#[test]
fn map_operations() {
    assert_eq!(eval("(get {:a 1} :a)"), Value::Int(1));
    assert_eq!(eval("(get {:a 1} :z)"), Value::Nil);
    assert_eq!(eval("(get {:a 1} :z 9)"), Value::Int(9));
    assert_eq!(eval("(get (put {:a 1} :b 2) :b)"), Value::Int(2));
    // put is functional: the original is unchanged.
    assert_eq!(
        eval("(let ((m {:a 1})) (put m :a 99) (get m :a))"),
        Value::Int(1)
    );
    assert_eq!(eval("(contains-key? {:a 1} :a)"), Value::Bool(true));
    assert_eq!(eval("(get (dissoc {:a 1 :b 2} :a) :a)"), Value::Nil);
    assert_eq!(eval("(keys {:a 1 :b 2})"), eval("(list :a :b)"));
    assert_eq!(eval("(vals {:a 1 :b 2})"), eval("(list 1 2)"));
    assert_eq!(eval("(get (merge {:a 1} {:a 2 :b 3}) :a)"), Value::Int(2));
    assert_eq!(eval("(get (make-map :x 1 :y 2) :y)"), Value::Int(2));
}

#[test]
fn string_functions() {
    assert_eq!(eval("(string-upcase \"abc\")"), Value::str("ABC"));
    assert_eq!(eval("(string-downcase \"ABC\")"), Value::str("abc"));
    assert_eq!(eval("(string-trim \"  x  \")"), Value::str("x"));
    assert_eq!(eval("(string-replace \"a-b-c\" \"-\" \"+\")"), Value::str("a+b+c"));
    assert_eq!(eval("(string-contains? \"hello\" \"ell\")"), Value::Bool(true));
    assert_eq!(eval("(string-starts-with? \"hello\" \"he\")"), Value::Bool(true));
    assert_eq!(eval("(string-ends-with? \"hello\" \"lo\")"), Value::Bool(true));
    assert_eq!(eval("(string= \"a\" \"a\")"), Value::Bool(true));
    assert_eq!(eval("(string< \"a\" \"b\")"), Value::Bool(true));
    assert_eq!(eval("(parse-integer \" 42 \")"), Value::Int(42));
    assert_eq!(eval("(parse-float \"2.5\")"), Value::Float(2.5));
    assert_eq!(eval("(symbol-name 'foo)"), Value::str("foo"));
    assert_eq!(eval("(symbol-name :kw)"), Value::str("kw"));
    assert_eq!(eval("(string->symbol \"abc\")"), Value::symbol("abc"));
    assert_eq!(eval("(string->keyword \"k\")"), Value::keyword("k"));
    assert_eq!(eval("(char->string #\\x)"), Value::str("x"));
    assert_eq!(eval("(string-ref \"abc\" 1)"), Value::Char('b'));
    assert_eq!(eval("(prin1-to-string \"x\")"), Value::str("\"x\""));
    assert_eq!(eval("(string 42)"), Value::str("42"));
}

#[test]
fn predicates() {
    for (src, expected) in [
        ("(null nil)", true),
        ("(null 0)", false),
        ("(atom 5)", true),
        ("(atom (list 1))", false),
        ("(listp nil)", true),
        ("(consp nil)", false),
        ("(consp (list 1))", true),
        ("(symbolp 'a)", true),
        ("(keywordp :a)", true),
        ("(stringp \"s\")", true),
        ("(numberp 1.5)", true),
        ("(integerp 1)", true),
        ("(integerp 1.0)", false),
        ("(floatp 1.0)", true),
        ("(functionp #'+)", true),
        ("(vectorp [1])", true),
        ("(mapp {:a 1})", true),
        ("(characterp #\\a)", true),
        ("(zerop 0.0)", true),
        ("(plusp 2)", true),
        ("(minusp -1)", true),
        ("(evenp 4)", true),
        ("(oddp 4)", false),
        ("(boundp '+)", true),
        ("(boundp 'no-such-var-xyz)", false),
    ] {
        let got = eval(src);
        assert_eq!(got.is_truthy(), expected, "{src} => {got:?}");
    }
}

#[test]
fn equality_flavours() {
    // eq: identity for aggregates.
    assert_eq!(
        eval("(let ((a (list 1 2))) (eq a a))"),
        Value::Bool(true)
    );
    assert_eq!(eval("(eq (list 1 2) (list 1 2))"), Value::Nil);
    // equal: structural.
    assert_eq!(eval("(equal (list 1 2) (list 1 2))"), Value::Bool(true));
    assert_eq!(eval("(equal {:a 1} {:a 1})"), Value::Bool(true));
    assert_eq!(eval("(equal 1 1.0)"), Value::Nil); // structural, not numeric
    assert_eq!(eval("(= 1 1.0)"), Value::Bool(true)); // numeric
}

#[test]
fn metaprogramming_helpers() {
    assert_eq!(
        eval("(macroexpand-1 '(when x 1))"),
        eval("'(if x (progn 1))")
    );
    assert_eq!(eval("(macroexpand-1 '(+ 1 2))"), eval("'(+ 1 2)"));
    // gensyms are fresh.
    assert_eq!(eval("(equal (gensym) (gensym))"), Value::Nil);
    // disassemble produces text mentioning the ops.
    let text = eval("(disassemble (lambda (x) (+ x 1)))");
    let s = text.as_str().unwrap();
    assert!(s.contains("Return"), "{s}");
    // type-of is a plain native, so a future argument is *determined*
    // before it runs (§4.1) — it reports the underlying value's type.
    assert_eq!(eval("(type-of (future 1))"), Value::symbol("integer"));
    // The raw predicate sees the future itself.
    assert_eq!(eval("(futurep (future 1))"), Value::Bool(true));
}

#[test]
fn case_with_list_keys() {
    assert_eq!(
        eval("(case 3 ((1 2) :low) ((3 4) :mid) (otherwise :high))"),
        Value::keyword("mid")
    );
    assert_eq!(
        eval("(case 9 ((1 2) :low) (otherwise :high))"),
        Value::keyword("high")
    );
    assert_eq!(eval("(case :x (:x :found))"), Value::keyword("found"));
}

#[test]
fn percent_platform_sugar() {
    // (% f args) => (f args), Listing 2's (% is-fiber-thread).
    assert_eq!(eval("(% + 1 2)"), Value::Int(3));
}

#[test]
fn error_messages_are_helpful() {
    assert!(eval_err("(undefined-fn-xyz 1)")
        .to_string()
        .contains("unbound variable: undefined-fn-xyz"));
    assert!(eval_err("(+ 1 \"x\")").to_string().contains("number"));
    assert!(eval_err("(funcall 42)").to_string().contains("function"));
    assert!(eval_err("(first 42)").to_string().contains("sequence"));
    assert!(eval_err("(elt (list 1) 5)").to_string().contains("out of bounds"));
    assert!(eval_err("((lambda (x) x))").to_string().contains("expected at least 1"));
    assert!(eval_err("((lambda (x) x) 1 2)").to_string().contains("too many"));
    assert!(eval_err("((lambda (&key k) k) :wrong 1)")
        .to_string()
        .contains("unknown keyword"));
}

#[test]
fn object_protocol() {
    assert_eq!(
        eval(
            "(let ((o (create-object \"bag\" \"x\" 1)))
               (. o (set \"y\" 2))
               (list (object-class o)
                     (. o (get \"x\"))
                     (. o (has \"y\"))
                     (. o (size))
                     (. o (remove \"x\"))
                     (. o (size))))"
        ),
        eval("(list \"bag\" 1 t 2 1 1)")
    );
}

#[test]
fn reduce_variants() {
    assert_eq!(eval("(reduce #'+ (list 1 2 3))"), Value::Int(6));
    assert_eq!(eval("(reduce #'+ nil)"), Value::Int(0));
    assert_eq!(eval("(reduce #'+ nil 42)"), Value::Int(42));
    assert_eq!(
        eval("(reduce (lambda (acc x) (cons x acc)) (list 1 2 3) nil)"),
        eval("(list 3 2 1)")
    );
}

#[test]
fn format_edge_cases() {
    assert_eq!(eval("(format nil \"~~\")"), Value::str("~"));
    assert_eq!(eval("(format nil \"~s\" \"q\")"), Value::str("\"q\""));
    assert_eq!(eval("(format nil \"~f\" 2.5)"), Value::str("2.5"));
    assert!(Gvm::with_pool_size(1)
        .eval_str("(format nil \"~a\")")
        .is_err());
    assert!(Gvm::with_pool_size(1)
        .eval_str("(format nil \"~z\" 1)")
        .is_err());
}

#[test]
fn apropos_and_describe() {
    let gvm = Gvm::with_pool_size(1);
    let v = gvm.eval_str("(apropos \"string-up\")").unwrap();
    assert_eq!(v, gvm.eval_str("'(string-upcase)").unwrap());
    gvm.eval_str("(defun documented (x) \"the doc\" x) (describe 'documented)")
        .unwrap();
    let log = gvm.take_log().join("\n");
    assert!(log.contains("the doc"), "{log}");
    assert!(log.contains("1 required"), "{log}");
}

#[test]
fn constant_folding_preserves_semantics() {
    // Folded and unfolded paths agree.
    assert_eq!(eval("(+ 1 2 3)"), Value::Int(6));
    assert_eq!(eval("(* 2 (+ 3 4) (- 10 1))"), Value::Int(126));
    assert_eq!(eval("(min 4 (max 1 9) 2)"), Value::Int(2));
    assert_eq!(eval("(- 5)"), Value::Int(-5));
    // Shadowing the operator must defeat folding.
    assert_eq!(
        eval("(let ((+ (lambda (a b) (* a b)))) (funcall + 3 4))"),
        Value::Int(12)
    );
    assert_eq!(
        eval("(let ((+ (lambda (a b) 999))) (+ 2 3))"),
        Value::Int(999)
    );
    // Overflow is left to the runtime (promotes to float, not a compile
    // error).
    assert!(matches!(
        eval("(* 9223372036854775807 9223372036854775807)"),
        Value::Float(_)
    ));
}

#[test]
fn constant_folding_emits_single_constant() {
    // The compiled toplevel for a foldable expression is just
    // Const + Return.
    use gozer_vm::{Compiler, GvmHost, Op};
    let gvm = Gvm::with_pool_size(1);
    let form = gozer_lang::Reader::read_one_str("(* 2 (+ 3 4))").unwrap();
    let p = Compiler::compile_toplevel(&GvmHost(&gvm), &form, "t", 1).unwrap();
    assert_eq!(p.chunks[0].code.len(), 2, "{:?}", p.chunks[0].code);
    assert!(matches!(p.chunks[0].code[0], Op::Const(_)));
    assert!(matches!(p.chunks[0].code[1], Op::Return));
}

#[test]
fn division_and_reciprocal() {
    assert_eq!(eval("(/ 8 2 2)"), Value::Int(2));
    assert_eq!(eval("(/ 1)"), Value::Int(1));
    assert_eq!(eval("(/ 2)"), Value::Float(0.5));
    assert_eq!(eval("(/ 7.0 2)"), Value::Float(3.5));
    assert!(eval_err("(/ 1 0)").to_string().contains("division by zero"));
    assert!(eval_err("(mod 5 0)").to_string().contains("zero"));
}

#[test]
fn dolist_dotimes_result_forms() {
    assert_eq!(
        eval("(let ((acc 0)) (dolist (x (list 1 2 3) acc) (setq acc (+ acc x))))"),
        Value::Int(6)
    );
    assert_eq!(
        eval("(let ((acc 0)) (dotimes (i 4 (* acc 10)) (setq acc (+ acc i))))"),
        Value::Int(60)
    );
}

#[test]
fn loop_combined_clauses() {
    // for..in + until + collect.
    assert_eq!(
        eval("(loop for x in (list 1 2 3 4 5) until (> x 3) collect x)"),
        eval("(list 1 2 3)")
    );
    // repeat + collect.
    assert_eq!(
        eval("(let ((n 0)) (loop repeat 3 collect (setq n (+ n 1))))"),
        eval("(list 1 2 3)")
    );
    // bare while loop with do.
    assert_eq!(
        eval("(let ((n 0)) (loop while (< n 5) do (incf n)) n)"),
        Value::Int(5)
    );
    // empty loop over nil.
    assert_eq!(eval("(loop for x in nil collect x)"), Value::Nil);
}

#[test]
fn vectors_and_maps_evaluate_elements() {
    assert_eq!(eval("[(+ 1 1) (* 2 2)]"), eval("[2 4]"));
    assert_eq!(eval("(get {(+ 1 1) :two} 2)"), Value::keyword("two"));
}

#[test]
fn deeply_nested_data_roundtrips_through_eval() {
    // 100 levels of quoted structure: exercises the reader depth
    // accounting under the cap.
    let src = format!("'{}{}{}", "(a ".repeat(100), "b", ")".repeat(100));
    let v = eval(&src);
    let mut depth = 0;
    let mut cur = v;
    while let Some(items) = cur.as_list() {
        depth += 1;
        if items.len() < 2 {
            break;
        }
        cur = items[1].clone();
    }
    assert_eq!(depth, 100);
}
