//! Condition objects.
//!
//! Gozer implements the Common Lisp condition system (paper §3.7): a
//! condition is a structured value describing an exceptional situation,
//! signaled to *handlers* that run **without unwinding the stack** and may
//! transfer control by invoking a *restart*.
//!
//! A condition is represented as a map value with well-known keys, which
//! keeps conditions serializable and lets distributed error payloads (XML
//! QNames from service faults, §3.7) flow through the same machinery as
//! local Lisp errors:
//!
//! * `:types` — list of type-designator strings, most specific first.
//!   Java-style class names (`"java.net.SocketException"`) and XML QNames
//!   (`"{urn:service}Connect"`) are both just designators.
//! * `:message` — human-readable description.
//! * `:data` — optional structured payload.

use std::sync::Arc;

use gozer_lang::{AssocMap, Value};

/// A signaled condition. Wraps the underlying map value.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition(pub Value);

impl Condition {
    /// Build a condition with a single type designator and a message.
    pub fn new(designator: &str, message: impl Into<String>) -> Condition {
        Condition::with_types(vec![designator.to_string()], message, Value::Nil)
    }

    /// Build a condition with a full designator list (most specific first)
    /// and a payload.
    pub fn with_types(
        mut types: Vec<String>,
        message: impl Into<String>,
        data: Value,
    ) -> Condition {
        // Every condition is at least a `condition`; errors additionally
        // carry the `error` designator so `defhandler :java
        // ("java.lang.Throwable")`-style catch-alls can be emulated with
        // the root designators.
        if !types.iter().any(|t| t == "condition") {
            types.push("condition".to_string());
        }
        let mut m = AssocMap::new();
        m.insert(
            Value::keyword("types"),
            Value::list(types.into_iter().map(Value::from).collect()),
        );
        m.insert(Value::keyword("message"), Value::from(message.into()));
        if !data.is_nil() {
            m.insert(Value::keyword("data"), data);
        }
        Condition(Value::Map(Arc::new(m)))
    }

    /// A generic `error` condition (designators `error`, `condition`).
    pub fn error(message: impl Into<String>) -> Condition {
        Condition::with_types(vec!["error".to_string()], message, Value::Nil)
    }

    /// A type error with context.
    pub fn type_error(expected: &str, got: &Value) -> Condition {
        Condition::with_types(
            vec!["type-error".to_string(), "error".to_string()],
            format!("expected {expected}, got {}: {:?}", got.type_name(), got),
            Value::Nil,
        )
    }

    /// Wrap an arbitrary value signaled from Gozer code. Maps pass through
    /// unchanged; any other value becomes the `:data` of a generic error.
    pub fn from_value(v: Value) -> Condition {
        match &v {
            Value::Map(m) if m.get(&Value::keyword("types")).is_some() => Condition(v),
            Value::Str(s) => Condition::error(s.to_string()),
            _ => Condition::with_types(
                vec!["error".to_string()],
                format!("{v:?}"),
                v.clone(),
            ),
        }
    }

    /// The message, or an empty string.
    pub fn message(&self) -> String {
        self.field("message")
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_default()
    }

    /// The designator list.
    pub fn types(&self) -> Vec<String> {
        self.field("types")
            .and_then(|v| v.as_list().map(|items| {
                items
                    .iter()
                    .filter_map(|t| t.as_str().map(str::to_owned))
                    .collect()
            }))
            .unwrap_or_default()
    }

    /// Does this condition match `designator` (exact designator match)?
    pub fn matches(&self, designator: &str) -> bool {
        self.types().iter().any(|t| t == designator)
    }

    /// Fetch a field of the underlying map by keyword name.
    pub fn field(&self, key: &str) -> Option<Value> {
        self.0.as_map()?.get(&Value::keyword(key)).cloned()
    }

    /// The underlying value (for passing to handler functions).
    pub fn value(&self) -> &Value {
        &self.0
    }
}

impl std::fmt::Display for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let types = self.types();
        let ty = types.first().map(String::as_str).unwrap_or("condition");
        write!(f, "{}: {}", ty, self.message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_condition_has_designators() {
        let c = Condition::error("boom");
        assert!(c.matches("error"));
        assert!(c.matches("condition"));
        assert!(!c.matches("java.net.SocketException"));
        assert_eq!(c.message(), "boom");
    }

    #[test]
    fn qname_designators_match() {
        let c = Condition::with_types(
            vec!["{urn:service}Connect".into(), "error".into()],
            "fault",
            Value::Nil,
        );
        assert!(c.matches("{urn:service}Connect"));
        assert!(c.matches("condition"));
    }

    #[test]
    fn from_value_passthrough_and_wrap() {
        let c = Condition::error("x");
        let rewrapped = Condition::from_value(c.0.clone());
        assert_eq!(rewrapped, c);

        let wrapped = Condition::from_value(Value::Int(7));
        assert!(wrapped.matches("error"));
        assert_eq!(wrapped.field("data"), Some(Value::Int(7)));

        let from_str = Condition::from_value(Value::str("oops"));
        assert_eq!(from_str.message(), "oops");
    }

    #[test]
    fn display_format() {
        let c = Condition::error("kaput");
        assert_eq!(c.to_string(), "error: kaput");
    }
}
