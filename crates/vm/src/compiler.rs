//! The Gozer bytecode compiler.
//!
//! Compiles reader output ([`Value`] forms) into [`Program`]s. Compilation
//! to bytecode (rather than tree-walking) was introduced in the original
//! system as an optimization for Vinz persistence (§4.1): a frame's code
//! position is a dense `(chunk, pc)` pair instead of a tree path.
//!
//! Macro expansion happens during compilation: user macros (`defmacro`)
//! are Gozer functions looked up and applied through the [`MacroHost`]
//! callback, while a fixed set of core macros (`when`, `cond`, `loop`,
//! ...) are expanded natively for speed and bootstrap simplicity.
//!
//! Determinism matters: Vinz re-compiles the same workflow source on every
//! node and relies on identical programs (chunk indices, constant pools)
//! so that migrated continuations resolve. The compiler is a pure function
//! of the form sequence plus the macro environment.

use std::sync::Arc;

use gozer_lang::{Symbol, Value};

use crate::bytecode::{CaptureSource, Chunk, Op, ParamSpec, Program};
use crate::error::{VmError, VmResult};

/// Macro-environment callback: lets the compiler expand user macros by
/// running Gozer code in the owning VM.
pub trait MacroHost {
    /// Look up the macro function bound to `name`, if any.
    fn lookup_macro(&self, name: Symbol) -> Option<Value>;
    /// Apply a macro function to the argument forms, yielding the
    /// expansion. Must not suspend.
    fn expand_macro(&self, func: &Value, args: &[Value]) -> VmResult<Value>;
    /// Produce a fresh uninterned-ish symbol name (monotonic counter).
    fn gensym(&self) -> Symbol;
}

/// A [`MacroHost`] with no user macros, for tests and pure data compiles.
pub struct NullMacroHost;

impl MacroHost for NullMacroHost {
    fn lookup_macro(&self, _name: Symbol) -> Option<Value> {
        None
    }
    fn expand_macro(&self, _func: &Value, _args: &[Value]) -> VmResult<Value> {
        Err(VmError::Compile("no macro host".into()))
    }
    fn gensym(&self) -> Symbol {
        Symbol::intern("#:g-null")
    }
}

/// Per-function compilation context.
struct FnCtx {
    #[allow(dead_code)] // kept for diagnostics
    name: String,
    doc: Option<String>,
    params: ParamSpec,
    /// Slot names; `None` for compiler temporaries.
    locals: Vec<Option<Symbol>>,
    /// Visible bindings, innermost last (name, slot).
    visible: Vec<(Symbol, u16)>,
    /// Captures from the enclosing function: (name, where to copy from).
    captures: Vec<(Symbol, CaptureSource)>,
    code: Vec<Op>,
    /// Nonzero while inside `handler-bind`/`restart-case` bodies: tail
    /// calls are suppressed so the dynamic stacks stay balanced.
    protected: u32,
}

impl FnCtx {
    fn new(name: &str) -> FnCtx {
        FnCtx {
            name: name.to_string(),
            doc: None,
            params: ParamSpec::default(),
            locals: Vec::new(),
            visible: Vec::new(),
            captures: Vec::new(),
            code: Vec::new(),
            protected: 0,
        }
    }

    fn add_local(&mut self, name: Option<Symbol>) -> u16 {
        let slot = self.locals.len() as u16;
        self.locals.push(name);
        if let Some(n) = name {
            self.visible.push((n, slot));
        }
        slot
    }

    fn find_visible(&self, name: Symbol) -> Option<u16> {
        self.visible
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
    }

    fn find_or_add_capture(&mut self, name: Symbol, source: CaptureSource) -> u16 {
        if let Some(i) = self.captures.iter().position(|(n, _)| *n == name) {
            return i as u16;
        }
        self.captures.push((name, source));
        (self.captures.len() - 1) as u16
    }
}

/// Where a variable reference resolves.
enum VarRef {
    Local(u16),
    Capture(u16),
    Global,
}

/// The compiler: builds one [`Program`] per top-level form.
pub struct Compiler<'h> {
    host: &'h dyn MacroHost,
    consts: Vec<Value>,
    chunks: Vec<Chunk>,
    fns: Vec<FnCtx>,
}

impl<'h> Compiler<'h> {
    /// Compile a single top-level `form` into a program whose chunk 0 is a
    /// zero-argument entry point evaluating the form.
    pub fn compile_toplevel(
        host: &'h dyn MacroHost,
        form: &Value,
        program_name: &str,
        program_id: u64,
    ) -> VmResult<Arc<Program>> {
        let mut c = Compiler {
            host,
            consts: Vec::new(),
            chunks: Vec::new(),
            fns: Vec::new(),
        };
        // Reserve chunk 0 for the entry point; nested lambdas claim
        // subsequent indices during body compilation.
        c.chunks.push(Chunk {
            name: "toplevel".into(),
            doc: None,
            params: ParamSpec::default(),
            local_count: 0,
            captures: Vec::new(),
            code: Vec::new(),
            ic: Vec::new(),
        });
        c.fns.push(FnCtx::new("toplevel"));
        c.compile_expr(form, true)?;
        c.emit(Op::Return);
        let ctx = c.fns.pop().expect("toplevel ctx");
        if !ctx.captures.is_empty() {
            return Err(VmError::Compile(
                "toplevel form cannot capture variables".into(),
            ));
        }
        c.chunks[0].local_count = ctx.locals.len() as u16;
        c.chunks[0].code = ctx.code;
        let fuse = crate::opt::fusion_enabled();
        for ch in &mut c.chunks {
            if fuse {
                crate::fuse::fuse_code(&mut ch.code);
            }
            ch.ic = std::iter::repeat_with(Default::default)
                .take(ch.code.len())
                .collect();
        }
        Ok(Arc::new(Program {
            id: program_id,
            name: program_name.to_string(),
            consts: c.consts,
            chunks: c.chunks,
        }))
    }

    // ---- emission helpers ------------------------------------------

    fn ctx(&mut self) -> &mut FnCtx {
        self.fns.last_mut().expect("fn ctx")
    }

    fn emit(&mut self, op: Op) {
        self.ctx().code.push(op);
    }

    fn here(&mut self) -> usize {
        self.ctx().code.len()
    }

    /// Emit a placeholder jump, returning its index for later patching.
    fn emit_jump(&mut self, op: Op) -> usize {
        let idx = self.here();
        self.emit(op);
        idx
    }

    /// Patch the jump at `idx` to target the current position.
    fn patch_jump(&mut self, idx: usize) {
        let target = self.here();
        let off = (target as i64 - (idx as i64 + 1)) as i32;
        let code = &mut self.ctx().code;
        code[idx] = match code[idx] {
            Op::Jump(_) => Op::Jump(off),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(off),
            Op::JumpIfTrue(_) => Op::JumpIfTrue(off),
            Op::PushRestart { name, .. } => Op::PushRestart { name, offset: off },
            other => panic!("patching non-jump {other:?}"),
        };
    }

    fn const_idx(&mut self, v: Value) -> u32 {
        if let Some(i) = self.consts.iter().position(|c| c == &v) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn emit_const(&mut self, v: Value) {
        match v {
            Value::Nil => self.emit(Op::Nil),
            Value::Bool(true) => self.emit(Op::True),
            other => {
                let idx = self.const_idx(other);
                self.emit(Op::Const(idx));
            }
        }
    }

    fn sym_const(&mut self, s: Symbol) -> u32 {
        self.const_idx(Value::Symbol(s))
    }

    // ---- variable resolution ---------------------------------------

    fn resolve(&mut self, name: Symbol) -> VarRef {
        let top = self.fns.len() - 1;
        if let Some(slot) = self.fns[top].find_visible(name) {
            return VarRef::Local(slot);
        }
        // Already captured in the current fn?
        if let Some(i) = self.fns[top].captures.iter().position(|(n, _)| *n == name) {
            return VarRef::Capture(i as u16);
        }
        // Search enclosing functions, innermost first.
        for i in (0..top).rev() {
            let source0 = if let Some(slot) = self.fns[i].find_visible(name) {
                CaptureSource::Local(slot)
            } else if let Some(ci) = self.fns[i].captures.iter().position(|(n, _)| *n == name) {
                CaptureSource::Capture(ci as u16)
            } else {
                continue;
            };
            // Thread the capture through every intermediate function.
            let mut src = source0;
            for j in i + 1..=top {
                let idx = self.fns[j].find_or_add_capture(name, src);
                src = CaptureSource::Capture(idx);
            }
            let top_idx = self.fns[top]
                .captures
                .iter()
                .position(|(n, _)| *n == name)
                .expect("capture just threaded");
            return VarRef::Capture(top_idx as u16);
        }
        VarRef::Global
    }

    // ---- expression compilation ------------------------------------

    fn compile_expr(&mut self, form: &Value, tail: bool) -> VmResult<()> {
        match form {
            Value::Nil
            | Value::Bool(_)
            | Value::Int(_)
            | Value::Float(_)
            | Value::Char(_)
            | Value::Str(_)
            | Value::Keyword(_) => {
                self.emit_const(form.clone());
                Ok(())
            }
            Value::Symbol(s) => {
                match self.resolve(*s) {
                    VarRef::Local(slot) => self.emit(Op::LoadLocal(slot)),
                    VarRef::Capture(i) => self.emit(Op::LoadCapture(i)),
                    VarRef::Global => {
                        let c = self.sym_const(*s);
                        self.emit(Op::LoadGlobal(c));
                    }
                }
                Ok(())
            }
            Value::Vector(items) => {
                for item in items.iter() {
                    self.compile_expr(item, false)?;
                }
                self.emit(Op::MakeVector(items.len() as u16));
                Ok(())
            }
            Value::Map(m) => {
                for (k, v) in m.iter() {
                    self.compile_expr(k, false)?;
                    self.compile_expr(v, false)?;
                }
                self.emit(Op::MakeMap(m.len() as u16));
                Ok(())
            }
            Value::List(items) => {
                // Constant folding: pure integer arithmetic with literal
                // operands evaluates at compile time (bytecode compilation
                // exists as an optimization, §4.1 — this is the cheapest
                // one).
                if let Some(folded) = self.try_fold(items) {
                    self.emit_const(folded);
                    return Ok(());
                }
                self.compile_list(items, tail)
            }
            Value::Func(_) | Value::Opaque(_) => {
                // Runtime values appearing in code (injected by macros):
                // treat as constants.
                self.emit_const(form.clone());
                Ok(())
            }
        }
    }

    /// Is `name` unshadowed (a plain global reference) in the current
    /// lexical environment? Read-only — unlike [`Compiler::resolve`] it
    /// never threads captures.
    fn is_global_ref(&self, name: Symbol) -> bool {
        !self.fns.iter().any(|ctx| {
            ctx.find_visible(name).is_some()
                || ctx.captures.iter().any(|(n, _)| *n == name)
        })
    }

    /// Fold `(op lit...)` for pure integer arithmetic when `op` is the
    /// unshadowed builtin and every operand is (or folds to) an integer
    /// literal. `None` leaves the form for runtime (including on
    /// overflow, where the runtime promotes to float).
    fn try_fold(&self, items: &[Value]) -> Option<Value> {
        let head = items[0].as_symbol()?;
        let op = head.name();
        if !matches!(op, "+" | "-" | "*" | "min" | "max") {
            return None;
        }
        if !self.is_global_ref(head) {
            return None;
        }
        let mut args = Vec::with_capacity(items.len() - 1);
        for a in &items[1..] {
            match a {
                Value::Int(i) => args.push(*i),
                Value::List(inner) => args.push(self.try_fold(inner)?.as_int()?),
                _ => return None,
            }
        }
        let folded = match (op, args.as_slice()) {
            ("+", xs) => xs.iter().try_fold(0i64, |acc, &x| acc.checked_add(x))?,
            ("*", xs) => xs.iter().try_fold(1i64, |acc, &x| acc.checked_mul(x))?,
            ("-", [x]) => x.checked_neg()?,
            ("-", [x, rest @ ..]) if !rest.is_empty() => {
                rest.iter().try_fold(*x, |acc, &y| acc.checked_sub(y))?
            }
            ("min", [x, rest @ ..]) => *rest.iter().chain([x]).min()?,
            ("max", [x, rest @ ..]) => *rest.iter().chain([x]).max()?,
            _ => return None,
        };
        Some(Value::Int(folded))
    }

    fn compile_list(&mut self, items: &[Value], tail: bool) -> VmResult<()> {
        let head = &items[0];
        let args = &items[1..];
        if let Some(sym) = head.as_symbol() {
            match sym.name() {
                "quote" => {
                    expect_args("quote", args, 1)?;
                    self.emit_const(args[0].clone());
                    return Ok(());
                }
                "quasiquote" => {
                    expect_args("quasiquote", args, 1)?;
                    let expanded = quasi_expand(&args[0], 1)?;
                    return self.compile_expr(&expanded, tail);
                }
                "unquote" | "unquote-splicing" => {
                    return Err(VmError::Compile("unquote outside quasiquote".into()));
                }
                "if" => return self.compile_if(args, tail),
                "progn" => return self.compile_progn(args, tail),
                "let" => return self.compile_let(args, tail, false),
                "let*" => return self.compile_let(args, tail, true),
                "lambda" => return self.compile_lambda_form(args),
                "defun" => return self.compile_defun(args),
                "defmacro" => return self.compile_defmacro(args),
                "setq" | "setf" => return self.compile_setf(args),
                "defvar" => return self.compile_defvar(args, false),
                "defparameter" => return self.compile_defvar(args, true),
                "and" => return self.compile_and_or(args, true),
                "or" => return self.compile_and_or(args, false),
                "while" => return self.compile_while(args),
                "yield" => {
                    if args.len() > 1 {
                        return Err(VmError::Compile("yield takes at most one form".into()));
                    }
                    match args.first() {
                        Some(v) => self.compile_expr(v, false)?,
                        None => self.emit(Op::Nil),
                    }
                    self.emit(Op::Yield);
                    return Ok(());
                }
                "push-cc" => {
                    expect_args("push-cc", args, 0)?;
                    self.emit(Op::PushCC);
                    return Ok(());
                }
                "%take" => {
                    // Compiler-internal move: like loading the variable,
                    // but a *local* binding is left holding nil so the
                    // pushed value is the only live reference. The loop
                    // expansion uses it on accumulator bindings that are
                    // reassigned immediately after the consuming call;
                    // anything that doesn't resolve to a local degrades
                    // to a plain load.
                    expect_args("%take", args, 1)?;
                    let var = args[0]
                        .as_symbol()
                        .ok_or_else(|| VmError::Compile("%take requires a symbol".into()))?;
                    return match self.resolve(var) {
                        VarRef::Local(slot) => {
                            self.emit(Op::TakeLocal(slot));
                            Ok(())
                        }
                        _ => self.compile_expr(&args[0], false),
                    };
                }
                "function" => {
                    expect_args("function", args, 1)?;
                    // Lisp-1: #'f is just f. (function (lambda ...)) also
                    // works.
                    return self.compile_expr(&args[0], false);
                }
                "handler-bind" => return self.compile_handler_bind(args, tail),
                "restart-case" => return self.compile_restart_case(args),
                "declare" => {
                    self.emit(Op::Nil);
                    return Ok(());
                }
                "." => return self.compile_method_call(args),
                // Core macros expanded natively.
                "when" | "unless" | "cond" | "case" | "dolist" | "dotimes" | "incf" | "decf"
                | "push" | "append!" | "%" | "loop" | "prog1" | "ignore-errors" | "future" => {
                    let expanded = self.expand_core_macro(sym.name(), args)?;
                    return self.compile_expr(&expanded, tail);
                }
                _ => {
                    // User macro?
                    if let Some(mac) = self.host.lookup_macro(sym) {
                        let expanded = self.host.expand_macro(&mac, args)?;
                        return self.compile_expr(&expanded, tail);
                    }
                }
            }
        }
        // Plain call.
        self.compile_expr(head, false)?;
        for a in args {
            self.compile_expr(a, false)?;
        }
        let n = args.len() as u16;
        if tail && self.ctx().protected == 0 && self.fns.len() > 1 {
            self.emit(Op::TailCall(n));
        } else {
            self.emit(Op::Call(n));
        }
        Ok(())
    }

    fn compile_if(&mut self, args: &[Value], tail: bool) -> VmResult<()> {
        if args.len() < 2 || args.len() > 3 {
            return Err(VmError::Compile("if requires 2 or 3 forms".into()));
        }
        self.compile_expr(&args[0], false)?;
        let jf = self.emit_jump(Op::JumpIfFalse(0));
        self.compile_expr(&args[1], tail)?;
        let jend = self.emit_jump(Op::Jump(0));
        self.patch_jump(jf);
        match args.get(2) {
            Some(e) => self.compile_expr(e, tail)?,
            None => self.emit(Op::Nil),
        }
        self.patch_jump(jend);
        Ok(())
    }

    fn compile_progn(&mut self, args: &[Value], tail: bool) -> VmResult<()> {
        if args.is_empty() {
            self.emit(Op::Nil);
            return Ok(());
        }
        for (i, f) in args.iter().enumerate() {
            let last = i == args.len() - 1;
            self.compile_expr(f, tail && last)?;
            if !last {
                self.emit(Op::Pop);
            }
        }
        Ok(())
    }

    fn compile_let(&mut self, args: &[Value], tail: bool, sequential: bool) -> VmResult<()> {
        let Some(bindings) = args.first().and_then(|b| b.as_list()) else {
            return Err(VmError::Compile("let requires a binding list".into()));
        };
        let body = &args[1..];
        let visible_mark = self.ctx().visible.len();
        let mut pending: Vec<(Symbol, u16)> = Vec::new();
        for b in bindings {
            let (name, init) = match b {
                Value::Symbol(s) => (*s, Value::Nil),
                Value::List(pair) if pair.len() == 2 && pair[0].as_symbol().is_some() => {
                    (pair[0].as_symbol().unwrap(), pair[1].clone())
                }
                other => {
                    return Err(VmError::Compile(format!("bad let binding: {other:?}")));
                }
            };
            self.compile_expr(&init, false)?;
            if sequential {
                let slot = self.ctx().add_local(Some(name));
                self.emit(Op::StoreLocal(slot));
            } else {
                // Parallel let: allocate a hidden slot now, make it
                // visible only after all inits are compiled.
                let slot = self.ctx().add_local(None);
                self.emit(Op::StoreLocal(slot));
                pending.push((name, slot));
            }
        }
        for (name, slot) in pending {
            let ctx = self.ctx();
            ctx.locals[slot as usize] = Some(name);
            ctx.visible.push((name, slot));
        }
        self.compile_progn(body, tail)?;
        self.ctx().visible.truncate(visible_mark);
        Ok(())
    }

    fn compile_lambda_form(&mut self, args: &[Value]) -> VmResult<()> {
        if args.is_empty() {
            return Err(VmError::Compile("lambda requires a parameter list".into()));
        }
        let chunk = self.compile_function("lambda", &args[0], &args[1..])?;
        self.emit(Op::MakeClosure(chunk));
        Ok(())
    }

    fn compile_defun(&mut self, args: &[Value]) -> VmResult<()> {
        if args.len() < 2 {
            return Err(VmError::Compile("defun requires name and params".into()));
        }
        let Some(name) = args[0].as_symbol() else {
            return Err(VmError::Compile("defun name must be a symbol".into()));
        };
        let chunk = self.compile_function(name.name(), &args[1], &args[2..])?;
        self.emit(Op::MakeClosure(chunk));
        let c = self.sym_const(name);
        self.emit(Op::DefGlobal(c));
        self.emit_const(Value::Symbol(name));
        Ok(())
    }

    fn compile_defmacro(&mut self, args: &[Value]) -> VmResult<()> {
        if args.len() < 2 {
            return Err(VmError::Compile("defmacro requires name and params".into()));
        }
        let Some(name) = args[0].as_symbol() else {
            return Err(VmError::Compile("defmacro name must be a symbol".into()));
        };
        // (%def-macro 'name (lambda params body...))
        let setter = self.sym_const(Symbol::intern("%def-macro"));
        self.emit(Op::LoadGlobal(setter));
        self.emit_const(Value::Symbol(name));
        let chunk = self.compile_function(&format!("macro {}", name.name()), &args[1], &args[2..])?;
        self.emit(Op::MakeClosure(chunk));
        self.emit(Op::Call(2));
        Ok(())
    }

    fn compile_setf(&mut self, args: &[Value]) -> VmResult<()> {
        if args.len() != 2 {
            return Err(VmError::Compile("setf requires a place and a value".into()));
        }
        let place = &args[0];
        let value = &args[1];
        if let Some(sym) = place.as_symbol() {
            self.compile_expr(value, false)?;
            self.emit(Op::Dup); // setf returns the value
            match self.resolve(sym) {
                VarRef::Local(slot) => self.emit(Op::StoreLocal(slot)),
                VarRef::Capture(_) => {
                    return Err(VmError::Compile(format!(
                        "cannot mutate closed-over variable {}: Gozer closures capture by value",
                        sym.name()
                    )));
                }
                VarRef::Global => {
                    let c = self.sym_const(sym);
                    self.emit(Op::StoreGlobal(c));
                }
            }
            return Ok(());
        }
        // (setf (%get-task-var 'x) v) => (%set-task-var 'x v)   (§3.6)
        if let Some(items) = place.as_list() {
            if items.len() == 2 && items[0] == Value::symbol("%get-task-var") {
                let call = Value::list(vec![
                    Value::symbol("%set-task-var"),
                    items[1].clone(),
                    value.clone(),
                ]);
                return self.compile_expr(&call, false);
            }
        }
        Err(VmError::Compile(format!("unsupported setf place: {place:?}")))
    }

    fn compile_defvar(&mut self, args: &[Value], always_set: bool) -> VmResult<()> {
        if args.is_empty() {
            return Err(VmError::Compile("defvar requires a name".into()));
        }
        let Some(name) = args[0].as_symbol() else {
            return Err(VmError::Compile("defvar name must be a symbol".into()));
        };
        let helper = self.sym_const(Symbol::intern(if always_set {
            "%defparameter"
        } else {
            "%defvar"
        }));
        self.emit(Op::LoadGlobal(helper));
        self.emit_const(Value::Symbol(name));
        match args.get(1) {
            Some(init) => self.compile_expr(init, false)?,
            None => self.emit(Op::Nil),
        }
        self.emit(Op::Call(2));
        Ok(())
    }

    fn compile_and_or(&mut self, args: &[Value], is_and: bool) -> VmResult<()> {
        if args.is_empty() {
            if is_and {
                self.emit(Op::True);
            } else {
                self.emit(Op::Nil);
            }
            return Ok(());
        }
        let mut exits = Vec::new();
        for (i, f) in args.iter().enumerate() {
            self.compile_expr(f, false)?;
            if i < args.len() - 1 {
                self.emit(Op::Dup);
                let j = if is_and {
                    self.emit_jump(Op::JumpIfFalse(0))
                } else {
                    self.emit_jump(Op::JumpIfTrue(0))
                };
                self.emit(Op::Pop);
                // Re-point: JumpIf pops the dup'd copy; the original stays
                // as the result when we short-circuit.
                exits.push(j);
            }
        }
        for j in exits {
            self.patch_jump(j);
        }
        Ok(())
    }

    fn compile_while(&mut self, args: &[Value]) -> VmResult<()> {
        if args.is_empty() {
            return Err(VmError::Compile("while requires a condition".into()));
        }
        let start = self.here();
        self.compile_expr(&args[0], false)?;
        let jexit = self.emit_jump(Op::JumpIfFalse(0));
        for f in &args[1..] {
            self.compile_expr(f, false)?;
            self.emit(Op::Pop);
        }
        let back = (start as i64 - (self.here() as i64 + 1)) as i32;
        self.emit(Op::Jump(back));
        self.patch_jump(jexit);
        self.emit(Op::Nil);
        Ok(())
    }

    fn compile_handler_bind(&mut self, args: &[Value], tail: bool) -> VmResult<()> {
        if args.is_empty() {
            return Err(VmError::Compile(
                "handler-bind requires a handler function".into(),
            ));
        }
        self.compile_expr(&args[0], false)?;
        self.emit(Op::PushHandler);
        self.ctx().protected += 1;
        // Never in tail position: PopHandlers must run after the body.
        let _ = tail;
        self.compile_progn(&args[1..], false)?;
        self.ctx().protected -= 1;
        self.emit(Op::PopHandlers(1));
        Ok(())
    }

    fn compile_restart_case(&mut self, args: &[Value]) -> VmResult<()> {
        if args.is_empty() {
            return Err(VmError::Compile("restart-case requires a body form".into()));
        }
        let body = &args[0];
        let clauses = &args[1..];
        // Establish restarts (innermost-last order is irrelevant: lookup
        // is by name among simultaneously-established entries).
        let mut restart_jumps = Vec::new();
        for cl in clauses {
            let items = cl
                .as_list()
                .ok_or_else(|| VmError::Compile("bad restart clause".into()))?;
            let Some(name) = items.first().and_then(Value::as_symbol) else {
                return Err(VmError::Compile("restart clause needs a name".into()));
            };
            let name_const = self.sym_const(name);
            let j = self.emit_jump(Op::PushRestart {
                name: name_const,
                offset: 0,
            });
            restart_jumps.push(j);
        }
        self.ctx().protected += 1;
        self.compile_expr(body, false)?;
        self.ctx().protected -= 1;
        self.emit(Op::PopRestarts(clauses.len() as u16));
        let jend = self.emit_jump(Op::Jump(0));
        let mut clause_ends = vec![jend];
        for (cl, jump_idx) in clauses.iter().zip(restart_jumps) {
            self.patch_jump(jump_idx);
            let items = cl.as_list().expect("checked above");
            let params = items
                .get(1)
                .and_then(Value::as_list)
                .ok_or_else(|| VmError::Compile("restart clause needs a param list".into()))?;
            // The transfer pushes the argument list.
            let visible_mark = self.ctx().visible.len();
            let args_slot = self.ctx().add_local(None);
            self.emit(Op::StoreLocal(args_slot));
            for (i, p) in params.iter().enumerate() {
                let Some(pname) = p.as_symbol() else {
                    return Err(VmError::Compile("restart params must be symbols".into()));
                };
                // (nth i args)
                let nth = self.sym_const(Symbol::intern("nth"));
                self.emit(Op::LoadGlobal(nth));
                self.emit_const(Value::Int(i as i64));
                self.emit(Op::LoadLocal(args_slot));
                self.emit(Op::Call(2));
                let slot = self.ctx().add_local(Some(pname));
                self.emit(Op::StoreLocal(slot));
            }
            self.compile_progn(&items[2..], false)?;
            self.ctx().visible.truncate(visible_mark);
            clause_ends.push(self.emit_jump(Op::Jump(0)));
        }
        for j in clause_ends {
            self.patch_jump(j);
        }
        Ok(())
    }

    /// `(. obj (method args...))` or `(. obj method)`: the Java-interop
    /// style method call of Listings 2 and 5, dispatched by `%method`.
    fn compile_method_call(&mut self, args: &[Value]) -> VmResult<()> {
        if args.len() != 2 {
            return Err(VmError::Compile(
                "method call requires receiver and method form".into(),
            ));
        }
        let helper = self.sym_const(Symbol::intern("%method"));
        self.emit(Op::LoadGlobal(helper));
        self.compile_expr(&args[0], false)?;
        let (mname, margs): (Symbol, &[Value]) = match &args[1] {
            Value::Symbol(s) => (*s, &[]),
            Value::List(items) if !items.is_empty() => {
                let Some(s) = items[0].as_symbol() else {
                    return Err(VmError::Compile("method name must be a symbol".into()));
                };
                (s, &items[1..])
            }
            other => {
                return Err(VmError::Compile(format!("bad method form: {other:?}")));
            }
        };
        self.emit_const(Value::str(mname.name()));
        for a in margs {
            self.compile_expr(a, false)?;
        }
        self.emit(Op::Call(2 + margs.len() as u16));
        Ok(())
    }

    // ---- function compilation --------------------------------------

    fn compile_function(
        &mut self,
        name: &str,
        params_form: &Value,
        body: &[Value],
    ) -> VmResult<u32> {
        let params = parse_lambda_list(params_form)?;
        let chunk_idx = self.chunks.len() as u32;
        // Reserve the slot so nested lambdas get later indices.
        self.chunks.push(Chunk {
            name: name.to_string(),
            doc: None,
            params: ParamSpec::default(),
            local_count: 0,
            captures: Vec::new(),
            code: Vec::new(),
            ic: Vec::new(),
        });
        let mut ctx = FnCtx::new(name);
        // Docstring.
        let body = if body.len() > 1 {
            if let Value::Str(doc) = &body[0] {
                ctx.doc = Some(doc.to_string());
                &body[1..]
            } else {
                body
            }
        } else {
            body
        };
        // Parameters occupy the first slots, in spec order.
        for r in &params.required {
            ctx.add_local(Some(*r));
        }
        for (o, _) in &params.optional {
            ctx.add_local(Some(*o));
        }
        if let Some(r) = params.rest {
            ctx.add_local(Some(r));
        }
        for (k, _) in &params.keys {
            ctx.add_local(Some(*k));
        }
        ctx.params = params;
        self.fns.push(ctx);
        self.compile_progn(body, true)?;
        self.emit(Op::Return);
        let ctx = self.fns.pop().expect("fn ctx");
        let chunk = &mut self.chunks[chunk_idx as usize];
        chunk.doc = ctx.doc;
        chunk.params = ctx.params;
        chunk.local_count = ctx.locals.len() as u16;
        chunk.captures = ctx.captures.iter().map(|(_, s)| *s).collect();
        chunk.code = ctx.code;
        Ok(chunk_idx)
    }

    // ---- core macros -----------------------------------------------

    fn expand_core_macro(&mut self, name: &str, args: &[Value]) -> VmResult<Value> {
        let sym = Value::symbol;
        match name {
            "when" => {
                if args.is_empty() {
                    return Err(VmError::Compile("when requires a test".into()));
                }
                let mut body = vec![sym("progn")];
                body.extend_from_slice(&args[1..]);
                Ok(Value::list(vec![
                    sym("if"),
                    args[0].clone(),
                    Value::list(body),
                ]))
            }
            "unless" => {
                if args.is_empty() {
                    return Err(VmError::Compile("unless requires a test".into()));
                }
                let mut body = vec![sym("progn")];
                body.extend_from_slice(&args[1..]);
                Ok(Value::list(vec![
                    sym("if"),
                    args[0].clone(),
                    Value::Nil,
                    Value::list(body),
                ]))
            }
            "cond" => {
                let Some(clause) = args.first() else {
                    return Ok(Value::Nil);
                };
                let items = clause
                    .as_list()
                    .ok_or_else(|| VmError::Compile("bad cond clause".into()))?;
                if items.is_empty() {
                    return Err(VmError::Compile("empty cond clause".into()));
                }
                let rest = {
                    let mut r = vec![sym("cond")];
                    r.extend_from_slice(&args[1..]);
                    Value::list(r)
                };
                let test = items[0].clone();
                // (t forms...) and (otherwise forms...) are the default
                // clause.
                let is_default = matches!(&test, Value::Bool(true))
                    || test.as_symbol().is_some_and(|s| s.name() == "otherwise");
                if items.len() == 1 {
                    return Ok(Value::list(vec![sym("or"), test, rest]));
                }
                let mut body = vec![sym("progn")];
                body.extend_from_slice(&items[1..]);
                if is_default {
                    return Ok(Value::list(body));
                }
                Ok(Value::list(vec![sym("if"), test, Value::list(body), rest]))
            }
            "case" => {
                // (case expr (key forms...) ... (otherwise forms...))
                if args.is_empty() {
                    return Err(VmError::Compile("case requires an expression".into()));
                }
                let v = Value::Symbol(self.host.gensym());
                let mut cond_clauses = vec![sym("cond")];
                for cl in &args[1..] {
                    let items = cl
                        .as_list()
                        .ok_or_else(|| VmError::Compile("bad case clause".into()))?;
                    if items.is_empty() {
                        return Err(VmError::Compile("empty case clause".into()));
                    }
                    let key = &items[0];
                    let is_default =
                        key.as_symbol().is_some_and(|s| s.name() == "otherwise")
                            || matches!(key, Value::Bool(true));
                    let test = if is_default {
                        Value::Bool(true)
                    } else if let Some(keys) = key.as_list() {
                        let mut or = vec![sym("or")];
                        for k in keys {
                            or.push(Value::list(vec![
                                sym("equal"),
                                v.clone(),
                                Value::list(vec![sym("quote"), k.clone()]),
                            ]));
                        }
                        Value::list(or)
                    } else {
                        Value::list(vec![
                            sym("equal"),
                            v.clone(),
                            Value::list(vec![sym("quote"), key.clone()]),
                        ])
                    };
                    let mut clause = vec![test];
                    clause.extend_from_slice(&items[1..]);
                    cond_clauses.push(Value::list(clause));
                }
                Ok(Value::list(vec![
                    sym("let"),
                    Value::list(vec![Value::list(vec![v, args[0].clone()])]),
                    Value::list(cond_clauses),
                ]))
            }
            "dolist" => {
                // (dolist (var list [result]) body...)
                let spec = args
                    .first()
                    .and_then(Value::as_list)
                    .ok_or_else(|| VmError::Compile("dolist requires (var list)".into()))?;
                if spec.len() < 2 {
                    return Err(VmError::Compile("dolist requires (var list)".into()));
                }
                let var = spec[0].clone();
                let seq = Value::Symbol(self.host.gensym());
                let mut body = vec![
                    sym("let"),
                    Value::list(vec![Value::list(vec![
                        var,
                        Value::list(vec![sym("first"), seq.clone()]),
                    ])]),
                ];
                body.extend_from_slice(&args[1..]);
                let loop_form = Value::list(vec![
                    sym("while"),
                    seq.clone(),
                    Value::list(body),
                    Value::list(vec![
                        sym("setq"),
                        seq.clone(),
                        Value::list(vec![sym("rest"), seq.clone()]),
                    ]),
                ]);
                let result = spec.get(2).cloned().unwrap_or(Value::Nil);
                Ok(Value::list(vec![
                    sym("let"),
                    Value::list(vec![Value::list(vec![
                        seq,
                        Value::list(vec![sym("seq->list"), spec[1].clone()]),
                    ])]),
                    loop_form,
                    result,
                ]))
            }
            "dotimes" => {
                // (dotimes (var n [result]) body...)
                let spec = args
                    .first()
                    .and_then(Value::as_list)
                    .ok_or_else(|| VmError::Compile("dotimes requires (var n)".into()))?;
                if spec.len() < 2 {
                    return Err(VmError::Compile("dotimes requires (var n)".into()));
                }
                let var = spec[0].clone();
                let limit = Value::Symbol(self.host.gensym());
                let mut while_form = vec![
                    sym("while"),
                    Value::list(vec![sym("<"), var.clone(), limit.clone()]),
                ];
                while_form.extend_from_slice(&args[1..]);
                while_form.push(Value::list(vec![
                    sym("setq"),
                    var.clone(),
                    Value::list(vec![sym("+"), var.clone(), Value::Int(1)]),
                ]));
                let result = spec.get(2).cloned().unwrap_or(Value::Nil);
                Ok(Value::list(vec![
                    sym("let"),
                    Value::list(vec![
                        Value::list(vec![var, Value::Int(0)]),
                        Value::list(vec![limit, spec[1].clone()]),
                    ]),
                    Value::list(while_form),
                    result,
                ]))
            }
            "incf" | "decf" => {
                if args.is_empty() {
                    return Err(VmError::Compile("incf requires a place".into()));
                }
                let delta = args.get(1).cloned().unwrap_or(Value::Int(1));
                let op = if name == "incf" { "+" } else { "-" };
                Ok(Value::list(vec![
                    sym("setf"),
                    args[0].clone(),
                    Value::list(vec![sym(op), args[0].clone(), delta]),
                ]))
            }
            "push" => {
                // (push v place) => (setf place (cons v place))
                expect_args("push", args, 2)?;
                Ok(Value::list(vec![
                    sym("setf"),
                    args[1].clone(),
                    Value::list(vec![sym("cons"), args[0].clone(), args[1].clone()]),
                ]))
            }
            "append!" => {
                // (append! place v) => (setf place (%append1 place v)),
                // the destructive-looking list append of Listing 3.
                expect_args("append!", args, 2)?;
                Ok(Value::list(vec![
                    sym("setf"),
                    args[0].clone(),
                    Value::list(vec![sym("%append1"), args[0].clone(), args[1].clone()]),
                ]))
            }
            "%" => {
                // (% op args...) => (op args...): BlueBox platform call
                // sugar, as in Listing 2's (% is-fiber-thread).
                if args.is_empty() {
                    return Err(VmError::Compile("% requires an operation".into()));
                }
                let mut call = vec![args[0].clone()];
                call.extend_from_slice(&args[1..]);
                Ok(Value::list(call))
            }
            "prog1" => {
                if args.is_empty() {
                    return Err(VmError::Compile("prog1 requires a form".into()));
                }
                let v = Value::Symbol(self.host.gensym());
                let mut body = vec![
                    sym("let"),
                    Value::list(vec![Value::list(vec![v.clone(), args[0].clone()])]),
                ];
                body.extend_from_slice(&args[1..]);
                body.push(v);
                Ok(Value::list(body))
            }
            "ignore-errors" => {
                // (ignore-errors body...) => restart-case + handler that
                // ignores any error, returning nil.
                let mut body = vec![sym("progn")];
                body.extend_from_slice(args);
                Ok(Value::list(vec![
                    sym("restart-case"),
                    Value::list(vec![
                        sym("handler-bind"),
                        Value::list(vec![
                            sym("lambda"),
                            Value::list(vec![sym("c")]),
                            Value::list(vec![
                                sym("invoke-restart"),
                                Value::list(vec![sym("quote"), sym("%ignore-errors")]),
                            ]),
                        ]),
                        Value::list(body),
                    ]),
                    Value::list(vec![sym("%ignore-errors"), Value::Nil]),
                ]))
            }
            "future" => {
                // (future expr...) => (%make-future (lambda () expr...))
                // — the local-parallelism primitive of §2.
                let mut lambda = vec![sym("lambda"), Value::Nil];
                lambda.extend_from_slice(args);
                Ok(Value::list(vec![
                    sym("%make-future"),
                    Value::list(lambda),
                ]))
            }
            "loop" => expand_loop(self.host, args),
            other => Err(VmError::Compile(format!("unknown core macro {other}"))),
        }
    }
}

/// The names handled by the compiler's built-in expanders.
pub const CORE_MACROS: &[&str] = &[
    "when", "unless", "cond", "case", "dolist", "dotimes", "incf", "decf", "push", "append!",
    "%", "loop", "prog1", "ignore-errors", "future",
];

/// Expand a core macro outside a compilation (the `macroexpand-1`
/// builtin). `None` when `name` is not a core macro.
pub fn expand_core(
    host: &dyn MacroHost,
    name: &str,
    args: &[Value],
) -> Option<VmResult<Value>> {
    if !CORE_MACROS.contains(&name) {
        return None;
    }
    let mut c = Compiler {
        host,
        consts: Vec::new(),
        chunks: Vec::new(),
        fns: Vec::new(),
    };
    Some(c.expand_core_macro(name, args))
}

fn expect_args(name: &str, args: &[Value], n: usize) -> VmResult<()> {
    if args.len() != n {
        return Err(VmError::Compile(format!(
            "{name} requires exactly {n} argument form(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

/// Parse a lambda list: `(a b &optional (c 1) &rest r &key k1 (k2 0))`.
fn parse_lambda_list(form: &Value) -> VmResult<ParamSpec> {
    let items = form
        .as_list()
        .ok_or_else(|| VmError::Compile(format!("bad lambda list: {form:?}")))?;
    let mut spec = ParamSpec::default();
    #[derive(PartialEq)]
    enum Mode {
        Required,
        Optional,
        Rest,
        Key,
    }
    let mut mode = Mode::Required;
    for item in items {
        if let Some(s) = item.as_symbol() {
            match s.name() {
                "&optional" => {
                    mode = Mode::Optional;
                    continue;
                }
                "&rest" => {
                    mode = Mode::Rest;
                    continue;
                }
                "&key" => {
                    mode = Mode::Key;
                    continue;
                }
                _ => {}
            }
        }
        let (name, default) = match item {
            Value::Symbol(s) => (*s, Value::Nil),
            Value::List(pair) if pair.len() == 2 => {
                let Some(s) = pair[0].as_symbol() else {
                    return Err(VmError::Compile(format!("bad parameter: {item:?}")));
                };
                match &pair[1] {
                    Value::List(_) | Value::Vector(_) | Value::Map(_) | Value::Symbol(_) => {
                        return Err(VmError::Compile(format!(
                            "parameter defaults must be constants: {item:?}"
                        )));
                    }
                    v => (s, v.clone()),
                }
            }
            other => {
                return Err(VmError::Compile(format!("bad parameter: {other:?}")));
            }
        };
        match mode {
            Mode::Required => {
                if default != Value::Nil {
                    return Err(VmError::Compile(
                        "required parameters cannot have defaults".into(),
                    ));
                }
                spec.required.push(name);
            }
            Mode::Optional => spec.optional.push((name, default)),
            Mode::Rest => {
                if spec.rest.is_some() {
                    return Err(VmError::Compile("multiple &rest parameters".into()));
                }
                spec.rest = Some(name);
            }
            Mode::Key => spec.keys.push((name, default)),
        }
    }
    Ok(spec)
}

/// Expand quasiquote into `list`/`append`/`quote` calls. `depth` is the
/// quasiquote nesting level.
fn quasi_expand(form: &Value, depth: u32) -> VmResult<Value> {
    let sym = Value::symbol;
    match form {
        Value::List(items) if !items.is_empty() => {
            // Handle (unquote x) / (unquote-splicing x) / nested quasiquote
            if let Some(head) = items[0].as_symbol() {
                match head.name() {
                    "unquote" => {
                        expect_args("unquote", &items[1..], 1)?;
                        if depth == 1 {
                            return Ok(items[1].clone());
                        }
                        let inner = quasi_expand(&items[1], depth - 1)?;
                        return Ok(Value::list(vec![
                            sym("list"),
                            Value::list(vec![sym("quote"), sym("unquote")]),
                            inner,
                        ]));
                    }
                    "unquote-splicing" => {
                        return Err(VmError::Compile(
                            "unquote-splicing not inside a list".into(),
                        ));
                    }
                    "quasiquote" => {
                        expect_args("quasiquote", &items[1..], 1)?;
                        let inner = quasi_expand(&items[1], depth + 1)?;
                        return Ok(Value::list(vec![
                            sym("list"),
                            Value::list(vec![sym("quote"), sym("quasiquote")]),
                            inner,
                        ]));
                    }
                    _ => {}
                }
            }
            // General list: (append seg1 seg2 ...) where plain elements
            // become (list e...) segments and splices pass through.
            let mut segments: Vec<Value> = Vec::new();
            let mut current: Vec<Value> = vec![sym("list")];
            for item in items.iter() {
                let is_splice = item
                    .as_list()
                    .and_then(|l| l.first())
                    .and_then(Value::as_symbol)
                    .is_some_and(|s| s.name() == "unquote-splicing");
                if is_splice && depth == 1 {
                    let l = item.as_list().unwrap();
                    expect_args("unquote-splicing", &l[1..], 1)?;
                    if current.len() > 1 {
                        segments.push(Value::list(std::mem::replace(
                            &mut current,
                            vec![sym("list")],
                        )));
                    }
                    segments.push(l[1].clone());
                } else {
                    current.push(quasi_expand(item, depth)?);
                }
            }
            if current.len() > 1 {
                segments.push(Value::list(current));
            }
            match segments.len() {
                0 => Ok(Value::Nil),
                1 => Ok(segments.pop().unwrap()),
                _ => {
                    let mut call = vec![sym("append")];
                    call.extend(segments);
                    Ok(Value::list(call))
                }
            }
        }
        Value::Vector(items) => {
            // Rebuild as (list->vector `(...))
            let as_list = Value::List(items.clone());
            let expanded = quasi_expand(&as_list, depth)?;
            Ok(Value::list(vec![sym("list->vector"), expanded]))
        }
        // Atoms and maps are constants under quasiquote.
        _ => Ok(Value::list(vec![sym("quote"), form.clone()])),
    }
}

/// Expand the supported `loop` subset:
///
/// ```text
/// (loop [for VAR in EXPR |
///        for VAR from A (to|below) B [by S] |
///        repeat N]
///       [while C] [until C]
///       (collect E | sum E | count E | do FORMS...)*)
/// ```
fn expand_loop(host: &dyn MacroHost, args: &[Value]) -> VmResult<Value> {
    let sym = Value::symbol;
    let mut inits: Vec<Value> = Vec::new(); // (var init) pairs
    // Conditions deciding whether another iteration *exists* (sequence
    // non-empty, index in range).
    let mut for_conds: Vec<Value> = Vec::new();
    // Per-iteration variable updates run before user conditions
    // ((setq var (first seq)) for in-style clauses).
    let mut presets: Vec<Value> = Vec::new();
    // User while/until conditions; they may reference the for variables.
    let mut while_conds: Vec<Value> = Vec::new();
    let mut body: Vec<Value> = Vec::new();
    let mut steps: Vec<Value> = Vec::new();
    let mut result: Value = Value::Nil;
    let acc = Value::Symbol(host.gensym());
    let mut has_acc = false;

    let kw = |v: &Value, name: &str| v.as_symbol().is_some_and(|s| s.name() == name);

    let mut i = 0;
    while i < args.len() {
        let clause = &args[i];
        if kw(clause, "for") {
            let var = args
                .get(i + 1)
                .cloned()
                .ok_or_else(|| VmError::Compile("loop: for requires a variable".into()))?;
            let mode = args
                .get(i + 2)
                .ok_or_else(|| VmError::Compile("loop: for requires in/from".into()))?;
            if kw(mode, "in") {
                let seq_expr = args
                    .get(i + 3)
                    .cloned()
                    .ok_or_else(|| VmError::Compile("loop: for..in requires a sequence".into()))?;
                // Index-based iteration: `(rest seq)` on a Vec-backed list
                // copies the tail, turning the whole loop quadratic. An
                // index over the (immutable, gensym-bound) snapshot costs
                // O(1) per element via `nth`.
                let seq = Value::Symbol(host.gensym());
                let len = Value::Symbol(host.gensym());
                let idx = Value::Symbol(host.gensym());
                inits.push(Value::list(vec![
                    seq.clone(),
                    Value::list(vec![sym("seq->list"), seq_expr]),
                ]));
                inits.push(Value::list(vec![
                    len.clone(),
                    Value::list(vec![sym("length"), seq.clone()]),
                ]));
                inits.push(Value::list(vec![idx.clone(), Value::Int(0)]));
                inits.push(Value::list(vec![var.clone(), Value::Nil]));
                for_conds.push(Value::list(vec![sym("<"), idx.clone(), len]));
                presets.push(Value::list(vec![
                    sym("setq"),
                    var,
                    Value::list(vec![sym("nth"), idx.clone(), seq]),
                ]));
                steps.push(Value::list(vec![
                    sym("setq"),
                    idx.clone(),
                    Value::list(vec![sym("+"), idx, Value::Int(1)]),
                ]));
                i += 4;
            } else if kw(mode, "from") {
                let a = args
                    .get(i + 3)
                    .cloned()
                    .ok_or_else(|| VmError::Compile("loop: from requires a start".into()))?;
                let dir = args
                    .get(i + 4)
                    .ok_or_else(|| VmError::Compile("loop: from requires to/below".into()))?;
                let b = args
                    .get(i + 5)
                    .cloned()
                    .ok_or_else(|| VmError::Compile("loop: to requires a bound".into()))?;
                let cmp = if kw(dir, "below") {
                    "<"
                } else if kw(dir, "to") {
                    "<="
                } else {
                    return Err(VmError::Compile("loop: expected to/below".into()));
                };
                let mut step = Value::Int(1);
                i += 6;
                if args.get(i).is_some_and(|v| kw(v, "by")) {
                    step = args
                        .get(i + 1)
                        .cloned()
                        .ok_or_else(|| VmError::Compile("loop: by requires a step".into()))?;
                    i += 2;
                }
                let bound = Value::Symbol(host.gensym());
                // The bound is computed before the loop variable binds, so
                // a bound expression mentioning the same name still sees
                // the enclosing binding under the sequential `let*`.
                inits.push(Value::list(vec![bound.clone(), b]));
                inits.push(Value::list(vec![var.clone(), a]));
                for_conds.push(Value::list(vec![sym(cmp), var.clone(), bound]));
                steps.push(Value::list(vec![
                    sym("setq"),
                    var.clone(),
                    Value::list(vec![sym("+"), var, step]),
                ]));
            } else {
                return Err(VmError::Compile("loop: expected in/from after var".into()));
            }
        } else if kw(clause, "repeat") {
            let n = args
                .get(i + 1)
                .cloned()
                .ok_or_else(|| VmError::Compile("loop: repeat requires a count".into()))?;
            let iv = Value::Symbol(host.gensym());
            inits.push(Value::list(vec![iv.clone(), n]));
            for_conds.push(Value::list(vec![sym(">"), iv.clone(), Value::Int(0)]));
            steps.push(Value::list(vec![
                sym("setq"),
                iv.clone(),
                Value::list(vec![sym("-"), iv, Value::Int(1)]),
            ]));
            i += 2;
        } else if kw(clause, "while") || kw(clause, "until") {
            let c = args
                .get(i + 1)
                .cloned()
                .ok_or_else(|| VmError::Compile("loop: while requires a condition".into()))?;
            if kw(clause, "while") {
                while_conds.push(c);
            } else {
                while_conds.push(Value::list(vec![sym("not"), c]));
            }
            i += 2;
        } else if kw(clause, "collect") || kw(clause, "sum") || kw(clause, "count") {
            let e = args
                .get(i + 1)
                .cloned()
                .ok_or_else(|| VmError::Compile("loop: accumulator requires a form".into()))?;
            if !has_acc {
                has_acc = true;
                let init = if kw(clause, "collect") {
                    Value::Nil
                } else {
                    Value::Int(0)
                };
                inits.push(Value::list(vec![acc.clone(), init]));
            }
            if kw(clause, "collect") {
                // `%take` moves the accumulator out of its slot so
                // `%append1` holds the only reference and can push in
                // place — without it every iteration copies the list
                // (the slot's second reference defeats `Arc::get_mut`)
                // and `collect` is O(n²).
                body.push(Value::list(vec![
                    sym("setq"),
                    acc.clone(),
                    Value::list(vec![
                        sym("%append1"),
                        Value::list(vec![sym("%take"), acc.clone()]),
                        e,
                    ]),
                ]));
            } else if kw(clause, "sum") {
                body.push(Value::list(vec![
                    sym("setq"),
                    acc.clone(),
                    Value::list(vec![sym("+"), acc.clone(), e]),
                ]));
            } else {
                body.push(Value::list(vec![
                    sym("when"),
                    e,
                    Value::list(vec![
                        sym("setq"),
                        acc.clone(),
                        Value::list(vec![sym("+"), acc.clone(), Value::Int(1)]),
                    ]),
                ]));
            }
            result = acc.clone();
            i += 2;
        } else if kw(clause, "do") {
            i += 1;
            let keywords = [
                "for", "while", "until", "collect", "sum", "count", "do", "repeat",
            ];
            while i < args.len() {
                let is_kw = args[i]
                    .as_symbol()
                    .is_some_and(|s| keywords.contains(&s.name()));
                if is_kw {
                    break;
                }
                body.push(args[i].clone());
                i += 1;
            }
        } else {
            return Err(VmError::Compile(format!(
                "loop: unsupported clause {clause:?}"
            )));
        }
    }

    let and_all = |mut conds: Vec<Value>| -> Value {
        match conds.len() {
            0 => Value::Bool(true),
            1 => conds.pop().unwrap(),
            _ => {
                let mut and = vec![sym("and")];
                and.extend(conds);
                Value::list(and)
            }
        }
    };

    // Loop skeleton (`let*`: the for..in inits derive the length from the
    // sequence snapshot, and later `for` clauses see earlier variables,
    // as in CL):
    //   (let* (inits.. [done])
    //     (while (and [not done] for-conds..)
    //       presets..
    //       (if while-conds (progn body.. steps..) (setq done t)))
    //     result)
    let mut body_and_steps = body;
    body_and_steps.extend(steps);
    let mut while_body: Vec<Value> = presets;
    if while_conds.is_empty() {
        while_body.extend(body_and_steps);
        let mut while_form = vec![sym("while"), and_all(for_conds)];
        while_form.extend(while_body);
        let out = vec![
            sym("let*"),
            Value::list(inits),
            Value::list(while_form),
            result,
        ];
        return Ok(Value::list(out));
    }
    let done = Value::Symbol(host.gensym());
    inits.push(Value::list(vec![done.clone(), Value::Nil]));
    let mut progn = vec![sym("progn")];
    progn.extend(body_and_steps);
    while_body.push(Value::list(vec![
        sym("if"),
        and_all(while_conds),
        Value::list(progn),
        Value::list(vec![sym("setq"), done.clone(), Value::Bool(true)]),
    ]));
    let mut all_conds = vec![Value::list(vec![sym("not"), done])];
    all_conds.extend(for_conds);
    let mut while_form = vec![sym("while"), and_all(all_conds)];
    while_form.extend(while_body);
    let out = vec![
        sym("let*"),
        Value::list(inits),
        Value::list(while_form),
        result,
    ];
    Ok(Value::list(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gozer_lang::Reader;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct GensymHost(AtomicU32);
    impl MacroHost for GensymHost {
        fn lookup_macro(&self, _n: Symbol) -> Option<Value> {
            None
        }
        fn expand_macro(&self, _f: &Value, _a: &[Value]) -> VmResult<Value> {
            unreachable!()
        }
        fn gensym(&self) -> Symbol {
            Symbol::intern(&format!("#:g{}", self.0.fetch_add(1, Ordering::Relaxed)))
        }
    }

    fn compile(src: &str) -> VmResult<Arc<Program>> {
        let form = Reader::read_one_str(src).unwrap();
        let host = GensymHost(AtomicU32::new(0));
        Compiler::compile_toplevel(&host, &form, "test", 1)
    }

    #[test]
    fn compiles_constants_and_calls() {
        // `list` is not foldable, so this compiles to a real call.
        let p = compile("(list 1 2)").unwrap();
        assert_eq!(p.chunks.len(), 1);
        let code = &p.chunks[0].code;
        assert!(matches!(code[0], Op::LoadGlobal(_)));
        assert!(matches!(code.last(), Some(Op::Return)));
    }

    #[test]
    fn constant_arithmetic_folds() {
        let p = compile("(+ 1 (* 2 3))").unwrap();
        assert!(matches!(p.chunks[0].code[0], Op::Const(_)));
        assert_eq!(p.consts[0], Value::Int(7));
    }

    #[test]
    fn compiles_lambda_with_captures() {
        let p = compile("(let ((x 1)) (lambda (y) (+ x y)))").unwrap();
        assert_eq!(p.chunks.len(), 2);
        assert_eq!(p.chunks[1].captures, vec![CaptureSource::Local(0)]);
    }

    #[test]
    fn nested_capture_threads_through() {
        let p = compile("(let ((x 1)) (lambda () (lambda () x)))").unwrap();
        // innermost chunk captures from the middle chunk's captures
        assert_eq!(p.chunks.len(), 3);
        let inner = p.chunks.iter().find(|c| !c.captures.is_empty()).unwrap();
        assert_eq!(inner.captures.len(), 1);
    }

    #[test]
    fn rejects_mutating_captured_variable() {
        let err = compile("(let ((x 1)) (lambda () (setq x 2)))").unwrap_err();
        assert!(err.to_string().contains("capture by value"));
    }

    #[test]
    fn lambda_list_parsing() {
        let form = Reader::read_one_str("(a b &optional (c 3) &rest r &key k1 (k2 0))").unwrap();
        let spec = parse_lambda_list(&form).unwrap();
        assert_eq!(spec.required.len(), 2);
        assert_eq!(spec.optional, vec![(Symbol::intern("c"), Value::Int(3))]);
        assert_eq!(spec.rest, Some(Symbol::intern("r")));
        assert_eq!(spec.keys.len(), 2);
        assert_eq!(spec.slot_count(), 6);
    }

    #[test]
    fn rejects_non_constant_defaults() {
        let form = Reader::read_one_str("(&optional (c (compute)))").unwrap();
        assert!(parse_lambda_list(&form).is_err());
    }

    #[test]
    fn quasiquote_expansion_shapes() {
        let form = Reader::read_one_str("`(a ,b ,@c d)").unwrap();
        let args = &form.as_list().unwrap()[1..];
        let expanded = quasi_expand(&args[0], 1).unwrap();
        let s = expanded.to_string();
        assert!(s.starts_with("(append"), "got {s}");
        assert!(s.contains("(quote a)"));
        assert!(s.contains("c"));
    }

    #[test]
    fn loop_collect_expansion_compiles() {
        let p = compile("(loop for x in xs collect (* x x))");
        assert!(p.is_ok(), "{p:?}");
    }

    #[test]
    fn loop_range_with_step() {
        assert!(compile("(loop for i from 0 below 10 by 2 sum i)").is_ok());
    }

    #[test]
    fn restart_case_compiles() {
        let p = compile("(restart-case (f) (retry () (g)) (ignore (x) x))").unwrap();
        let code = &p.chunks[0].code;
        let pushes = code
            .iter()
            .filter(|op| matches!(op, Op::PushRestart { .. }))
            .count();
        assert_eq!(pushes, 2);
        assert!(code.iter().any(|op| matches!(op, Op::PopRestarts(2))));
    }

    #[test]
    fn yield_compiles() {
        let p = compile("(progn (yield) (yield 42))").unwrap();
        let yields = p.chunks[0]
            .code
            .iter()
            .filter(|op| matches!(op, Op::Yield))
            .count();
        assert_eq!(yields, 2);
    }

    #[test]
    fn method_call_compiles() {
        let p = compile("(. msg (set \"a\" 1))").unwrap();
        assert!(p.consts.iter().any(|c| c == &Value::str("set")));
    }

    #[test]
    fn tail_call_emitted_in_function_tail() {
        let p = compile("(defun f (n) (f (- n 1)))").unwrap();
        let f = p.chunks.iter().find(|c| c.name == "f").unwrap();
        assert!(f.code.iter().any(|op| matches!(op, Op::TailCall(1))));
    }

    #[test]
    fn no_tail_call_inside_restart_case() {
        let p = compile("(defun f (n) (restart-case (f (- n 1)) (retry () nil)))").unwrap();
        let f = p.chunks.iter().find(|c| c.name == "f").unwrap();
        assert!(!f.code.iter().any(|op| matches!(op, Op::TailCall(_))));
    }

    #[test]
    fn docstring_recorded() {
        let p = compile("(defun f (x) \"squares x\" (* x x))").unwrap();
        let f = p.chunks.iter().find(|c| c.name == "f").unwrap();
        assert_eq!(f.doc.as_deref(), Some("squares x"));
    }
}
