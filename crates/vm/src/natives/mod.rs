//! The native (Rust-implemented) standard library of the Gozer language.
//!
//! Natives are ordinary global bindings holding [`NativeFn`] values, so
//! Gozer code can pass them around, `apply` them, and shadow them. Vinz
//! registers its own natives (`fork-and-exec`, `%get-task-var`, ...)
//! through the same [`Gvm::set_global`] mechanism.

use std::sync::Arc;

use gozer_lang::{Symbol, Value};

use crate::error::{VmError, VmResult};
use crate::gvm::{Gvm, NativeCtx};
use crate::runtime::{NativeFn, NativeOutcome};

mod arith;
mod control;
mod futures;
mod io;
mod lists;
mod methods;
mod predicates;
mod readerfns;
mod strings;

pub use methods::ObjectVal;

/// Gozer source evaluated at VM construction: the parts of the standard
/// library most naturally written in Gozer itself (also exercising
/// `defmacro` and the compiler during boot).
pub const PRELUDE: &str = r#"
(defun caar (x) (first (first x)))
(defun cadr (x) (second x))
(defun cddr (x) (rest (rest x)))

(defun mapcan (f lst)
  "Map F over LST and append the resulting lists."
  (apply #'append (mapcar f lst)))

(defun curry (f &rest pre)
  "Partially apply F to the arguments PRE."
  (lambda (&rest post) (apply f (append pre post))))

(defun complement (f)
  "A predicate returning the opposite of F."
  (lambda (&rest args) (not (apply f args))))

(defun constantly (v)
  "A function of any arguments that always returns V."
  (lambda (&rest args) v))

(defmacro assert (form)
  `(unless ,form
     (error "assertion failed: ~s" ',form)))

(defmacro time (form)
  "Evaluate FORM, logging elapsed wall-clock milliseconds."
  (let ((start (gensym)) (result (gensym)))
    `(let ((,start (%now-millis))
           (,result ,form))
       (log "time:" (- (%now-millis) ,start) "ms")
       ,result)))
"#;

/// Install every native into the VM's global environment.
pub fn install(gvm: &Arc<Gvm>) {
    arith::install(gvm);
    lists::install(gvm);
    strings::install(gvm);
    predicates::install(gvm);
    control::install(gvm);
    io::install(gvm);
    futures::install(gvm);
    methods::install(gvm);
    readerfns::install(gvm);
}

// ---- registration helpers (crate-internal) ------------------------------

pub(crate) fn reg(
    gvm: &Arc<Gvm>,
    name: &str,
    f: impl Fn(&mut NativeCtx<'_>, Vec<Value>) -> VmResult<NativeOutcome> + Send + Sync + 'static,
) {
    gvm.set_global(Symbol::intern(name), NativeFn::value(name, f));
}

pub(crate) fn reg_fast2(
    gvm: &Arc<Gvm>,
    name: &str,
    fast2: crate::runtime::Fast2,
    f: impl Fn(&mut NativeCtx<'_>, Vec<Value>) -> VmResult<NativeOutcome> + Send + Sync + 'static,
) {
    gvm.set_global(Symbol::intern(name), NativeFn::value_fast2(name, fast2, f));
}

pub(crate) fn reg_raw(
    gvm: &Arc<Gvm>,
    name: &str,
    f: impl Fn(&mut NativeCtx<'_>, Vec<Value>) -> VmResult<NativeOutcome> + Send + Sync + 'static,
) {
    gvm.set_global(Symbol::intern(name), NativeFn::raw_value(name, f));
}

// ---- argument helpers ----------------------------------------------------

pub(crate) fn arity(name: &str, args: &[Value], min: usize, max: Option<usize>) -> VmResult<()> {
    if args.len() < min || max.is_some_and(|m| args.len() > m) {
        return Err(VmError::msg(format!(
            "{name}: expected {}{} argument(s), got {}",
            min,
            match max {
                Some(m) if m == min => String::new(),
                Some(m) => format!("..{m}"),
                None => "+".into(),
            },
            args.len()
        )));
    }
    Ok(())
}

pub(crate) fn int_arg(name: &str, args: &[Value], i: usize) -> VmResult<i64> {
    args[i]
        .as_int()
        .ok_or_else(|| VmError::type_error(&format!("integer ({name} arg {i})"), &args[i]))
}

pub(crate) fn num_arg(name: &str, args: &[Value], i: usize) -> VmResult<f64> {
    args[i]
        .as_f64()
        .ok_or_else(|| VmError::type_error(&format!("number ({name} arg {i})"), &args[i]))
}

pub(crate) fn str_arg<'a>(name: &str, args: &'a [Value], i: usize) -> VmResult<&'a str> {
    args[i]
        .as_str()
        .ok_or_else(|| VmError::type_error(&format!("string ({name} arg {i})"), &args[i]))
}

pub(crate) fn seq_arg<'a>(name: &str, args: &'a [Value], i: usize) -> VmResult<&'a [Value]> {
    args[i]
        .as_seq()
        .ok_or_else(|| VmError::type_error(&format!("sequence ({name} arg {i})"), &args[i]))
}

pub(crate) fn sym_arg(name: &str, args: &[Value], i: usize) -> VmResult<Symbol> {
    args[i]
        .as_symbol()
        .ok_or_else(|| VmError::type_error(&format!("symbol ({name} arg {i})"), &args[i]))
}

/// Parse `(:key value ...)` keyword arguments from a native's tail.
pub(crate) fn kwargs(name: &str, rest: &[Value]) -> VmResult<Vec<(Symbol, Value)>> {
    if !rest.len().is_multiple_of(2) {
        return Err(VmError::msg(format!(
            "{name}: odd number of keyword arguments"
        )));
    }
    let mut out = Vec::with_capacity(rest.len() / 2);
    let mut i = 0;
    while i < rest.len() {
        let Some(k) = rest[i].as_keyword() else {
            return Err(VmError::type_error("keyword", &rest[i]));
        };
        out.push((k, rest[i + 1].clone()));
        i += 2;
    }
    Ok(out)
}
