//! Reader natives: `read`, `read-from-string`, and
//! `set-macro-character` — the hook Vinz uses to install the `^task-var^`
//! syntax (Listing 5).

use std::sync::Arc;

use gozer_lang::reader::SharedStream;
use gozer_lang::Value;

use crate::error::VmError;
use crate::gvm::{Gvm, GvmReadEval};
use crate::runtime::NativeOutcome;

use super::{arity, reg};

pub(super) fn install(gvm: &Arc<Gvm>) {
    // (read stream &optional eof-error-p eof-value recursive-p)
    reg(gvm, "read", |ctx, args| {
        arity("read", &args, 1, Some(4))?;
        let stream = args[0]
            .as_opaque::<SharedStream>()
            .cloned()
            .ok_or_else(|| VmError::type_error("stream", &args[0]))?;
        let eof_error = args.get(1).map(Value::is_truthy).unwrap_or(true);
        let eof_value = args.get(2).cloned().unwrap_or(Value::Nil);
        let reader = ctx.gvm.reader.lock().clone();
        let mut eval = GvmReadEval { gvm: ctx.gvm };
        match reader.read(&stream, &mut eval)? {
            Some(form) => NativeOutcome::ok(form),
            None if eof_error => Err(VmError::msg("read: end of input")),
            None => NativeOutcome::ok(eof_value),
        }
    });
    reg(gvm, "read-from-string", |ctx, args| {
        arity("read-from-string", &args, 1, Some(1))?;
        let src = args[0]
            .as_str()
            .ok_or_else(|| VmError::type_error("string", &args[0]))?;
        let stream = SharedStream::new(src);
        let reader = ctx.gvm.reader.lock().clone();
        let mut eval = GvmReadEval { gvm: ctx.gvm };
        match reader.read(&stream, &mut eval)? {
            Some(form) => NativeOutcome::ok(form),
            None => Err(VmError::msg("read-from-string: no form in input")),
        }
    });
    reg(gvm, "make-string-stream", |_, args| {
        arity("make-string-stream", &args, 1, Some(1))?;
        let src = args[0]
            .as_str()
            .ok_or_else(|| VmError::type_error("string", &args[0]))?;
        NativeOutcome::ok(Value::Opaque(Arc::new(SharedStream::new(src))))
    });
    // (set-macro-character char function &optional non-terminating-p)
    reg(gvm, "set-macro-character", |ctx, args| {
        arity("set-macro-character", &args, 2, Some(3))?;
        let Value::Char(c) = args[0] else {
            return Err(VmError::type_error("character", &args[0]));
        };
        if !matches!(args[1], Value::Func(_)) {
            return Err(VmError::type_error("function", &args[1]));
        }
        let non_terminating = args.get(2).map(Value::is_truthy).unwrap_or(false);
        ctx.gvm
            .reader
            .lock()
            .table
            .set_macro_character(c, args[1].clone(), !non_terminating);
        NativeOutcome::ok(Value::Bool(true))
    });
    reg(gvm, "peek-char", |_, args| {
        arity("peek-char", &args, 1, Some(1))?;
        let stream = args[0]
            .as_opaque::<SharedStream>()
            .ok_or_else(|| VmError::type_error("stream", &args[0]))?;
        NativeOutcome::ok(stream.peek().map(Value::Char).unwrap_or(Value::Nil))
    });
    reg(gvm, "read-char", |_, args| {
        arity("read-char", &args, 1, Some(1))?;
        let stream = args[0]
            .as_opaque::<SharedStream>()
            .ok_or_else(|| VmError::type_error("stream", &args[0]))?;
        NativeOutcome::ok(stream.next().map(Value::Char).unwrap_or(Value::Nil))
    });
}
