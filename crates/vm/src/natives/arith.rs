//! Numeric natives: the int/float tower with float contagion and
//! overflow promotion (an `i64` overflow promotes the result to `f64`
//! rather than erroring, like most scripting runtimes).

use std::sync::Arc;

use gozer_lang::Value;

use crate::error::{VmError, VmResult};
use crate::gvm::Gvm;
use crate::runtime::{Fast2, NativeOutcome};

use super::{arity, num_arg, reg, reg_fast2};

/// Either branch of the numeric tower.
#[derive(Clone, Copy)]
enum Num {
    Int(i64),
    Float(f64),
}

impl Num {
    fn of(v: &Value) -> VmResult<Num> {
        match v {
            Value::Int(i) => Ok(Num::Int(*i)),
            Value::Float(f) => Ok(Num::Float(*f)),
            other => Err(VmError::type_error("number", other)),
        }
    }

    fn value(self) -> Value {
        match self {
            Num::Int(i) => Value::Int(i),
            Num::Float(f) => Value::Float(f),
        }
    }

    fn f64(self) -> f64 {
        match self {
            Num::Int(i) => i as f64,
            Num::Float(f) => f,
        }
    }
}

fn fold(
    name: &str,
    args: &[Value],
    int_op: fn(i64, i64) -> Option<i64>,
    float_op: fn(f64, f64) -> f64,
) -> VmResult<Value> {
    let mut acc = Num::of(&args[0])?;
    for a in &args[1..] {
        let b = Num::of(a)?;
        acc = match (acc, b) {
            (Num::Int(x), Num::Int(y)) => match int_op(x, y) {
                Some(r) => Num::Int(r),
                // Overflow: promote to float.
                None => Num::Float(float_op(x as f64, y as f64)),
            },
            (x, y) => Num::Float(float_op(x.f64(), y.f64())),
        };
    }
    let _ = name;
    Ok(acc.value())
}

fn cmp_chain(args: &[Value], ok: fn(f64, f64) -> bool) -> VmResult<Value> {
    for w in args.windows(2) {
        let a = Num::of(&w[0])?.f64();
        let b = Num::of(&w[1])?.f64();
        if !ok(a, b) {
            return Ok(Value::Nil);
        }
    }
    Ok(Value::Bool(true))
}

pub(super) fn install(gvm: &Arc<Gvm>) {
    reg_fast2(gvm, "+", Fast2::Add, |_, args| {
        if args.is_empty() {
            return NativeOutcome::ok(Value::Int(0));
        }
        fold("+", &args, i64::checked_add, |a, b| a + b).map(NativeOutcome::Value)
    });
    reg_fast2(gvm, "-", Fast2::Sub, |_, args| {
        arity("-", &args, 1, None)?;
        if args.len() == 1 {
            return match Num::of(&args[0])? {
                Num::Int(i) => NativeOutcome::ok(Value::Int(-i)),
                Num::Float(f) => NativeOutcome::ok(Value::Float(-f)),
            };
        }
        fold("-", &args, i64::checked_sub, |a, b| a - b).map(NativeOutcome::Value)
    });
    reg_fast2(gvm, "*", Fast2::Mul, |_, args| {
        if args.is_empty() {
            return NativeOutcome::ok(Value::Int(1));
        }
        fold("*", &args, i64::checked_mul, |a, b| a * b).map(NativeOutcome::Value)
    });
    reg(gvm, "/", |_, args| {
        arity("/", &args, 1, None)?;
        let mut acc = Num::of(&args[0])?;
        let rest: &[Value] = if args.len() == 1 {
            // (/ x) is the reciprocal.
            acc = Num::Int(1);
            &args[0..1]
        } else {
            &args[1..]
        };
        for a in rest {
            let b = Num::of(a)?;
            if b.f64() == 0.0 {
                return Err(VmError::msg("division by zero"));
            }
            acc = match (acc, b) {
                (Num::Int(x), Num::Int(y)) if x % y == 0 => Num::Int(x / y),
                (x, y) => Num::Float(x.f64() / y.f64()),
            };
        }
        NativeOutcome::ok(acc.value())
    });
    reg(gvm, "mod", |_, args| {
        arity("mod", &args, 2, Some(2))?;
        match (Num::of(&args[0])?, Num::of(&args[1])?) {
            (Num::Int(a), Num::Int(b)) => {
                if b == 0 {
                    return Err(VmError::msg("mod by zero"));
                }
                NativeOutcome::ok(Value::Int(a.rem_euclid(b)))
            }
            (a, b) => NativeOutcome::ok(Value::Float(a.f64().rem_euclid(b.f64()))),
        }
    });
    reg(gvm, "rem", |_, args| {
        arity("rem", &args, 2, Some(2))?;
        match (Num::of(&args[0])?, Num::of(&args[1])?) {
            (Num::Int(a), Num::Int(b)) => {
                if b == 0 {
                    return Err(VmError::msg("rem by zero"));
                }
                NativeOutcome::ok(Value::Int(a % b))
            }
            (a, b) => NativeOutcome::ok(Value::Float(a.f64() % b.f64())),
        }
    });
    reg(gvm, "abs", |_, args| {
        arity("abs", &args, 1, Some(1))?;
        match Num::of(&args[0])? {
            Num::Int(i) => NativeOutcome::ok(Value::Int(i.abs())),
            Num::Float(f) => NativeOutcome::ok(Value::Float(f.abs())),
        }
    });
    reg(gvm, "min", |_, args| {
        arity("min", &args, 1, None)?;
        let mut best = Num::of(&args[0])?;
        for a in &args[1..] {
            let b = Num::of(a)?;
            if b.f64() < best.f64() {
                best = b;
            }
        }
        NativeOutcome::ok(best.value())
    });
    reg(gvm, "max", |_, args| {
        arity("max", &args, 1, None)?;
        let mut best = Num::of(&args[0])?;
        for a in &args[1..] {
            let b = Num::of(a)?;
            if b.f64() > best.f64() {
                best = b;
            }
        }
        NativeOutcome::ok(best.value())
    });
    reg(gvm, "1+", |_, args| {
        arity("1+", &args, 1, Some(1))?;
        fold("1+", &[args[0].clone(), Value::Int(1)], i64::checked_add, |a, b| a + b)
            .map(NativeOutcome::Value)
    });
    reg(gvm, "1-", |_, args| {
        arity("1-", &args, 1, Some(1))?;
        fold("1-", &[args[0].clone(), Value::Int(1)], i64::checked_sub, |a, b| a - b)
            .map(NativeOutcome::Value)
    });
    reg(gvm, "floor", |_, args| {
        arity("floor", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::Int(num_arg("floor", &args, 0)?.floor() as i64))
    });
    reg(gvm, "ceiling", |_, args| {
        arity("ceiling", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::Int(num_arg("ceiling", &args, 0)?.ceil() as i64))
    });
    reg(gvm, "round", |_, args| {
        arity("round", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::Int(num_arg("round", &args, 0)?.round() as i64))
    });
    reg(gvm, "truncate", |_, args| {
        arity("truncate", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::Int(num_arg("truncate", &args, 0)?.trunc() as i64))
    });
    reg(gvm, "sqrt", |_, args| {
        arity("sqrt", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::Float(num_arg("sqrt", &args, 0)?.sqrt()))
    });
    reg(gvm, "expt", |_, args| {
        arity("expt", &args, 2, Some(2))?;
        match (Num::of(&args[0])?, Num::of(&args[1])?) {
            (Num::Int(a), Num::Int(b)) if (0..=62).contains(&b) => {
                match a.checked_pow(b as u32) {
                    Some(r) => NativeOutcome::ok(Value::Int(r)),
                    None => NativeOutcome::ok(Value::Float((a as f64).powi(b as i32))),
                }
            }
            (a, b) => NativeOutcome::ok(Value::Float(a.f64().powf(b.f64()))),
        }
    });
    reg(gvm, "exp", |_, args| {
        arity("exp", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::Float(num_arg("exp", &args, 0)?.exp()))
    });
    reg(gvm, "ln", |_, args| {
        arity("ln", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::Float(num_arg("ln", &args, 0)?.ln()))
    });
    reg_fast2(gvm, "=", Fast2::NumEq, |_, args| {
        arity("=", &args, 2, None)?;
        cmp_chain(&args, |a, b| a == b).map(NativeOutcome::Value)
    });
    reg_fast2(gvm, "/=", Fast2::NumNe, |_, args| {
        arity("/=", &args, 2, Some(2))?;
        cmp_chain(&args, |a, b| a != b).map(NativeOutcome::Value)
    });
    reg_fast2(gvm, "<", Fast2::Lt, |_, args| {
        arity("<", &args, 2, None)?;
        cmp_chain(&args, |a, b| a < b).map(NativeOutcome::Value)
    });
    reg_fast2(gvm, ">", Fast2::Gt, |_, args| {
        arity(">", &args, 2, None)?;
        cmp_chain(&args, |a, b| a > b).map(NativeOutcome::Value)
    });
    reg_fast2(gvm, "<=", Fast2::Le, |_, args| {
        arity("<=", &args, 2, None)?;
        cmp_chain(&args, |a, b| a <= b).map(NativeOutcome::Value)
    });
    reg_fast2(gvm, ">=", Fast2::Ge, |_, args| {
        arity(">=", &args, 2, None)?;
        cmp_chain(&args, |a, b| a >= b).map(NativeOutcome::Value)
    });
    reg(gvm, "random", |ctx, args| {
        arity("random", &args, 1, Some(1))?;
        match &args[0] {
            Value::Int(n) if *n > 0 => {
                NativeOutcome::ok(Value::Int((ctx.gvm.next_random() % *n as u64) as i64))
            }
            Value::Float(f) if *f > 0.0 => {
                let unit = (ctx.gvm.next_random() >> 11) as f64 / (1u64 << 53) as f64;
                NativeOutcome::ok(Value::Float(unit * f))
            }
            other => Err(VmError::type_error("positive number", other)),
        }
    });
}
