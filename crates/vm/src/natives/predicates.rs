//! Type and equality predicates.

use std::sync::Arc;

use gozer_lang::Value;

use crate::gvm::Gvm;
use crate::runtime::{FutureVal, NativeOutcome};

use super::{arity, reg, reg_raw, sym_arg};

fn b(v: bool) -> NativeOutcome {
    NativeOutcome::Value(Value::Bool(v))
}

/// Identity-flavoured equality (`eq`): atoms by value, aggregates by
/// pointer identity.
fn value_eq_identity(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::List(x), Value::List(y)) => Arc::ptr_eq(x, y),
        (Value::Vector(x), Value::Vector(y)) => Arc::ptr_eq(x, y),
        (Value::Map(x), Value::Map(y)) => Arc::ptr_eq(x, y),
        (Value::Str(x), Value::Str(y)) => Arc::ptr_eq(x, y) || x == y,
        _ => a == b,
    }
}

pub(super) fn install(gvm: &Arc<Gvm>) {
    reg(gvm, "not", |_, args| {
        arity("not", &args, 1, Some(1))?;
        Ok(b(!args[0].is_truthy()))
    });
    reg(gvm, "null", |_, args| {
        arity("null", &args, 1, Some(1))?;
        Ok(b(args[0].is_nil()))
    });
    reg(gvm, "eq", |_, args| {
        arity("eq", &args, 2, Some(2))?;
        Ok(b(value_eq_identity(&args[0], &args[1])))
    });
    reg(gvm, "eql", |_, args| {
        arity("eql", &args, 2, Some(2))?;
        Ok(b(value_eq_identity(&args[0], &args[1])))
    });
    reg(gvm, "equal", |_, args| {
        arity("equal", &args, 2, Some(2))?;
        Ok(b(args[0] == args[1]))
    });
    reg(gvm, "atom", |_, args| {
        arity("atom", &args, 1, Some(1))?;
        Ok(b(!matches!(args[0], Value::List(_))))
    });
    reg(gvm, "listp", |_, args| {
        arity("listp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Nil | Value::List(_))))
    });
    reg(gvm, "consp", |_, args| {
        arity("consp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::List(_))))
    });
    reg(gvm, "symbolp", |_, args| {
        arity("symbolp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Symbol(_))))
    });
    reg(gvm, "keywordp", |_, args| {
        arity("keywordp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Keyword(_))))
    });
    reg(gvm, "stringp", |_, args| {
        arity("stringp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Str(_))))
    });
    reg(gvm, "numberp", |_, args| {
        arity("numberp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Int(_) | Value::Float(_))))
    });
    reg(gvm, "integerp", |_, args| {
        arity("integerp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Int(_))))
    });
    reg(gvm, "floatp", |_, args| {
        arity("floatp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Float(_))))
    });
    reg(gvm, "functionp", |_, args| {
        arity("functionp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Func(_))))
    });
    reg(gvm, "vectorp", |_, args| {
        arity("vectorp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Vector(_))))
    });
    reg(gvm, "mapp", |_, args| {
        arity("mapp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Map(_))))
    });
    reg(gvm, "characterp", |_, args| {
        arity("characterp", &args, 1, Some(1))?;
        Ok(b(matches!(args[0], Value::Char(_))))
    });
    reg_raw(gvm, "futurep", |_, args| {
        arity("futurep", &args, 1, Some(1))?;
        Ok(b(args[0].as_opaque::<FutureVal>().is_some()))
    });
    reg(gvm, "zerop", |_, args| {
        arity("zerop", &args, 1, Some(1))?;
        Ok(b(args[0].as_f64() == Some(0.0)))
    });
    reg(gvm, "plusp", |_, args| {
        arity("plusp", &args, 1, Some(1))?;
        Ok(b(args[0].as_f64().is_some_and(|f| f > 0.0)))
    });
    reg(gvm, "minusp", |_, args| {
        arity("minusp", &args, 1, Some(1))?;
        Ok(b(args[0].as_f64().is_some_and(|f| f < 0.0)))
    });
    reg(gvm, "evenp", |_, args| {
        arity("evenp", &args, 1, Some(1))?;
        Ok(b(args[0].as_int().is_some_and(|i| i % 2 == 0)))
    });
    reg(gvm, "oddp", |_, args| {
        arity("oddp", &args, 1, Some(1))?;
        Ok(b(args[0].as_int().is_some_and(|i| i % 2 != 0)))
    });
    reg(gvm, "boundp", |ctx, args| {
        arity("boundp", &args, 1, Some(1))?;
        let s = sym_arg("boundp", &args, 0)?;
        Ok(b(ctx.gvm.get_global(s).is_some()))
    });
    reg(gvm, "type-of", |_, args| {
        arity("type-of", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::symbol(args[0].type_name()))
    });
}
