//! Output natives. Output goes to the VM's captured log (and optionally
//! stdout), which is how the workflow-lifetime traces of Figure 1 are
//! collected.

use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use gozer_lang::printer::{display_to_string, print_to_string};
use gozer_lang::Value;

use crate::error::VmError;
use crate::gvm::Gvm;
use crate::runtime::NativeOutcome;

use super::{arity, reg, str_arg};

pub(super) fn install(gvm: &Arc<Gvm>) {
    reg(gvm, "log", |ctx, args| {
        let line = args
            .iter()
            .map(display_to_string)
            .collect::<Vec<_>>()
            .join(" ");
        ctx.gvm.log_line(line);
        NativeOutcome::ok(Value::Nil)
    });
    reg(gvm, "print", |ctx, args| {
        arity("print", &args, 1, Some(1))?;
        ctx.gvm.log_line(print_to_string(&args[0]));
        NativeOutcome::ok(args[0].clone())
    });
    reg(gvm, "princ", |ctx, args| {
        arity("princ", &args, 1, Some(1))?;
        ctx.gvm.log_line(display_to_string(&args[0]));
        NativeOutcome::ok(args[0].clone())
    });
    reg(gvm, "terpri", |ctx, args| {
        arity("terpri", &args, 0, Some(0))?;
        ctx.gvm.log_line(String::new());
        NativeOutcome::ok(Value::Nil)
    });
    reg(gvm, "format", |ctx, args| {
        arity("format", &args, 2, None)?;
        let fmt = str_arg("format", &args, 1)?;
        let rendered = super::strings::format_directives(fmt, &args[2..])?;
        match &args[0] {
            // (format nil ...) returns the string.
            Value::Nil => NativeOutcome::ok(Value::from(rendered)),
            // (format t ...) logs it.
            Value::Bool(true) => {
                ctx.gvm.log_line(rendered);
                NativeOutcome::ok(Value::Nil)
            }
            other => Err(VmError::type_error("nil or t (format destination)", other)),
        }
    });
    reg(gvm, "%now-millis", |_, args| {
        arity("%now-millis", &args, 0, Some(0))?;
        let ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as i64)
            .unwrap_or(0);
        NativeOutcome::ok(Value::Int(ms))
    });
    reg(gvm, "sleep-millis", |_, args| {
        arity("sleep-millis", &args, 1, Some(1))?;
        let ms = args[0]
            .as_f64()
            .ok_or_else(|| VmError::type_error("number", &args[0]))?;
        if ms > 0.0 {
            std::thread::sleep(std::time::Duration::from_micros((ms * 1000.0) as u64));
        }
        NativeOutcome::ok(Value::Nil)
    });
}
