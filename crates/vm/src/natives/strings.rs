//! String natives, including the `format` subset used throughout the
//! paper's listings.

use std::sync::Arc;

use gozer_lang::printer::{display_to_string, print_to_string};
use gozer_lang::{Symbol, Value};

use crate::error::{VmError, VmResult};
use crate::gvm::Gvm;
use crate::runtime::NativeOutcome;

use super::{arity, int_arg, reg, str_arg};

/// Render `fmt` with CL-style directives against `args`.
///
/// Supported: `~a` (display), `~s` (readable), `~d` (integer), `~f`
/// (float), `~%` (newline), `~~` (tilde). This covers every `format` use
/// in the paper and the workflow library.
pub fn format_directives(fmt: &str, args: &[Value]) -> VmResult<String> {
    let mut out = String::with_capacity(fmt.len() + 16);
    let mut chars = fmt.chars().peekable();
    let mut next = 0usize;
    let take = |next: &mut usize| -> VmResult<Value> {
        let v = args
            .get(*next)
            .cloned()
            .ok_or_else(|| VmError::msg("format: not enough arguments"))?;
        *next += 1;
        Ok(v)
    };
    while let Some(c) = chars.next() {
        if c != '~' {
            out.push(c);
            continue;
        }
        match chars.next() {
            None => return Err(VmError::msg("format: dangling ~")),
            Some('a') | Some('A') => out.push_str(&display_to_string(&take(&mut next)?)),
            Some('s') | Some('S') => out.push_str(&print_to_string(&take(&mut next)?)),
            Some('d') | Some('D') => {
                let v = take(&mut next)?;
                match v.as_int() {
                    Some(i) => out.push_str(&i.to_string()),
                    None => out.push_str(&display_to_string(&v)),
                }
            }
            Some('f') | Some('F') => {
                let v = take(&mut next)?;
                match v.as_f64() {
                    Some(f) => out.push_str(&format!("{f}")),
                    None => return Err(VmError::type_error("number", &v)),
                }
            }
            Some('%') => out.push('\n'),
            Some('~') => out.push('~'),
            Some(other) => {
                return Err(VmError::msg(format!(
                    "format: unsupported directive ~{other}"
                )))
            }
        }
    }
    Ok(out)
}

pub(super) fn install(gvm: &Arc<Gvm>) {
    reg(gvm, "concat", |_, args| {
        let mut out = String::new();
        for a in &args {
            out.push_str(&display_to_string(a));
        }
        NativeOutcome::ok(Value::from(out))
    });
    reg(gvm, "string", |_, args| {
        arity("string", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::from(display_to_string(&args[0])))
    });
    reg(gvm, "prin1-to-string", |_, args| {
        arity("prin1-to-string", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::from(print_to_string(&args[0])))
    });
    reg(gvm, "string-upcase", |_, args| {
        arity("string-upcase", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::from(str_arg("string-upcase", &args, 0)?.to_uppercase()))
    });
    reg(gvm, "string-downcase", |_, args| {
        arity("string-downcase", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::from(
            str_arg("string-downcase", &args, 0)?.to_lowercase(),
        ))
    });
    reg(gvm, "string-trim", |_, args| {
        arity("string-trim", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::from(str_arg("string-trim", &args, 0)?.trim()))
    });
    reg(gvm, "string-split", |_, args| {
        arity("string-split", &args, 2, Some(2))?;
        let s = str_arg("string-split", &args, 0)?;
        let sep = str_arg("string-split", &args, 1)?;
        if sep.is_empty() {
            return Err(VmError::msg("string-split: empty separator"));
        }
        NativeOutcome::ok(Value::list(
            s.split(sep).map(Value::from).collect::<Vec<_>>(),
        ))
    });
    reg(gvm, "string-join", |_, args| {
        arity("string-join", &args, 2, Some(2))?;
        let items = args[0]
            .as_seq()
            .ok_or_else(|| VmError::type_error("sequence", &args[0]))?;
        let sep = str_arg("string-join", &args, 1)?;
        let joined = items
            .iter()
            .map(display_to_string)
            .collect::<Vec<_>>()
            .join(sep);
        NativeOutcome::ok(Value::from(joined))
    });
    reg(gvm, "string-replace", |_, args| {
        arity("string-replace", &args, 3, Some(3))?;
        let s = str_arg("string-replace", &args, 0)?;
        let from = str_arg("string-replace", &args, 1)?;
        let to = str_arg("string-replace", &args, 2)?;
        NativeOutcome::ok(Value::from(s.replace(from, to)))
    });
    reg(gvm, "string-contains?", |_, args| {
        arity("string-contains?", &args, 2, Some(2))?;
        NativeOutcome::ok(Value::Bool(
            str_arg("string-contains?", &args, 0)?
                .contains(str_arg("string-contains?", &args, 1)?),
        ))
    });
    reg(gvm, "string-starts-with?", |_, args| {
        arity("string-starts-with?", &args, 2, Some(2))?;
        NativeOutcome::ok(Value::Bool(
            str_arg("string-starts-with?", &args, 0)?
                .starts_with(str_arg("string-starts-with?", &args, 1)?),
        ))
    });
    reg(gvm, "string-ends-with?", |_, args| {
        arity("string-ends-with?", &args, 2, Some(2))?;
        NativeOutcome::ok(Value::Bool(
            str_arg("string-ends-with?", &args, 0)?
                .ends_with(str_arg("string-ends-with?", &args, 1)?),
        ))
    });
    reg(gvm, "string=", |_, args| {
        arity("string=", &args, 2, Some(2))?;
        NativeOutcome::ok(Value::Bool(
            str_arg("string=", &args, 0)? == str_arg("string=", &args, 1)?,
        ))
    });
    reg(gvm, "string<", |_, args| {
        arity("string<", &args, 2, Some(2))?;
        NativeOutcome::ok(Value::Bool(
            str_arg("string<", &args, 0)? < str_arg("string<", &args, 1)?,
        ))
    });
    reg(gvm, "parse-integer", |_, args| {
        arity("parse-integer", &args, 1, Some(1))?;
        let s = str_arg("parse-integer", &args, 0)?.trim();
        s.parse::<i64>()
            .map(Value::Int)
            .map(NativeOutcome::Value)
            .map_err(|_| VmError::msg(format!("parse-integer: cannot parse {s:?}")))
    });
    reg(gvm, "parse-float", |_, args| {
        arity("parse-float", &args, 1, Some(1))?;
        let s = str_arg("parse-float", &args, 0)?.trim();
        s.parse::<f64>()
            .map(Value::Float)
            .map(NativeOutcome::Value)
            .map_err(|_| VmError::msg(format!("parse-float: cannot parse {s:?}")))
    });
    reg(gvm, "symbol-name", |_, args| {
        arity("symbol-name", &args, 1, Some(1))?;
        let s = match &args[0] {
            Value::Symbol(s) | Value::Keyword(s) => s.name(),
            other => return Err(VmError::type_error("symbol", other)),
        };
        NativeOutcome::ok(Value::str(s))
    });
    reg(gvm, "string->symbol", |_, args| {
        arity("string->symbol", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::Symbol(Symbol::intern(str_arg(
            "string->symbol",
            &args,
            0,
        )?)))
    });
    reg(gvm, "string->keyword", |_, args| {
        arity("string->keyword", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::Keyword(Symbol::intern(str_arg(
            "string->keyword",
            &args,
            0,
        )?)))
    });
    reg(gvm, "char->string", |_, args| {
        arity("char->string", &args, 1, Some(1))?;
        match &args[0] {
            Value::Char(c) => NativeOutcome::ok(Value::from(c.to_string())),
            other => Err(VmError::type_error("character", other)),
        }
    });
    reg(gvm, "string-ref", |_, args| {
        arity("string-ref", &args, 2, Some(2))?;
        let s = str_arg("string-ref", &args, 0)?;
        let i = int_arg("string-ref", &args, 1)?;
        usize::try_from(i)
            .ok()
            .and_then(|i| s.chars().nth(i))
            .map(Value::Char)
            .map(NativeOutcome::Value)
            .ok_or_else(|| VmError::msg(format!("string-ref: index {i} out of bounds")))
    });
}
