//! The Java-interop method protocol: `(. receiver (method args...))`.
//!
//! BlueBox messages and other mutable platform objects are [`ObjectVal`]s
//! — class-tagged field bags with interior mutability, mirroring the Java
//! objects the original system manipulates (Listing 2's
//! `(. msg (set "FilterParams" FilterParams))`). Strings, maps and
//! sequences answer a read-only subset of the familiar `java.lang`
//! methods.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use gozer_lang::printer::display_to_string;
use gozer_lang::{AssocMap, Opaque, Value};
use parking_lot::Mutex;

use crate::error::{VmError, VmResult};
use crate::gvm::Gvm;
use crate::runtime::NativeOutcome;

use super::{arity, reg, str_arg};

/// A mutable, class-tagged field bag — the stand-in for a Java object.
/// Mutation is visible through shared references *within one fiber*;
/// serialization snapshots the fields (cross-fiber sharing never happens
/// because fibers are cloned, §3.4).
pub struct ObjectVal {
    /// Class tag, e.g. `"message"`.
    pub class: String,
    /// Named fields.
    pub fields: Mutex<AssocMap>,
}

impl ObjectVal {
    /// Create an object value.
    pub fn new(class: &str, fields: AssocMap) -> Value {
        Value::Opaque(Arc::new(ObjectVal {
            class: class.to_string(),
            fields: Mutex::new(fields),
        }))
    }

    /// Read a field by string name.
    pub fn get_field(&self, name: &str) -> Option<Value> {
        self.fields.lock().get(&Value::str(name)).cloned()
    }

    /// Write a field by string name.
    pub fn set_field(&self, name: &str, v: Value) {
        self.fields.lock().insert(Value::str(name), v);
    }

    /// Snapshot the fields.
    pub fn snapshot(&self) -> AssocMap {
        self.fields.lock().clone()
    }
}

impl fmt::Debug for ObjectVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Object({}, {} fields)", self.class, self.fields.lock().len())
    }
}

impl Opaque for ObjectVal {
    fn opaque_type(&self) -> &'static str {
        "object"
    }
    fn opaque_print(&self) -> String {
        format!("object {}", self.class)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

pub(super) fn install(gvm: &Arc<Gvm>) {
    reg(gvm, "%method", |_, args| {
        arity("%method", &args, 2, None)?;
        let receiver = &args[0];
        let method = str_arg("%method", &args, 1)?;
        let margs = &args[2..];
        dispatch(receiver, method, margs).map(NativeOutcome::Value)
    });
    reg(gvm, "create-object", |_, args| {
        arity("create-object", &args, 1, None)?;
        let class = str_arg("create-object", &args, 0)?;
        let rest = &args[1..];
        if rest.len() % 2 != 0 {
            return Err(VmError::msg("create-object: odd number of field forms"));
        }
        let mut fields = AssocMap::new();
        let mut i = 0;
        while i < rest.len() {
            fields.insert(rest[i].clone(), rest[i + 1].clone());
            i += 2;
        }
        NativeOutcome::ok(ObjectVal::new(class, fields))
    });
    reg(gvm, "object-class", |_, args| {
        arity("object-class", &args, 1, Some(1))?;
        match args[0].as_opaque::<ObjectVal>() {
            Some(o) => NativeOutcome::ok(Value::str(&o.class)),
            None => Err(VmError::type_error("object", &args[0])),
        }
    });
    reg(gvm, "object-fields", |_, args| {
        arity("object-fields", &args, 1, Some(1))?;
        match args[0].as_opaque::<ObjectVal>() {
            Some(o) => NativeOutcome::ok(Value::Map(Arc::new(o.snapshot()))),
            None => Err(VmError::type_error("object", &args[0])),
        }
    });
}

fn expect_args(method: &str, margs: &[Value], n: usize) -> VmResult<()> {
    if margs.len() != n {
        return Err(VmError::msg(format!(
            "method {method}: expected {n} argument(s), got {}",
            margs.len()
        )));
    }
    Ok(())
}

fn dispatch(receiver: &Value, method: &str, margs: &[Value]) -> VmResult<Value> {
    // Universal methods.
    if method == "toString" {
        expect_args(method, margs, 0)?;
        return Ok(Value::from(display_to_string(receiver)));
    }
    if let Some(obj) = receiver.as_opaque::<ObjectVal>() {
        return object_method(obj, method, margs);
    }
    match receiver {
        Value::Str(s) => string_method(s, method, margs),
        Value::Map(m) => map_method(m, method, margs),
        Value::Nil => seq_method(&[], method, margs),
        Value::List(items) | Value::Vector(items) => seq_method(items, method, margs),
        other => Err(VmError::msg(format!(
            "no method {method} on {}",
            other.type_name()
        ))),
    }
}

fn object_method(obj: &ObjectVal, method: &str, margs: &[Value]) -> VmResult<Value> {
    match method {
        "get" => {
            expect_args(method, margs, 1)?;
            Ok(obj
                .fields
                .lock()
                .get(&margs[0])
                .cloned()
                .unwrap_or(Value::Nil))
        }
        "set" | "put" => {
            expect_args(method, margs, 2)?;
            obj.fields.lock().insert(margs[0].clone(), margs[1].clone());
            Ok(Value::Nil)
        }
        "has" | "containsKey" => {
            expect_args(method, margs, 1)?;
            Ok(Value::Bool(obj.fields.lock().get(&margs[0]).is_some()))
        }
        "remove" => {
            expect_args(method, margs, 1)?;
            Ok(obj.fields.lock().remove(&margs[0]).unwrap_or(Value::Nil))
        }
        "keys" | "keySet" => {
            expect_args(method, margs, 0)?;
            Ok(Value::list(
                obj.fields.lock().iter().map(|(k, _)| k.clone()).collect(),
            ))
        }
        "size" => {
            expect_args(method, margs, 0)?;
            Ok(Value::Int(obj.fields.lock().len() as i64))
        }
        "className" => {
            expect_args(method, margs, 0)?;
            Ok(Value::str(&obj.class))
        }
        _ => Err(VmError::msg(format!(
            "no method {method} on object {}",
            obj.class
        ))),
    }
}

fn string_method(s: &str, method: &str, margs: &[Value]) -> VmResult<Value> {
    let str_marg = |i: usize| -> VmResult<&str> {
        margs[i]
            .as_str()
            .ok_or_else(|| VmError::type_error("string", &margs[i]))
    };
    match method {
        "endsWith" => {
            expect_args(method, margs, 1)?;
            Ok(Value::Bool(s.ends_with(str_marg(0)?)))
        }
        "startsWith" => {
            expect_args(method, margs, 1)?;
            Ok(Value::Bool(s.starts_with(str_marg(0)?)))
        }
        "contains" => {
            expect_args(method, margs, 1)?;
            Ok(Value::Bool(s.contains(str_marg(0)?)))
        }
        "length" => {
            expect_args(method, margs, 0)?;
            Ok(Value::Int(s.chars().count() as i64))
        }
        "isEmpty" => {
            expect_args(method, margs, 0)?;
            Ok(Value::Bool(s.is_empty()))
        }
        "toUpperCase" => {
            expect_args(method, margs, 0)?;
            Ok(Value::from(s.to_uppercase()))
        }
        "toLowerCase" => {
            expect_args(method, margs, 0)?;
            Ok(Value::from(s.to_lowercase()))
        }
        "trim" => {
            expect_args(method, margs, 0)?;
            Ok(Value::from(s.trim()))
        }
        "substring" => {
            let a = margs
                .first()
                .and_then(Value::as_int)
                .ok_or_else(|| VmError::msg("substring: integer start required"))? as usize;
            let chars: Vec<char> = s.chars().collect();
            let b = match margs.get(1) {
                Some(v) => v
                    .as_int()
                    .ok_or_else(|| VmError::type_error("integer", v))? as usize,
                None => chars.len(),
            };
            if a > b || b > chars.len() {
                return Err(VmError::msg(format!(
                    "substring: bounds {a}..{b} out of range"
                )));
            }
            Ok(Value::from(chars[a..b].iter().collect::<String>()))
        }
        "indexOf" => {
            expect_args(method, margs, 1)?;
            let needle = str_marg(0)?;
            Ok(match s.find(needle) {
                Some(byte_idx) => Value::Int(s[..byte_idx].chars().count() as i64),
                None => Value::Int(-1),
            })
        }
        "split" => {
            expect_args(method, margs, 1)?;
            let sep = str_marg(0)?;
            Ok(Value::list(s.split(sep).map(Value::from).collect()))
        }
        "replace" => {
            expect_args(method, margs, 2)?;
            Ok(Value::from(s.replace(str_marg(0)?, str_marg(1)?)))
        }
        "charAt" => {
            expect_args(method, margs, 1)?;
            let i = margs[0]
                .as_int()
                .ok_or_else(|| VmError::type_error("integer", &margs[0]))?;
            usize::try_from(i)
                .ok()
                .and_then(|i| s.chars().nth(i))
                .map(Value::Char)
                .ok_or_else(|| VmError::msg(format!("charAt: index {i} out of bounds")))
        }
        _ => Err(VmError::msg(format!("no method {method} on string"))),
    }
}

fn map_method(m: &AssocMap, method: &str, margs: &[Value]) -> VmResult<Value> {
    match method {
        "get" => {
            expect_args(method, margs, 1)?;
            Ok(m.get(&margs[0]).cloned().unwrap_or(Value::Nil))
        }
        "containsKey" => {
            expect_args(method, margs, 1)?;
            Ok(Value::Bool(m.get(&margs[0]).is_some()))
        }
        "keySet" => {
            expect_args(method, margs, 0)?;
            Ok(Value::list(m.iter().map(|(k, _)| k.clone()).collect()))
        }
        "size" => {
            expect_args(method, margs, 0)?;
            Ok(Value::Int(m.len() as i64))
        }
        "isEmpty" => {
            expect_args(method, margs, 0)?;
            Ok(Value::Bool(m.is_empty()))
        }
        _ => Err(VmError::msg(format!("no method {method} on map"))),
    }
}

fn seq_method(items: &[Value], method: &str, margs: &[Value]) -> VmResult<Value> {
    match method {
        "get" => {
            expect_args(method, margs, 1)?;
            let i = margs[0]
                .as_int()
                .ok_or_else(|| VmError::type_error("integer", &margs[0]))?;
            usize::try_from(i)
                .ok()
                .and_then(|i| items.get(i).cloned())
                .ok_or_else(|| VmError::msg(format!("get: index {i} out of bounds")))
        }
        "size" => {
            expect_args(method, margs, 0)?;
            Ok(Value::Int(items.len() as i64))
        }
        "contains" => {
            expect_args(method, margs, 1)?;
            Ok(Value::Bool(items.contains(&margs[0])))
        }
        "indexOf" => {
            expect_args(method, margs, 1)?;
            Ok(Value::Int(
                items
                    .iter()
                    .position(|v| v == &margs[0])
                    .map(|i| i as i64)
                    .unwrap_or(-1),
            ))
        }
        "isEmpty" => {
            expect_args(method, margs, 0)?;
            Ok(Value::Bool(items.is_empty()))
        }
        _ => Err(VmError::msg(format!("no method {method} on sequence"))),
    }
}
