//! Sequence natives: lists, vectors, maps, and the higher-order
//! functions (`mapcar`, `reduce`, `sort`, ...) that call back into Gozer
//! code through [`NativeCtx::call`].

use std::sync::Arc;

use gozer_lang::{AssocMap, Value};

use crate::error::{VmError, VmResult};
use crate::gvm::{Gvm, NativeCtx};
use crate::runtime::NativeOutcome;

use super::{arity, int_arg, reg, seq_arg};

/// Coerce any sequence-ish value to a vector of items.
fn to_items(name: &str, v: &Value) -> VmResult<Vec<Value>> {
    match v {
        Value::Nil => Ok(vec![]),
        Value::List(items) | Value::Vector(items) => Ok(items.to_vec()),
        Value::Str(s) => Ok(s.chars().map(Value::Char).collect()),
        Value::Map(m) => Ok(m
            .iter()
            .map(|(k, v)| Value::list(vec![k.clone(), v.clone()]))
            .collect()),
        other => Err(VmError::type_error(
            &format!("sequence ({name})"),
            other,
        )),
    }
}

fn call_pred(ctx: &mut NativeCtx<'_>, f: &Value, item: &Value) -> VmResult<bool> {
    Ok(ctx.call(f, vec![item.clone()])?.is_truthy())
}

pub(super) fn install(gvm: &Arc<Gvm>) {
    reg(gvm, "list", |_, args| NativeOutcome::ok(Value::list(args)));
    reg(gvm, "vector", |_, args| {
        NativeOutcome::ok(Value::vector(args))
    });
    reg(gvm, "cons", |_, args| {
        arity("cons", &args, 2, Some(2))?;
        let mut out = Vec::with_capacity(1 + args[1].as_seq().map_or(0, <[Value]>::len));
        out.push(args[0].clone());
        match args[1].as_seq() {
            Some(items) => out.extend_from_slice(items),
            // Improper lists are not supported; consing onto a non-list
            // makes a two-element list.
            None => out.push(args[1].clone()),
        }
        NativeOutcome::ok(Value::list(out))
    });
    reg(gvm, "first", |_, args| {
        arity("first", &args, 1, Some(1))?;
        NativeOutcome::ok(seq_arg("first", &args, 0)?.first().cloned().unwrap_or(Value::Nil))
    });
    reg(gvm, "second", |_, args| {
        arity("second", &args, 1, Some(1))?;
        NativeOutcome::ok(seq_arg("second", &args, 0)?.get(1).cloned().unwrap_or(Value::Nil))
    });
    reg(gvm, "third", |_, args| {
        arity("third", &args, 1, Some(1))?;
        NativeOutcome::ok(seq_arg("third", &args, 0)?.get(2).cloned().unwrap_or(Value::Nil))
    });
    reg(gvm, "rest", |_, args| {
        arity("rest", &args, 1, Some(1))?;
        let items = seq_arg("rest", &args, 0)?;
        NativeOutcome::ok(if items.len() <= 1 {
            Value::Nil
        } else {
            Value::list(items[1..].to_vec())
        })
    });
    // CL-compatible aliases.
    for (alias, target) in [("car", "first"), ("cdr", "rest")] {
        let f = gvm.function(target).expect("alias target");
        gvm.set_global(gozer_lang::Symbol::intern(alias), f);
    }
    reg(gvm, "nth", |_, args| {
        arity("nth", &args, 2, Some(2))?;
        let n = int_arg("nth", &args, 0)?;
        let items = seq_arg("nth", &args, 1)?;
        NativeOutcome::ok(
            usize::try_from(n)
                .ok()
                .and_then(|i| items.get(i))
                .cloned()
                .unwrap_or(Value::Nil),
        )
    });
    reg(gvm, "nthcdr", |_, args| {
        arity("nthcdr", &args, 2, Some(2))?;
        let n = int_arg("nthcdr", &args, 0)?.max(0) as usize;
        let items = seq_arg("nthcdr", &args, 1)?;
        NativeOutcome::ok(if n >= items.len() {
            Value::Nil
        } else {
            Value::list(items[n..].to_vec())
        })
    });
    reg(gvm, "elt", |_, args| {
        arity("elt", &args, 2, Some(2))?;
        let items = to_items("elt", &args[0])?;
        let i = int_arg("elt", &args, 1)?;
        usize::try_from(i)
            .ok()
            .and_then(|i| items.get(i).cloned())
            .map(NativeOutcome::Value)
            .ok_or_else(|| VmError::msg(format!("elt: index {i} out of bounds")))
    });
    reg(gvm, "last", |_, args| {
        arity("last", &args, 1, Some(1))?;
        NativeOutcome::ok(seq_arg("last", &args, 0)?.last().cloned().unwrap_or(Value::Nil))
    });
    reg(gvm, "butlast", |_, args| {
        arity("butlast", &args, 1, Some(1))?;
        let items = seq_arg("butlast", &args, 0)?;
        NativeOutcome::ok(if items.len() <= 1 {
            Value::Nil
        } else {
            Value::list(items[..items.len() - 1].to_vec())
        })
    });
    reg(gvm, "length", |_, args| {
        arity("length", &args, 1, Some(1))?;
        let n = match &args[0] {
            Value::Nil => 0,
            Value::List(i) | Value::Vector(i) => i.len(),
            Value::Str(s) => s.chars().count(),
            Value::Map(m) => m.len(),
            other => return Err(VmError::type_error("sequence", other)),
        };
        NativeOutcome::ok(Value::Int(n as i64))
    });
    reg(gvm, "append", |_, args| {
        let mut out = Vec::new();
        for a in &args {
            out.extend(to_items("append", a)?);
        }
        NativeOutcome::ok(Value::list(out))
    });
    // %append1 appends a single element. When the receiving binding holds
    // the only reference, the underlying vector is reused, making the
    // `append!`/`collect` accumulation pattern amortized O(1).
    reg(gvm, "%append1", |_, mut args| {
        arity("%append1", &args, 2, Some(2))?;
        let item = args.pop().expect("two args");
        let list = args.pop().expect("two args");
        match list {
            Value::Nil => NativeOutcome::ok(Value::list(vec![item])),
            Value::List(mut items) => {
                match Arc::get_mut(&mut items) {
                    Some(v) => v.push(item),
                    None => {
                        let mut v = items.to_vec();
                        v.push(item);
                        items = Arc::new(v);
                    }
                }
                NativeOutcome::ok(Value::List(items))
            }
            other => Err(VmError::type_error("list", &other)),
        }
    });
    reg(gvm, "reverse", |_, args| {
        arity("reverse", &args, 1, Some(1))?;
        let mut items = to_items("reverse", &args[0])?;
        items.reverse();
        NativeOutcome::ok(Value::list(items))
    });
    reg(gvm, "member", |_, args| {
        arity("member", &args, 2, Some(2))?;
        let items = seq_arg("member", &args, 1)?;
        NativeOutcome::ok(
            items
                .iter()
                .position(|v| v == &args[0])
                .map(|i| Value::list(items[i..].to_vec()))
                .unwrap_or(Value::Nil),
        )
    });
    reg(gvm, "assoc", |_, args| {
        arity("assoc", &args, 2, Some(2))?;
        let items = seq_arg("assoc", &args, 1)?;
        for pair in items {
            if let Some(p) = pair.as_seq() {
                if p.first() == Some(&args[0]) {
                    return NativeOutcome::ok(pair.clone());
                }
            }
        }
        NativeOutcome::ok(Value::Nil)
    });
    reg(gvm, "getf", |_, args| {
        arity("getf", &args, 2, Some(3))?;
        let items = seq_arg("getf", &args, 0)?;
        let mut i = 0;
        while i + 1 < items.len() {
            if items[i] == args[1] {
                return NativeOutcome::ok(items[i + 1].clone());
            }
            i += 2;
        }
        NativeOutcome::ok(args.get(2).cloned().unwrap_or(Value::Nil))
    });
    reg(gvm, "subseq", |_, args| {
        arity("subseq", &args, 2, Some(3))?;
        let items = to_items("subseq", &args[0])?;
        let a = int_arg("subseq", &args, 1)?.max(0) as usize;
        let b = match args.get(2) {
            Some(v) => v
                .as_int()
                .ok_or_else(|| VmError::type_error("integer", v))?
                .max(0) as usize,
            None => items.len(),
        };
        if a > items.len() || b > items.len() || a > b {
            return Err(VmError::msg(format!(
                "subseq: bounds {a}..{b} out of range (len {})",
                items.len()
            )));
        }
        // Strings slice back to strings.
        if let Value::Str(s) = &args[0] {
            let sub: String = s.chars().skip(a).take(b - a).collect();
            return NativeOutcome::ok(Value::from(sub));
        }
        NativeOutcome::ok(Value::list(items[a..b].to_vec()))
    });
    reg(gvm, "position", |_, args| {
        arity("position", &args, 2, Some(2))?;
        let items = seq_arg("position", &args, 1)?;
        NativeOutcome::ok(
            items
                .iter()
                .position(|v| v == &args[0])
                .map(|i| Value::Int(i as i64))
                .unwrap_or(Value::Nil),
        )
    });
    reg(gvm, "position-if", |ctx, args| {
        arity("position-if", &args, 2, Some(2))?;
        let items = to_items("position-if", &args[1])?;
        for (i, item) in items.iter().enumerate() {
            if call_pred(ctx, &args[0], item)? {
                return NativeOutcome::ok(Value::Int(i as i64));
            }
        }
        NativeOutcome::ok(Value::Nil)
    });
    reg(gvm, "find", |_, args| {
        arity("find", &args, 2, Some(2))?;
        let items = seq_arg("find", &args, 1)?;
        NativeOutcome::ok(items.iter().find(|v| *v == &args[0]).cloned().unwrap_or(Value::Nil))
    });
    reg(gvm, "find-if", |ctx, args| {
        arity("find-if", &args, 2, Some(2))?;
        let items = to_items("find-if", &args[1])?;
        for item in &items {
            if call_pred(ctx, &args[0], item)? {
                return NativeOutcome::ok(item.clone());
            }
        }
        NativeOutcome::ok(Value::Nil)
    });
    reg(gvm, "count", |_, args| {
        arity("count", &args, 2, Some(2))?;
        let items = seq_arg("count", &args, 1)?;
        let n = items.iter().filter(|v| *v == &args[0]).count();
        NativeOutcome::ok(Value::Int(n as i64))
    });
    reg(gvm, "count-if", |ctx, args| {
        arity("count-if", &args, 2, Some(2))?;
        let items = to_items("count-if", &args[1])?;
        let mut n = 0;
        for item in &items {
            if call_pred(ctx, &args[0], item)? {
                n += 1;
            }
        }
        NativeOutcome::ok(Value::Int(n))
    });
    reg(gvm, "remove", |_, args| {
        arity("remove", &args, 2, Some(2))?;
        let items = to_items("remove", &args[1])?;
        NativeOutcome::ok(Value::list(
            items.into_iter().filter(|v| v != &args[0]).collect(),
        ))
    });
    reg(gvm, "remove-if", |ctx, args| {
        arity("remove-if", &args, 2, Some(2))?;
        let items = to_items("remove-if", &args[1])?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            if !call_pred(ctx, &args[0], &item)? {
                out.push(item);
            }
        }
        NativeOutcome::ok(Value::list(out))
    });
    reg(gvm, "remove-if-not", |ctx, args| {
        arity("remove-if-not", &args, 2, Some(2))?;
        let items = to_items("remove-if-not", &args[1])?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            if call_pred(ctx, &args[0], &item)? {
                out.push(item);
            }
        }
        NativeOutcome::ok(Value::list(out))
    });
    // filter = remove-if-not (the modern name).
    let filter = gvm.function("remove-if-not").expect("remove-if-not");
    gvm.set_global(gozer_lang::Symbol::intern("filter"), filter);

    reg(gvm, "mapcar", |ctx, args| {
        arity("mapcar", &args, 2, None)?;
        let lists: Vec<Vec<Value>> = args[1..]
            .iter()
            .map(|l| to_items("mapcar", l))
            .collect::<VmResult<_>>()?;
        let n = lists.iter().map(Vec::len).min().unwrap_or(0);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let call_args: Vec<Value> = lists.iter().map(|l| l[i].clone()).collect();
            out.push(ctx.call(&args[0], call_args)?);
        }
        NativeOutcome::ok(Value::list(out))
    });
    reg(gvm, "mapc", |ctx, args| {
        arity("mapc", &args, 2, Some(2))?;
        let items = to_items("mapc", &args[1])?;
        for item in &items {
            ctx.call(&args[0], vec![item.clone()])?;
        }
        NativeOutcome::ok(args[1].clone())
    });
    reg(gvm, "reduce", |ctx, args| {
        arity("reduce", &args, 2, Some(3))?;
        let items = to_items("reduce", &args[1])?;
        let mut iter = items.into_iter();
        let mut acc = match args.get(2) {
            Some(init) => init.clone(),
            None => match iter.next() {
                Some(v) => v,
                None => return ctx.call(&args[0], vec![]).map(NativeOutcome::Value),
            },
        };
        for item in iter {
            acc = ctx.call(&args[0], vec![acc, item])?;
        }
        NativeOutcome::ok(acc)
    });
    reg(gvm, "every", |ctx, args| {
        arity("every", &args, 2, Some(2))?;
        let items = to_items("every", &args[1])?;
        for item in &items {
            if !call_pred(ctx, &args[0], item)? {
                return NativeOutcome::ok(Value::Nil);
            }
        }
        NativeOutcome::ok(Value::Bool(true))
    });
    reg(gvm, "some", |ctx, args| {
        arity("some", &args, 2, Some(2))?;
        let items = to_items("some", &args[1])?;
        for item in &items {
            let v = ctx.call(&args[0], vec![item.clone()])?;
            if v.is_truthy() {
                return NativeOutcome::ok(v);
            }
        }
        NativeOutcome::ok(Value::Nil)
    });
    reg(gvm, "sort", |ctx, args| {
        arity("sort", &args, 1, Some(2))?;
        let mut items = to_items("sort", &args[0])?;
        match args.get(1) {
            None => {
                // Default ordering: numbers then strings, by natural order.
                let mut err = None;
                items.sort_by(|a, b| match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                    _ => match (a.as_str(), b.as_str()) {
                        (Some(x), Some(y)) => x.cmp(y),
                        _ => {
                            err.get_or_insert_with(|| {
                                VmError::msg("sort: default ordering needs numbers or strings")
                            });
                            std::cmp::Ordering::Equal
                        }
                    },
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
            Some(pred) => {
                // Merge sort so comparator errors propagate.
                items = merge_sort(ctx, pred, items)?;
            }
        }
        NativeOutcome::ok(Value::list(items))
    });
    reg(gvm, "range", |_, args| {
        arity("range", &args, 1, Some(3))?;
        let (a, b, step) = match args.len() {
            1 => (0, int_arg("range", &args, 0)?, 1),
            2 => (int_arg("range", &args, 0)?, int_arg("range", &args, 1)?, 1),
            _ => (
                int_arg("range", &args, 0)?,
                int_arg("range", &args, 1)?,
                int_arg("range", &args, 2)?,
            ),
        };
        if step == 0 {
            return Err(VmError::msg("range: step must be nonzero"));
        }
        let mut out = Vec::new();
        let mut i = a;
        while (step > 0 && i < b) || (step < 0 && i > b) {
            out.push(Value::Int(i));
            i += step;
        }
        NativeOutcome::ok(Value::list(out))
    });
    reg(gvm, "seq->list", |_, args| {
        arity("seq->list", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::list(to_items("seq->list", &args[0])?))
    });
    reg(gvm, "list->vector", |_, args| {
        arity("list->vector", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::vector(to_items("list->vector", &args[0])?))
    });
    reg(gvm, "vector->list", |_, args| {
        arity("vector->list", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::list(to_items("vector->list", &args[0])?))
    });
    reg(gvm, "flatten", |_, args| {
        arity("flatten", &args, 1, Some(1))?;
        fn walk(v: &Value, out: &mut Vec<Value>) {
            match v.as_seq() {
                Some(items) => items.iter().for_each(|i| walk(i, out)),
                None => out.push(v.clone()),
            }
        }
        let mut out = Vec::new();
        walk(&args[0], &mut out);
        NativeOutcome::ok(Value::list(out))
    });

    // ---- maps --------------------------------------------------------
    reg(gvm, "get", |_, args| {
        arity("get", &args, 2, Some(3))?;
        let m = args[0]
            .as_map()
            .ok_or_else(|| VmError::type_error("map", &args[0]))?;
        NativeOutcome::ok(
            m.get(&args[1])
                .cloned()
                .or_else(|| args.get(2).cloned())
                .unwrap_or(Value::Nil),
        )
    });
    reg(gvm, "put", |_, args| {
        arity("put", &args, 3, Some(3))?;
        let m = args[0]
            .as_map()
            .ok_or_else(|| VmError::type_error("map", &args[0]))?;
        let mut m = m.clone();
        m.insert(args[1].clone(), args[2].clone());
        NativeOutcome::ok(Value::Map(Arc::new(m)))
    });
    reg(gvm, "dissoc", |_, args| {
        arity("dissoc", &args, 2, Some(2))?;
        let m = args[0]
            .as_map()
            .ok_or_else(|| VmError::type_error("map", &args[0]))?;
        let mut m = m.clone();
        m.remove(&args[1]);
        NativeOutcome::ok(Value::Map(Arc::new(m)))
    });
    reg(gvm, "contains-key?", |_, args| {
        arity("contains-key?", &args, 2, Some(2))?;
        let m = args[0]
            .as_map()
            .ok_or_else(|| VmError::type_error("map", &args[0]))?;
        NativeOutcome::ok(Value::Bool(m.get(&args[1]).is_some()))
    });
    reg(gvm, "keys", |_, args| {
        arity("keys", &args, 1, Some(1))?;
        let m = args[0]
            .as_map()
            .ok_or_else(|| VmError::type_error("map", &args[0]))?;
        NativeOutcome::ok(Value::list(m.iter().map(|(k, _)| k.clone()).collect()))
    });
    reg(gvm, "vals", |_, args| {
        arity("vals", &args, 1, Some(1))?;
        let m = args[0]
            .as_map()
            .ok_or_else(|| VmError::type_error("map", &args[0]))?;
        NativeOutcome::ok(Value::list(m.iter().map(|(_, v)| v.clone()).collect()))
    });
    reg(gvm, "merge", |_, args| {
        arity("merge", &args, 1, None)?;
        let mut out = AssocMap::new();
        for a in &args {
            let m = a.as_map().ok_or_else(|| VmError::type_error("map", a))?;
            for (k, v) in m.iter() {
                out.insert(k.clone(), v.clone());
            }
        }
        NativeOutcome::ok(Value::Map(Arc::new(out)))
    });
    reg(gvm, "make-map", |_, args| {
        if args.len() % 2 != 0 {
            return Err(VmError::msg("make-map: odd number of arguments"));
        }
        let mut m = AssocMap::new();
        let mut it = args.into_iter();
        while let (Some(k), Some(v)) = (it.next(), it.next()) {
            m.insert(k, v);
        }
        NativeOutcome::ok(Value::Map(Arc::new(m)))
    });
}

fn merge_sort(ctx: &mut NativeCtx<'_>, pred: &Value, items: Vec<Value>) -> VmResult<Vec<Value>> {
    if items.len() <= 1 {
        return Ok(items);
    }
    let mid = items.len() / 2;
    let mut right = items;
    let left = right.drain(..mid).collect::<Vec<_>>();
    let left = merge_sort(ctx, pred, left)?;
    let right = merge_sort(ctx, pred, right)?;
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut li, mut ri) = (0, 0);
    while li < left.len() && ri < right.len() {
        // Stable: take from the left unless right < left.
        let right_first = ctx
            .call(pred, vec![right[ri].clone(), left[li].clone()])?
            .is_truthy();
        if right_first {
            out.push(right[ri].clone());
            ri += 1;
        } else {
            out.push(left[li].clone());
            li += 1;
        }
    }
    out.extend_from_slice(&left[li..]);
    out.extend_from_slice(&right[ri..]);
    Ok(out)
}
