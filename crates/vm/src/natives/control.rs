//! Control-flow, condition-system, and metaprogramming natives.

use std::sync::Arc;

use gozer_lang::Value;

use crate::conditions::Condition;
use crate::error::{Unwind, VmError, VmResult};
use crate::gvm::{Gvm, GvmHost};
use crate::natives::strings::format_directives;
use crate::runtime::{Closure, NativeOutcome};

use super::{arity, kwargs, reg, sym_arg};

pub(super) fn install(gvm: &Arc<Gvm>) {
    reg(gvm, "identity", |_, args| {
        arity("identity", &args, 1, Some(1))?;
        NativeOutcome::ok(args[0].clone())
    });
    reg(gvm, "funcall", |_, mut args| {
        arity("funcall", &args, 1, None)?;
        let func = args.remove(0);
        Ok(NativeOutcome::Invoke { func, args })
    });
    reg(gvm, "apply", |_, mut args| {
        arity("apply", &args, 2, None)?;
        let func = args.remove(0);
        let last = args.pop().expect("apply has a last argument");
        let spread = last
            .as_seq()
            .ok_or_else(|| VmError::type_error("sequence (apply last argument)", &last))?;
        args.extend_from_slice(spread);
        Ok(NativeOutcome::Invoke { func, args })
    });
    reg(gvm, "gensym", |ctx, args| {
        arity("gensym", &args, 0, Some(0))?;
        NativeOutcome::ok(Value::Symbol(ctx.gvm.gensym_sym()))
    });
    reg(gvm, "eval", |ctx, args| {
        arity("eval", &args, 1, Some(1))?;
        ctx.gvm.eval_form(&args[0], "eval").map(NativeOutcome::Value)
    });
    reg(gvm, "%def-macro", |ctx, args| {
        arity("%def-macro", &args, 2, Some(2))?;
        let name = sym_arg("%def-macro", &args, 0)?;
        ctx.gvm.define_macro(name, args[1].clone());
        NativeOutcome::ok(Value::Symbol(name))
    });
    reg(gvm, "%defvar", |ctx, args| {
        arity("%defvar", &args, 2, Some(2))?;
        let name = sym_arg("%defvar", &args, 0)?;
        ctx.gvm.define_if_unbound(name, args[1].clone());
        NativeOutcome::ok(Value::Symbol(name))
    });
    reg(gvm, "%defparameter", |ctx, args| {
        arity("%defparameter", &args, 2, Some(2))?;
        let name = sym_arg("%defparameter", &args, 0)?;
        ctx.gvm.set_global(name, args[1].clone());
        NativeOutcome::ok(Value::Symbol(name))
    });
    reg(gvm, "macroexpand-1", |ctx, args| {
        arity("macroexpand-1", &args, 1, Some(1))?;
        let Some(items) = args[0].as_list() else {
            return NativeOutcome::ok(args[0].clone());
        };
        let Some(head) = items.first().and_then(Value::as_symbol) else {
            return NativeOutcome::ok(args[0].clone());
        };
        use crate::compiler::MacroHost;
        let host = GvmHost(ctx.gvm);
        // Compiler core macros expand first (they take precedence during
        // compilation too), then user macros.
        if let Some(result) = crate::compiler::expand_core(&host, head.name(), &items[1..]) {
            return result.map(NativeOutcome::Value);
        }
        match host.lookup_macro(head) {
            Some(mac) => host
                .expand_macro(&mac, &items[1..])
                .map(NativeOutcome::Value),
            None => NativeOutcome::ok(args[0].clone()),
        }
    });
    reg(gvm, "doc", |_, args| {
        arity("doc", &args, 1, Some(1))?;
        match args[0].as_callable::<Closure>() {
            Some(c) => NativeOutcome::ok(
                c.program
                    .chunk(c.chunk)
                    .doc
                    .as_deref()
                    .map(Value::str)
                    .unwrap_or(Value::Nil),
            ),
            None => NativeOutcome::ok(Value::Nil),
        }
    });
    reg(gvm, "apropos", |ctx, args| {
        arity("apropos", &args, 0, Some(1))?;
        let fragment = args.first().and_then(Value::as_str).unwrap_or("");
        NativeOutcome::ok(Value::list(
            ctx.gvm
                .global_names_matching(fragment)
                .into_iter()
                .map(Value::Symbol)
                .collect(),
        ))
    });
    reg(gvm, "describe", |ctx, args| {
        arity("describe", &args, 1, Some(1))?;
        let v = match &args[0] {
            Value::Symbol(s) => ctx
                .gvm
                .get_global(*s)
                .ok_or_else(|| VmError::msg(format!("{} is unbound", s.name())))?,
            other => other.clone(),
        };
        let mut text = format!("type: {}\n", v.type_name());
        if let Some(c) = v.as_callable::<Closure>() {
            let chunk = c.program.chunk(c.chunk);
            if let Some(doc) = &chunk.doc {
                text.push_str(&format!("doc: {doc}\n"));
            }
            text.push_str(&format!(
                "params: {} required, {} optional{}{}\n",
                chunk.params.required.len(),
                chunk.params.optional.len(),
                if chunk.params.rest.is_some() { ", &rest" } else { "" },
                if chunk.params.keys.is_empty() {
                    String::new()
                } else {
                    format!(", {} keys", chunk.params.keys.len())
                },
            ));
        } else {
            text.push_str(&format!("value: {v:?}\n"));
        }
        ctx.gvm.log_line(text.trim_end().to_string());
        NativeOutcome::ok(Value::Nil)
    });
    reg(gvm, "disassemble", |_, args| {
        arity("disassemble", &args, 1, Some(1))?;
        match args[0].as_callable::<Closure>() {
            Some(c) => NativeOutcome::ok(Value::from(crate::bytecode::disassemble(
                &c.program, c.chunk,
            ))),
            None => Err(VmError::type_error("closure", &args[0])),
        }
    });

    // ---- conditions (§3.7) -------------------------------------------

    reg(gvm, "error", |ctx, args| {
        arity("error", &args, 1, None)?;
        let cond = condition_from_error_args(&args)?;
        Err(ctx.raise(cond))
    });
    reg(gvm, "signal", |ctx, args| {
        arity("signal", &args, 1, None)?;
        let cond = condition_from_error_args(&args)?;
        ctx.signal(&cond)?;
        NativeOutcome::ok(Value::Nil)
    });
    reg(gvm, "warn", |ctx, args| {
        arity("warn", &args, 1, None)?;
        let cond = condition_from_error_args(&args)?;
        ctx.gvm.log_line(format!("WARNING: {cond}"));
        ctx.signal(&cond)?;
        NativeOutcome::ok(Value::Nil)
    });
    reg(gvm, "make-condition", |_, args| {
        // (make-condition :types '("a" "b") :message "m" :data d)
        let kw = kwargs("make-condition", &args)?;
        let mut types = Vec::new();
        let mut message = String::new();
        let mut data = Value::Nil;
        for (k, v) in kw {
            match k.name() {
                "types" => {
                    for t in v.as_seq().unwrap_or(&[]) {
                        if let Some(s) = t.as_str() {
                            types.push(s.to_string());
                        }
                    }
                }
                "message" => message = v.as_str().unwrap_or_default().to_string(),
                "data" => data = v,
                other => {
                    return Err(VmError::msg(format!(
                        "make-condition: unknown key :{other}"
                    )))
                }
            }
        }
        if types.is_empty() {
            types.push("error".to_string());
        }
        NativeOutcome::ok(Condition::with_types(types, message, data).0)
    });
    reg(gvm, "condition-message", |_, args| {
        arity("condition-message", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::from(
            Condition::from_value(args[0].clone()).message(),
        ))
    });
    reg(gvm, "condition-types", |_, args| {
        arity("condition-types", &args, 1, Some(1))?;
        NativeOutcome::ok(Value::list(
            Condition::from_value(args[0].clone())
                .types()
                .into_iter()
                .map(Value::from)
                .collect(),
        ))
    });
    reg(gvm, "condition-data", |_, args| {
        arity("condition-data", &args, 1, Some(1))?;
        NativeOutcome::ok(
            Condition::from_value(args[0].clone())
                .field("data")
                .unwrap_or(Value::Nil),
        )
    });
    reg(gvm, "condition-matches?", |_, args| {
        arity("condition-matches?", &args, 2, Some(2))?;
        let c = Condition::from_value(args[0].clone());
        let d = args[1]
            .as_str()
            .ok_or_else(|| VmError::type_error("string designator", &args[1]))?;
        NativeOutcome::ok(Value::Bool(c.matches(d)))
    });
    reg(gvm, "invoke-restart", |ctx, mut args| {
        arity("invoke-restart", &args, 1, None)?;
        let name = match &args[0] {
            Value::Symbol(s) => *s,
            other => return Err(VmError::type_error("restart name symbol", other)),
        };
        let rest = args.split_off(1);
        match ctx.ds.restarts.iter().rev().find(|r| r.name == name) {
            Some(entry) => Err(VmError::Unwind(Unwind::Restart {
                id: entry.id,
                args: rest,
            })),
            None => Err(ctx.raise(Condition::with_types(
                vec!["control-error".into(), "error".into()],
                format!("no active restart named {}", name.name()),
                Value::Symbol(name),
            ))),
        }
    });
    reg(gvm, "find-restart", |ctx, args| {
        arity("find-restart", &args, 1, Some(1))?;
        let name = sym_arg("find-restart", &args, 0)?;
        NativeOutcome::ok(Value::Bool(
            ctx.ds.restarts.iter().any(|r| r.name == name),
        ))
    });
    reg(gvm, "compute-restarts", |ctx, args| {
        arity("compute-restarts", &args, 0, Some(0))?;
        NativeOutcome::ok(Value::list(
            ctx.ds
                .restarts
                .iter()
                .rev()
                .map(|r| Value::Symbol(r.name))
                .collect(),
        ))
    });
    // Resume a first-class continuation captured by push-cc: replaces
    // the fiber's entire state with the captured one and delivers the
    // value at the capture point (§3.1 — "a continuation represents the
    // completion of the same flow of control").
    reg(gvm, "%resume-cc", |ctx, args| {
        arity("%resume-cc", &args, 1, Some(2))?;
        let Some(k) = args[0].as_opaque::<crate::runtime::ContinuationVal>() else {
            return Err(VmError::type_error("continuation", &args[0]));
        };
        if ctx.nested {
            return Err(VmError::msg(
                "cannot resume a continuation from a nested context",
            ));
        }
        Ok(NativeOutcome::ResumeContinuation {
            state: Box::new(k.state.clone()),
            value: args.get(1).cloned().unwrap_or(Value::Nil),
        })
    });

    // Vinz action primitives (§3.7): terminate just this fiber, or the
    // whole task.
    reg(gvm, "%break-fiber", |_, args| {
        arity("%break-fiber", &args, 0, Some(0))?;
        Err(VmError::Unwind(Unwind::BreakFiber))
    });
    reg(gvm, "%terminate-task", |_, args| {
        arity("%terminate-task", &args, 0, Some(1))?;
        let cond = match args.first() {
            Some(v) => Condition::from_value(v.clone()),
            None => Condition::error("task terminated"),
        };
        Err(VmError::Unwind(Unwind::TerminateTask(cond)))
    });
}

/// Build a condition from `error`-style arguments: a format string plus
/// arguments, or a pre-built condition value.
fn condition_from_error_args(args: &[Value]) -> VmResult<Condition> {
    match &args[0] {
        Value::Str(fmt) => {
            let msg = format_directives(fmt, &args[1..])?;
            Ok(Condition::error(msg))
        }
        other => Ok(Condition::from_value(other.clone())),
    }
}
