//! Future natives (§2): `%make-future` (the target of the `future`
//! macro), `touch`, `pcall`, and `future-done?`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use gozer_lang::Value;

use crate::error::VmResult;
use crate::fiber::DynState;
use crate::gvm::Gvm;
use crate::interp::call_nested;
use crate::runtime::{force, FutureVal, NativeOutcome};

use super::{arity, reg, reg_raw};

pub(super) fn install(gvm: &Arc<Gvm>) {
    // Raw: the thunk must not be forced (it is a closure, not a future,
    // but auto-forcing would also force future values *captured* as
    // direct arguments in pathological cases).
    reg_raw(gvm, "%make-future", |ctx, args| {
        arity("%make-future", &args, 1, Some(1))?;
        let thunk = args[0].clone();
        if !ctx.gvm.futures_enabled.load(Ordering::Relaxed) {
            // Eager mode: compute on the calling thread. Futures are
            // transparent, so returning the plain value is equivalent.
            return ctx.call(&thunk, vec![]).map(NativeOutcome::Value);
        }
        let fut = FutureVal::new();
        let job_fut = fut.clone();
        let job_gvm = ctx.gvm.clone();
        // The future body runs with a copy of the fiber's extension map
        // plus the background marker: Vinz detects this to refuse fiber
        // suspension from future threads (§3.2, §4.1).
        let mut job_ext = ctx.ext.clone();
        job_ext.set("background", Value::Bool(true));
        ctx.gvm.pool().submit(move || {
            let mut ds = DynState::default();
            let mut ids = 0u64;
            let mut ext = job_ext;
            let result: VmResult<Value> =
                call_nested(&job_gvm, &mut ds, &mut ids, &mut ext, thunk, vec![]);
            match result {
                Ok(v) => job_fut.fulfill(v),
                Err(e) => job_fut.fail(e.to_condition()),
            }
        });
        NativeOutcome::ok(Value::Opaque(fut))
    });
    // touch blocks the calling thread until the value is determined
    // (identity on non-futures).
    reg_raw(gvm, "touch", |_, args| {
        arity("touch", &args, 1, Some(1))?;
        force(args[0].clone()).map(NativeOutcome::Value)
    });
    // pcall applies a function only after all its arguments are
    // determined. Auto-forcing does the determination; Invoke applies.
    reg(gvm, "pcall", |_, mut args| {
        arity("pcall", &args, 1, None)?;
        let func = args.remove(0);
        Ok(NativeOutcome::Invoke { func, args })
    });
    reg_raw(gvm, "future-done?", |_, args| {
        arity("future-done?", &args, 1, Some(1))?;
        let done = match args[0].as_opaque::<FutureVal>() {
            Some(f) => f.is_determined(),
            // Any non-future value is always determined (§2).
            None => true,
        };
        NativeOutcome::ok(Value::Bool(done))
    });
}
