//! Runtime object types: closures, native functions, futures, and
//! first-class continuations.

use std::any::Any;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use gozer_lang::{Callable, Opaque, Value};
use parking_lot::{Condvar, Mutex};

use crate::bytecode::ProgramRef;
use crate::conditions::Condition;
use crate::error::{VmError, VmResult};
use crate::fiber::FiberState;
use crate::gvm::NativeCtx;

/// A compiled Gozer function: a chunk plus captured values.
///
/// Captures are **copies** taken when the closure is created; Gozer
/// closures capture by value (mutating a closed-over binding is a compile
/// error), which keeps fiber state acyclic and trivially serializable —
/// the property the whole migration scheme rests on.
pub struct Closure {
    /// Owning program.
    pub program: ProgramRef,
    /// Chunk index within the program.
    pub chunk: u32,
    /// Captured values, in the chunk's capture order.
    pub captures: Arc<Vec<Value>>,
}

impl fmt::Debug for Closure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Closure({}/{})",
            self.program.chunk(self.chunk).name,
            self.chunk
        )
    }
}

impl Callable for Closure {
    fn callable_name(&self) -> String {
        self.program.chunk(self.chunk).name.clone()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Result of a native function: either a value, or a request for the
/// interpreter to do something a native cannot do from Rust (call Gozer
/// code in a yield-capable way, suspend the fiber, or replace the fiber's
/// continuation).
pub enum NativeOutcome {
    /// Plain result.
    Value(Value),
    /// Tail-invoke `func` on `args`; its result becomes the native call's
    /// result. This is how `funcall`/`apply` stay yield-transparent.
    Invoke {
        /// Function to invoke.
        func: Value,
        /// Arguments to pass.
        args: Vec<Value>,
    },
    /// Suspend the fiber, handing `payload` to the embedder. The value
    /// passed to `resume` becomes the native call's result.
    Yield {
        /// The suspension payload (Vinz's suspension reason).
        payload: Value,
    },
    /// Replace the fiber's continuation with `state` and deliver `value`
    /// to it (resuming a first-class continuation from `push-cc`).
    ResumeContinuation {
        /// The captured state to re-enter.
        state: Box<FiberState>,
        /// Value delivered at the capture point.
        value: Value,
    },
}

impl NativeOutcome {
    /// Shorthand for `Ok(NativeOutcome::Value(v))`.
    pub fn ok(v: Value) -> VmResult<NativeOutcome> {
        Ok(NativeOutcome::Value(v))
    }
}

type NativeImpl = dyn Fn(&mut NativeCtx<'_>, Vec<Value>) -> VmResult<NativeOutcome> + Send + Sync;

/// Two-integer fast-path discriminant for the hottest arithmetic and
/// comparison natives. The interpreter's `Call` arm inlines these when
/// both arguments are `Value::Int`, skipping argument vectors, future
/// forcing (an `Int` is never a future) and the dynamic dispatch — with
/// exactly the generic native's semantics. Anything else (other arities,
/// floats, overflow) falls through to the registered implementation.
///
/// The discriminant lives on the [`NativeFn`] *value*, not on the global
/// name, so rebinding e.g. `+` to a user function disables the fast path
/// naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fast2 {
    /// `(+ a b)`
    Add,
    /// `(- a b)`
    Sub,
    /// `(* a b)`
    Mul,
    /// `(< a b)`
    Lt,
    /// `(> a b)`
    Gt,
    /// `(<= a b)`
    Le,
    /// `(>= a b)`
    Ge,
    /// `(= a b)`
    NumEq,
    /// `(/= a b)`
    NumNe,
}

/// A native (Rust-implemented) function value.
pub struct NativeFn {
    /// Global name the function was registered under; used by the printer
    /// and by the serializer to re-link natives on another node.
    pub name: String,
    /// When false (the default), future arguments are determined before
    /// the native runs — the §4.1 rule that passing a future to a native
    /// library forces it. Raw natives (`touch`, `future-done?`) receive
    /// the future object itself.
    pub raw: bool,
    /// Two-int fast path the interpreter may take instead of `func`; set
    /// only by the arithmetic installer.
    pub fast2: Option<Fast2>,
    /// Implementation.
    pub func: Arc<NativeImpl>,
}

impl NativeFn {
    /// Wrap a Rust closure as a native function value (auto-forcing).
    pub fn value(
        name: &str,
        f: impl Fn(&mut NativeCtx<'_>, Vec<Value>) -> VmResult<NativeOutcome> + Send + Sync + 'static,
    ) -> Value {
        Value::Func(Arc::new(NativeFn {
            name: name.to_string(),
            raw: false,
            fast2: None,
            func: Arc::new(f),
        }))
    }

    /// Like [`value`](Self::value) with a [`Fast2`] fast path the
    /// interpreter may inline for two-`Int` calls.
    pub fn value_fast2(
        name: &str,
        fast2: Fast2,
        f: impl Fn(&mut NativeCtx<'_>, Vec<Value>) -> VmResult<NativeOutcome> + Send + Sync + 'static,
    ) -> Value {
        Value::Func(Arc::new(NativeFn {
            name: name.to_string(),
            raw: false,
            fast2: Some(fast2),
            func: Arc::new(f),
        }))
    }

    /// Wrap a Rust closure as a *raw* native: future arguments pass
    /// through undetermined.
    pub fn raw_value(
        name: &str,
        f: impl Fn(&mut NativeCtx<'_>, Vec<Value>) -> VmResult<NativeOutcome> + Send + Sync + 'static,
    ) -> Value {
        Value::Func(Arc::new(NativeFn {
            name: name.to_string(),
            raw: true,
            fast2: None,
            func: Arc::new(f),
        }))
    }
}

impl fmt::Debug for NativeFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NativeFn({})", self.name)
    }
}

impl Callable for NativeFn {
    fn callable_name(&self) -> String {
        self.name.clone()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// State of a future's computation.
enum FutState {
    Pending,
    Done(Value),
    Failed(Condition),
}

/// A future (paper §2): a promise to deliver the value of a computation
/// running on another thread. *Undetermined* until the computation
/// finishes, then *determined* forever.
pub struct FutureVal {
    state: Mutex<FutState>,
    cond: Condvar,
}

impl FutureVal {
    /// A fresh, undetermined future.
    pub fn new() -> Arc<FutureVal> {
        Arc::new(FutureVal {
            state: Mutex::new(FutState::Pending),
            cond: Condvar::new(),
        })
    }

    /// An already-determined future (used when the pool is disabled and
    /// the computation ran eagerly).
    pub fn determined(v: Value) -> Arc<FutureVal> {
        Arc::new(FutureVal {
            state: Mutex::new(FutState::Done(v)),
            cond: Condvar::new(),
        })
    }

    /// Determine the future with a value. Idempotent-by-construction: the
    /// VM only fulfills a future from its single producing job.
    pub fn fulfill(&self, v: Value) {
        let mut st = self.state.lock();
        *st = FutState::Done(v);
        self.cond.notify_all();
    }

    /// Determine the future with a failure; touching it re-signals.
    pub fn fail(&self, c: Condition) {
        let mut st = self.state.lock();
        *st = FutState::Failed(c);
        self.cond.notify_all();
    }

    /// Is the future determined?
    pub fn is_determined(&self) -> bool {
        !matches!(*self.state.lock(), FutState::Pending)
    }

    /// Block until determined; propagate failure as a signal (the paper's
    /// `touch`).
    pub fn wait(&self) -> VmResult<Value> {
        let mut st = self.state.lock();
        loop {
            match &*st {
                FutState::Done(v) => return Ok(v.clone()),
                FutState::Failed(c) => return Err(VmError::Signal(c.clone())),
                FutState::Pending => self.cond.wait(&mut st),
            }
        }
    }

    /// Like [`wait`](Self::wait) with a timeout; `None` on timeout.
    pub fn wait_timeout(&self, dur: Duration) -> Option<VmResult<Value>> {
        let deadline = std::time::Instant::now() + dur;
        let mut st = self.state.lock();
        loop {
            match &*st {
                FutState::Done(v) => return Some(Ok(v.clone())),
                FutState::Failed(c) => return Some(Err(VmError::Signal(c.clone()))),
                FutState::Pending => {
                    if self.cond.wait_until(&mut st, deadline).timed_out() {
                        return None;
                    }
                }
            }
        }
    }
}

impl fmt::Debug for FutureVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = match &*self.state.lock() {
            FutState::Pending => "undetermined",
            FutState::Done(_) => "determined",
            FutState::Failed(_) => "failed",
        };
        write!(f, "Future({st})")
    }
}

impl Opaque for FutureVal {
    fn opaque_type(&self) -> &'static str {
        "future"
    }
    fn opaque_print(&self) -> String {
        format!("{self:?}")
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Force `v` if it is a future: block until determined and return the
/// underlying value. Non-futures pass through. This implements the §4.1
/// rule that passing a future to any native operation determines it.
pub fn force(v: Value) -> VmResult<Value> {
    match &v {
        Value::Opaque(o) => match o.as_any().downcast_ref::<FutureVal>() {
            Some(fut) => fut.wait(),
            None => Ok(v),
        },
        _ => Ok(v),
    }
}

/// Force every future in `args` in place.
pub fn force_all(args: &mut [Value]) -> VmResult<()> {
    for a in args.iter_mut() {
        if a.as_opaque::<FutureVal>().is_some() {
            *a = force(std::mem::replace(a, Value::Nil))?;
        }
    }
    Ok(())
}

/// Recursively wait for every future reachable from `v` (aggregates are
/// walked). Used at continuation capture: per §4.1, a continuation does
/// not become available until all futures it references have completed.
pub fn determine_deep(v: &Value) -> VmResult<()> {
    match v {
        Value::Opaque(o) => {
            if let Some(fut) = o.as_any().downcast_ref::<FutureVal>() {
                // Failures surface at capture time, as a failed migration
                // would in production.
                fut.wait()?;
            }
            Ok(())
        }
        Value::List(items) | Value::Vector(items) => {
            items.iter().try_for_each(determine_deep)
        }
        Value::Map(m) => m.iter().try_for_each(|(k, val)| {
            determine_deep(k)?;
            determine_deep(val)
        }),
        Value::Func(f) => {
            if let Some(c) = f.as_any().downcast_ref::<Closure>() {
                c.captures.iter().try_for_each(determine_deep)
            } else {
                Ok(())
            }
        }
        _ => Ok(()),
    }
}

/// A first-class continuation captured by `push-cc`: the full fiber state,
/// re-enterable any number of times.
pub struct ContinuationVal {
    /// The captured fiber state.
    pub state: FiberState,
}

impl fmt::Debug for ContinuationVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Continuation({} frames)", self.state.frames.len())
    }
}

impl Opaque for ContinuationVal {
    fn opaque_type(&self) -> &'static str {
        "continuation"
    }
    fn opaque_print(&self) -> String {
        format!("{self:?}")
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_fulfill_and_wait() {
        let fut = FutureVal::new();
        assert!(!fut.is_determined());
        let f2 = fut.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            f2.fulfill(Value::Int(7));
        });
        assert_eq!(fut.wait().unwrap(), Value::Int(7));
        assert!(fut.is_determined());
        h.join().unwrap();
    }

    #[test]
    fn future_failure_propagates() {
        let fut = FutureVal::new();
        fut.fail(Condition::error("bad"));
        match fut.wait() {
            Err(VmError::Signal(c)) => assert_eq!(c.message(), "bad"),
            other => panic!("expected signal, got {other:?}"),
        }
    }

    #[test]
    fn wait_timeout_times_out() {
        let fut = FutureVal::new();
        assert!(fut.wait_timeout(Duration::from_millis(5)).is_none());
        fut.fulfill(Value::Nil);
        assert!(fut.wait_timeout(Duration::from_millis(5)).is_some());
    }

    #[test]
    fn force_passthrough_for_non_futures() {
        assert_eq!(force(Value::Int(3)).unwrap(), Value::Int(3));
    }

    #[test]
    fn determine_deep_walks_aggregates() {
        let fut = FutureVal::determined(Value::Int(1));
        let v = Value::list(vec![
            Value::vector(vec![Value::Opaque(fut)]),
            Value::str("x"),
        ]);
        determine_deep(&v).unwrap();
    }
}
