//! Fiber state: the heap-allocated call stack that makes continuations
//! plain data.
//!
//! A *fiber* (paper §3.1) encapsulates a single Gozer flow of control. The
//! GVM keeps the entire execution state — frames, operand stacks, handler
//! and restart stacks, and a small extension map used by Vinz — in
//! ordinary owned data structures. Capturing a continuation is therefore
//! just moving this struct; persisting it is the job of `gozer-serial`.

use std::collections::BTreeMap;
use std::sync::Arc;

use gozer_lang::{Symbol, Value};

use crate::bytecode::ProgramRef;

/// One activation record.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Program owning the running chunk.
    pub program: ProgramRef,
    /// Chunk index.
    pub chunk: u32,
    /// Next instruction index.
    pub pc: u32,
    /// Local variable slots (parameters first, then let-bound).
    pub locals: Vec<Value>,
    /// Operand stack.
    pub stack: Vec<Value>,
    /// Captured values of the closure being executed.
    pub captures: Arc<Vec<Value>>,
}

impl Frame {
    /// Name of the function this frame is executing (its chunk's name) —
    /// what backtraces and the profiler display.
    pub fn fn_name(&self) -> &str {
        &self.program.chunk(self.chunk).name
    }
}

/// An established condition handler (dynamic extent).
#[derive(Debug, Clone)]
pub struct HandlerEntry {
    /// Handler function of one argument (the condition).
    pub func: Value,
}

/// An established restart (dynamic extent), the target of
/// `invoke-restart`.
#[derive(Debug, Clone)]
pub struct RestartEntry {
    /// Fiber-unique id; control transfers reference restarts by id so the
    /// transfer can cross nested interpreter activations.
    pub id: u64,
    /// Restart name (`retry`, `ignore`, ...).
    pub name: Symbol,
    /// Index of the frame that established the restart.
    pub frame_depth: u32,
    /// Operand-stack depth of that frame at establishment.
    pub stack_depth: u32,
    /// Jump target (pc in the establishing chunk) of the restart clause.
    pub target_pc: u32,
    /// Handler-stack length at establishment (restored on transfer).
    pub handlers_len: u32,
    /// Restart-stack length at establishment (restored on transfer).
    pub restarts_len: u32,
    /// True when this entry was copied into a nested activation and its
    /// frame indices refer to an *outer* interpreter; transfers to foreign
    /// restarts propagate out as unwinds. Never true in persisted state.
    pub foreign: bool,
}

/// The dynamic-extent stacks (handlers and restarts).
#[derive(Debug, Clone, Default)]
pub struct DynState {
    /// Active condition handlers, innermost last.
    pub handlers: Vec<HandlerEntry>,
    /// Active restarts, innermost last.
    pub restarts: Vec<RestartEntry>,
}

impl DynState {
    /// Copy for a nested activation: handler prefix `visible_handlers`
    /// (per CL semantics a handler runs with only the handlers outside it
    /// active), all restarts visible but marked foreign.
    pub fn nested_view(&self, visible_handlers: usize) -> DynState {
        DynState {
            handlers: self.handlers[..visible_handlers.min(self.handlers.len())].to_vec(),
            restarts: self
                .restarts
                .iter()
                .map(|r| RestartEntry {
                    foreign: true,
                    ..r.clone()
                })
                .collect(),
        }
    }
}

/// Vinz-visible fiber extension state: travels (and is persisted) with the
/// continuation. Holds the task id, fiber id, spawn-limit bookkeeping,
/// task-variable caches, etc. A `BTreeMap` keeps serialization
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct FiberExt(pub BTreeMap<Symbol, Value>);

impl FiberExt {
    /// Read a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(&Symbol::intern(key))
    }

    /// Write a key.
    pub fn set(&mut self, key: &str, v: Value) {
        self.0.insert(Symbol::intern(key), v);
    }

    /// Remove a key, returning the previous value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.0.remove(&Symbol::intern(key))
    }
}

/// Complete fiber execution state — *the continuation*.
#[derive(Debug, Clone, Default)]
pub struct FiberState {
    /// Call stack, outermost first.
    pub frames: Vec<Frame>,
    /// Handler/restart stacks.
    pub dyn_state: DynState,
    /// Next restart id (persisted so ids stay unique across migrations).
    pub next_restart_id: u64,
    /// Vinz extension data.
    pub ext: FiberExt,
    /// Number of leading frames known to serialize identically to this
    /// fiber's last persisted snapshot — the *clean prefix* that delta
    /// snapshots skip. Transient bookkeeping, never persisted: the GVM
    /// lowers it as execution touches deeper frames (the interpreter only
    /// ever mutates the top frame, so the watermark is the minimum stack
    /// depth seen since the last save), deserialization sets it to
    /// `frames.len()` (a freshly loaded state *is* its snapshot), and 0
    /// always means "no clean prefix" — the safe default.
    pub clean_prefix: usize,
}

impl FiberState {
    /// Is there anything left to run?
    pub fn is_finished(&self) -> bool {
        self.frames.is_empty()
    }

    /// Rough footprint metric (frames and values), used by cache/bench
    /// instrumentation.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

/// Why [`crate::gvm::Gvm::run_fiber`] stopped.
#[derive(Debug)]
pub enum RunOutcome {
    /// The fiber ran to completion with this value.
    Done(Value),
    /// The fiber suspended via `yield`; resume with
    /// [`crate::gvm::Gvm::resume_fiber`].
    Suspended(Suspension),
}

/// A suspended fiber: the payload handed to `yield` plus the captured
/// continuation.
#[derive(Debug)]
pub struct Suspension {
    /// The value passed to `(yield payload)` — Vinz encodes the *reason*
    /// for suspension here (service call, awaiting children, join, ...).
    pub payload: Value,
    /// The continuation. All futures it references have been determined
    /// (§4.1), so it is immediately serializable.
    pub state: FiberState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_roundtrip() {
        let mut ext = FiberExt::default();
        ext.set("task-id", Value::Int(7));
        assert_eq!(ext.get("task-id"), Some(&Value::Int(7)));
        assert_eq!(ext.remove("task-id"), Some(Value::Int(7)));
        assert_eq!(ext.get("task-id"), None);
    }

    #[test]
    fn nested_view_limits_handlers_and_marks_restarts_foreign() {
        let mut ds = DynState::default();
        ds.handlers.push(HandlerEntry { func: Value::Nil });
        ds.handlers.push(HandlerEntry { func: Value::Nil });
        ds.restarts.push(RestartEntry {
            id: 1,
            name: Symbol::intern("retry"),
            frame_depth: 0,
            stack_depth: 0,
            target_pc: 0,
            handlers_len: 0,
            restarts_len: 0,
            foreign: false,
        });
        let v = ds.nested_view(1);
        assert_eq!(v.handlers.len(), 1);
        assert!(v.restarts[0].foreign);
    }

    #[test]
    fn fresh_state_is_finished() {
        assert!(FiberState::default().is_finished());
    }
}
