//! Load-time bytecode verification.
//!
//! The interpreter's hot loop deliberately trusts its operands — local
//! slots, constant-pool indices and jump targets are used unchecked
//! (release builds) because validating them per-instruction would cost
//! more than the dispatch itself. That trust has to be established
//! *once*, here, when a program enters the VM: [`verify_program`] walks
//! every chunk and rejects anything the interpreter could trip over,
//! turning what used to be a release-mode panic (or silent wild index)
//! into a typed [`VmError::Bytecode`].
//!
//! Checks, per chunk:
//!
//! * every constant-pool reference is in range, and references that the
//!   interpreter requires to be symbols (`LoadGlobal`, `StoreGlobal`,
//!   `DefGlobal`, `PushRestart` names) are symbols;
//! * local-slot operands are `< local_count`, and the parameter spec
//!   fits in the declared local count;
//! * capture loads are within the chunk's capture list;
//! * jump and restart offsets land inside the code array;
//! * `MakeClosure` targets an existing chunk whose capture sources are
//!   satisfiable from the *current* chunk;
//! * fused superinstructions carry their second constituent in the next
//!   slot (the keep-second-slot invariant continuation resume relies
//!   on), and both constituents pass the checks above;
//! * the chunk is non-empty and ends in an instruction that cannot fall
//!   off the end (`Return`, `TailCall`, or `Jump`).
//!
//! Programs produced by [`crate::Compiler`] always pass; the verifier
//! exists for bytecode that arrives from outside the compiler — the
//! fuzzer's synthesized programs, hand-built chunks in tests, and any
//! future on-disk program format.

use gozer_lang::Value;

use crate::bytecode::{CaptureSource, Op, Program};
use crate::error::{VmError, VmResult};

fn err(program: &Program, chunk: u32, pc: usize, msg: String) -> VmError {
    let name = &program.chunk(chunk).name;
    VmError::Bytecode(format!(
        "program '{}' chunk {chunk} ({name}) pc {pc}: {msg}",
        program.name
    ))
}

/// Verify every chunk of `program`. See the module docs for the checks.
pub fn verify_program(program: &Program) -> VmResult<()> {
    for idx in 0..program.chunks.len() as u32 {
        verify_chunk(program, idx)?;
    }
    Ok(())
}

fn verify_chunk(program: &Program, chunk_idx: u32) -> VmResult<()> {
    let chunk = program.chunk(chunk_idx);
    let code = &chunk.code;
    if code.is_empty() {
        return Err(err(program, chunk_idx, 0, "empty code".into()));
    }
    if chunk.params.slot_count() > chunk.local_count as usize {
        return Err(err(
            program,
            chunk_idx,
            0,
            format!(
                "{} parameter slots exceed local_count {}",
                chunk.params.slot_count(),
                chunk.local_count
            ),
        ));
    }
    match code[code.len() - 1] {
        Op::Return | Op::TailCall(_) | Op::Jump(_) => {}
        other => {
            return Err(err(
                program,
                chunk_idx,
                code.len() - 1,
                format!("chunk must end in Return/TailCall/Jump, found {other:?}"),
            ))
        }
    }
    for (i, op) in code.iter().enumerate() {
        if let Some(parts) = op.fused_constituents() {
            // Keep-tail-slots invariant: every constituent after the
            // first must still sit in its own slot, because jumps and
            // resumed continuations can land there. A retained slot may
            // itself have been re-fused, in which case its *first*
            // constituent must be the op this fusion retained (the slot
            // is then checked in its own right when the loop reaches it).
            for (k, part) in parts.iter().enumerate().skip(1) {
                match code.get(i + k) {
                    Some(next)
                        if next == part
                            || next
                                .fused_constituents()
                                .is_some_and(|inner| inner[0] == *part) => {}
                    Some(next) => {
                        return Err(err(
                            program,
                            chunk_idx,
                            i,
                            format!("fused {op:?} expects {part:?} at slot {}, found {next:?}", i + k),
                        ))
                    }
                    None => {
                        return Err(err(
                            program,
                            chunk_idx,
                            i,
                            format!("fused {op:?} runs past the end of the chunk"),
                        ))
                    }
                }
            }
            for (k, part) in parts.iter().enumerate() {
                verify_op(program, chunk_idx, part, i + k)?;
            }
        } else {
            verify_op(program, chunk_idx, op, i)?;
        }
    }
    Ok(())
}

fn check_const(program: &Program, chunk: u32, pc: usize, c: u32) -> VmResult<()> {
    if (c as usize) < program.consts.len() {
        Ok(())
    } else {
        Err(err(
            program,
            chunk,
            pc,
            format!("constant index {c} out of range ({} consts)", program.consts.len()),
        ))
    }
}

fn check_symbol_const(program: &Program, chunk: u32, pc: usize, c: u32) -> VmResult<()> {
    check_const(program, chunk, pc, c)?;
    match &program.consts[c as usize] {
        Value::Symbol(_) => Ok(()),
        other => Err(err(
            program,
            chunk,
            pc,
            format!("constant {c} must be a symbol, found {other:?}"),
        )),
    }
}

fn check_jump(program: &Program, chunk: u32, pc: usize, off: i32) -> VmResult<()> {
    let len = program.chunk(chunk).code.len() as i64;
    let target = pc as i64 + 1 + off as i64;
    if (0..len).contains(&target) {
        Ok(())
    } else {
        Err(err(
            program,
            chunk,
            pc,
            format!("jump target {target} outside code (len {len})"),
        ))
    }
}

fn check_local(program: &Program, chunk: u32, pc: usize, slot: u16) -> VmResult<()> {
    let count = program.chunk(chunk).local_count;
    if slot < count {
        Ok(())
    } else {
        Err(err(
            program,
            chunk,
            pc,
            format!("local slot {slot} out of range ({count} locals)"),
        ))
    }
}

fn verify_op(program: &Program, chunk_idx: u32, op: &Op, i: usize) -> VmResult<()> {
    let chunk = program.chunk(chunk_idx);
    match *op {
        Op::Const(c) => check_const(program, chunk_idx, i, c),
        Op::LoadGlobal(c) | Op::StoreGlobal(c) | Op::DefGlobal(c) => {
            check_symbol_const(program, chunk_idx, i, c)
        }
        Op::LoadLocal(s) | Op::StoreLocal(s) | Op::TakeLocal(s) => {
            check_local(program, chunk_idx, i, s)
        }
        Op::LoadCapture(idx) => {
            if (idx as usize) < chunk.captures.len() {
                Ok(())
            } else {
                Err(err(
                    program,
                    chunk_idx,
                    i,
                    format!(
                        "capture index {idx} out of range ({} captures)",
                        chunk.captures.len()
                    ),
                ))
            }
        }
        Op::Jump(off) | Op::JumpIfFalse(off) | Op::JumpIfTrue(off) => {
            check_jump(program, chunk_idx, i, off)
        }
        Op::PushRestart { name, offset } => {
            check_symbol_const(program, chunk_idx, i, name)?;
            check_jump(program, chunk_idx, i, offset)
        }
        Op::MakeClosure(target) => {
            let Some(t) = program.chunks.get(target as usize) else {
                return Err(err(
                    program,
                    chunk_idx,
                    i,
                    format!("closure chunk {target} out of range ({} chunks)", program.chunks.len()),
                ));
            };
            // The capture list is read against the *instantiating* frame.
            for (ci, src) in t.captures.iter().enumerate() {
                let ok = match *src {
                    CaptureSource::Local(s) => s < chunk.local_count,
                    CaptureSource::Capture(c) => (c as usize) < chunk.captures.len(),
                };
                if !ok {
                    return Err(err(
                        program,
                        chunk_idx,
                        i,
                        format!("closure chunk {target} capture {ci} ({src:?}) unsatisfiable here"),
                    ));
                }
            }
            Ok(())
        }
        // Stack-effect ops carry no statically checkable operand (arity
        // and collection sizes are bounded by the runtime stack).
        Op::Nil
        | Op::True
        | Op::Pop
        | Op::Dup
        | Op::Call(_)
        | Op::TailCall(_)
        | Op::Return
        | Op::MakeList(_)
        | Op::MakeVector(_)
        | Op::MakeMap(_)
        | Op::Yield
        | Op::PushCC
        | Op::PushHandler
        | Op::PopHandlers(_)
        | Op::PopRestarts(_) => Ok(()),
        // Fused ops are decomposed by the caller before reaching here.
        Op::LoadLocal2(..)
        | Op::LoadLocalConst(..)
        | Op::GlobalLocal(..)
        | Op::ConstCall(..)
        | Op::LoadLocalCall(..)
        | Op::CallBranchFalse(..)
        | Op::DupStore(..)
        | Op::PopJump(..)
        | Op::GlobalLocal2Call(..)
        | Op::GlobalLocalConstCall(..) => {
            unreachable!("fused ops are verified via fused_constituents")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Chunk, ParamSpec};
    use gozer_lang::{Symbol, Value};

    fn program(code: Vec<Op>) -> Program {
        program_with(code, vec![Value::Int(1), Value::Symbol(Symbol::intern("x"))], 2)
    }

    fn program_with(code: Vec<Op>, consts: Vec<Value>, locals: u16) -> Program {
        Program {
            id: 7,
            name: "verify-test".into(),
            consts,
            chunks: vec![Chunk {
                name: "top".into(),
                doc: None,
                params: ParamSpec::default(),
                local_count: locals,
                captures: vec![],
                code,
                ic: Vec::new(),
            }],
        }
    }

    #[test]
    fn accepts_well_formed_code() {
        let p = program(vec![
            Op::Const(0),
            Op::LoadLocal(1),
            Op::LoadGlobal(1),
            Op::JumpIfFalse(-3),
            Op::Return,
        ]);
        verify_program(&p).unwrap();
    }

    #[test]
    fn rejects_const_out_of_range() {
        let e = verify_program(&program(vec![Op::Const(9), Op::Return])).unwrap_err();
        assert!(matches!(e, VmError::Bytecode(_)), "{e}");
        assert!(e.to_string().contains("constant index 9"));
    }

    #[test]
    fn rejects_non_symbol_global_name() {
        let e = verify_program(&program(vec![Op::LoadGlobal(0), Op::Return])).unwrap_err();
        assert!(e.to_string().contains("must be a symbol"));
    }

    #[test]
    fn rejects_bad_local_jump_capture() {
        assert!(verify_program(&program(vec![Op::LoadLocal(2), Op::Return])).is_err());
        assert!(verify_program(&program(vec![Op::Jump(5), Op::Return])).is_err());
        assert!(verify_program(&program(vec![Op::LoadCapture(0), Op::Return])).is_err());
    }

    #[test]
    fn rejects_missing_terminator_and_empty_chunk() {
        assert!(verify_program(&program(vec![Op::Const(0)])).is_err());
        assert!(verify_program(&program(vec![])).is_err());
    }

    #[test]
    fn rejects_fused_op_without_its_second_slot() {
        // Fused LoadLocal2 must be followed by LoadLocal(1).
        let e = verify_program(&program(vec![Op::LoadLocal2(0, 1), Op::Pop, Op::Return]))
            .unwrap_err();
        assert!(e.to_string().contains("expects"), "{e}");
        // And with the proper landing pad it verifies.
        verify_program(&program(vec![Op::LoadLocal2(0, 1), Op::LoadLocal(1), Op::Return]))
            .unwrap();
    }

    #[test]
    fn rejects_fused_op_with_bad_constituent() {
        // The constituent checks apply through the fusion.
        let p = program(vec![Op::ConstCall(9, 1), Op::Call(1), Op::Return]);
        assert!(verify_program(&p).is_err());
    }

    #[test]
    fn compiler_output_always_verifies() {
        let gvm = crate::Gvm::new();
        gvm.eval_str("(defun f (a b) (if (< a b) (f b a) (+ a b)))").unwrap();
        // load_str already verified; this exercises a direct call too.
        let f = gvm.function("f").unwrap();
        let cl = f.as_callable::<crate::runtime::Closure>().unwrap();
        verify_program(&cl.program).unwrap();
    }
}
