//! The GVM interpreter loop.
//!
//! Executes [`Op`] streams against a heap-allocated frame stack. Two
//! activation modes exist:
//!
//! * **fiber mode** (`nested = false`): the top-level run of a fiber. May
//!   suspend at `yield`, producing a serializable continuation.
//! * **nested mode** (`nested = true`): interpreter re-entry from Rust —
//!   condition handlers, macro expansion, reader macros, future bodies,
//!   and higher-order natives. A nested activation cannot suspend; Vinz
//!   relies on this to force synchronous service calls on background
//!   threads (§3.2).
//!
//! Non-local control (restart transfers, Vinz `break`/`terminate`) crosses
//! activations as [`Unwind`] errors caught by the activation that owns the
//! target restart.

use std::sync::Arc;

use gozer_lang::Value;

use crate::bytecode::{CaptureSource, Op, ParamSpec};
use crate::conditions::Condition;
use crate::error::{Unwind, VmError, VmResult};
use crate::fiber::{DynState, FiberExt, FiberState, Frame, HandlerEntry, RestartEntry};
use crate::gvm::{Gvm, NativeCtx};
use crate::profile::ProfScope;
use crate::runtime::{determine_deep, force, force_all, Closure, ContinuationVal, NativeFn, NativeOutcome};

/// Result of the interpreter loop.
pub(crate) enum InterpOutcome {
    /// Final value of the outermost frame.
    Done(Value),
    /// Suspended at a `yield`; the payload explains why (Vinz encodes the
    /// suspension reason here). The caller owns the captured state.
    Suspended(Value),
}

/// What a single instruction step decided.
enum Flow {
    Continue,
    Done(Value),
    Suspend(Value),
}

/// Run until completion or suspension. On entry, `resume` (if provided)
/// is pushed onto the top frame's operand stack — the value "returned by"
/// the yield that suspended the fiber.
///
/// `low` is the dirty-tracking watermark: the interpreter only ever
/// mutates the top frame (value ops, calls, returns, restart transfers
/// all work through `top`/push/pop/truncate), so the minimum stack depth
/// observed between steps bounds the damage — every frame below
/// `low - 1` is byte-identical to what the caller passed in. Continuation
/// resumption replaces the whole stack and drops the watermark to 0.
/// Nested activations pass a throwaway.
pub(crate) fn interp(
    gvm: &Arc<Gvm>,
    frames: &mut Vec<Frame>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    nested: bool,
    resume: Option<Value>,
    low: &mut usize,
) -> VmResult<InterpOutcome> {
    if let Some(v) = resume {
        let f = frames
            .last_mut()
            .ok_or_else(|| VmError::msg("cannot resume a finished fiber"))?;
        f.stack.push(v);
    }
    // One enabled check per activation; a disabled profiler costs an
    // `Option` test per step from here on. Dropping the scope (any exit
    // path) attributes whatever is still open.
    let mut prof = gvm.profiler().scope(frames);
    loop {
        match step(gvm, frames, ds, ids, ext, nested, &mut prof, low) {
            Ok(Flow::Continue) => {}
            Ok(Flow::Done(v)) => return Ok(InterpOutcome::Done(v)),
            Ok(Flow::Suspend(payload)) => {
                // Close timing segments *before* the determination wait
                // below: time blocked on futures (whose bodies profile
                // under their own activations) is not charged here, just
                // like the suspended interval that follows.
                if let Some(p) = prof.as_mut() {
                    p.suspend_closeout();
                }
                // §4.1: the continuation only becomes available once every
                // future it references is determined.
                determine_frames(frames)?;
                *low = (*low).min(frames.len());
                return Ok(InterpOutcome::Suspended(payload));
            }
            Err(e) => {
                if !try_restart_transfer(&e, frames, ds)? {
                    return Err(e);
                }
                if let Some(p) = prof.as_mut() {
                    p.on_truncate(frames.len());
                }
            }
        }
        *low = (*low).min(frames.len());
    }
}

/// Attempt to perform a restart transfer for `e` within this activation:
/// unwind the frame stack to the establishing frame, reset its operand
/// stack and pc, restore the dynamic stacks, and deliver the restart
/// arguments as a single list value. Returns true when the transfer was
/// performed; foreign restarts (owned by an outer activation) are left
/// for their owner.
fn try_restart_transfer(
    e: &VmError,
    frames: &mut Vec<Frame>,
    ds: &mut DynState,
) -> VmResult<bool> {
    let VmError::Unwind(Unwind::Restart { id, args }) = e else {
        return Ok(false);
    };
    let Some(pos) = ds
        .restarts
        .iter()
        .rposition(|r| r.id == *id && !r.foreign)
    else {
        return Ok(false);
    };
    let entry = ds.restarts[pos].clone();
    frames.truncate(entry.frame_depth as usize + 1);
    let f = frames
        .last_mut()
        .ok_or_else(|| VmError::msg("restart transfer into empty stack"))?;
    f.stack.truncate(entry.stack_depth as usize);
    f.pc = entry.target_pc;
    ds.handlers.truncate(entry.handlers_len as usize);
    ds.restarts.truncate(entry.restarts_len as usize);
    f.stack.push(Value::list(args.clone()));
    Ok(true)
}

/// Execute one instruction.
fn step(
    gvm: &Arc<Gvm>,
    frames: &mut Vec<Frame>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    nested: bool,
    prof: &mut Option<ProfScope<'_>>,
    low: &mut usize,
) -> VmResult<Flow> {
    let op = {
        let f = frames
            .last_mut()
            .ok_or_else(|| VmError::msg("interpreter entered with no frames"))?;
        let chunk = f.program.chunk(f.chunk);
        debug_assert!((f.pc as usize) < chunk.code.len(), "pc ran off chunk end");
        let op = chunk.code[f.pc as usize];
        f.pc += 1;
        op
    };
    if let Some(p) = prof.as_ref() {
        p.count_op(&op);
    }
    match op {
        Op::Const(i) => {
            let v = {
                let f = top(frames);
                f.program.consts[i as usize].clone()
            };
            top(frames).stack.push(v);
        }
        Op::Nil => top(frames).stack.push(Value::Nil),
        Op::True => top(frames).stack.push(Value::Bool(true)),
        Op::Pop => {
            pop(frames)?;
        }
        Op::Dup => {
            let v = top(frames)
                .stack
                .last()
                .cloned()
                .ok_or_else(|| VmError::msg("dup on empty stack"))?;
            top(frames).stack.push(v);
        }
        Op::LoadLocal(slot) => {
            let v = top(frames).locals[slot as usize].clone();
            top(frames).stack.push(v);
        }
        Op::StoreLocal(slot) => {
            let v = pop(frames)?;
            top(frames).locals[slot as usize] = v;
        }
        Op::LoadCapture(i) => {
            let v = top(frames).captures[i as usize].clone();
            top(frames).stack.push(v);
        }
        Op::LoadGlobal(c) => {
            let sym = const_symbol(frames, c)?;
            match gvm.get_global(sym) {
                Some(v) => top(frames).stack.push(v),
                None => {
                    return Err(raise(
                        gvm,
                        ds,
                        ids,
                        ext,
                        Condition::with_types(
                            vec!["unbound-variable".into(), "error".into()],
                            format!("unbound variable: {}", sym.name()),
                            Value::Symbol(sym),
                        ),
                    ));
                }
            }
        }
        Op::StoreGlobal(c) => {
            let sym = const_symbol(frames, c)?;
            let v = pop(frames)?;
            gvm.set_global(sym, v);
        }
        Op::DefGlobal(c) => {
            let sym = const_symbol(frames, c)?;
            let v = pop(frames)?;
            gvm.set_global(sym, v);
        }
        Op::Jump(off) => jump(frames, off),
        Op::JumpIfFalse(off) => {
            let v = force(pop(frames)?)?;
            if !v.is_truthy() {
                jump(frames, off);
            }
        }
        Op::JumpIfTrue(off) => {
            let v = force(pop(frames)?)?;
            if v.is_truthy() {
                jump(frames, off);
            }
        }
        Op::Call(n) | Op::TailCall(n) => {
            let tail = matches!(op, Op::TailCall(_));
            let mut args = {
                let f = top(frames);
                let at = f.stack.len() - n as usize;
                f.stack.split_off(at)
            };
            let callee = pop(frames)?;
            // The Invoke outcome loops here so funcall/apply chains stay
            // iterative.
            let mut callee = force(callee)?;
            loop {
                if callee.as_callable::<Closure>().is_some() {
                    let frame = frame_for_closure(gvm, ds, ids, ext, &callee, args)?;
                    if let Some(p) = prof.as_mut() {
                        if tail {
                            p.on_tail_call(&frame);
                        } else {
                            p.on_push(&frame);
                        }
                    }
                    if tail {
                        *top(frames) = frame;
                    } else {
                        frames.push(frame);
                    }
                    return Ok(Flow::Continue);
                }
                if let Some(nf) = callee.as_callable::<NativeFn>() {
                    if !nf.raw {
                        force_all(&mut args)?;
                    }
                    let func = nf.func.clone();
                    let mut ctx = NativeCtx {
                        gvm,
                        ds,
                        ids,
                        ext,
                        nested,
                    };
                    match func(&mut ctx, args)? {
                        NativeOutcome::Value(v) => {
                            top(frames).stack.push(v);
                            return Ok(Flow::Continue);
                        }
                        NativeOutcome::Invoke { func, args: a } => {
                            callee = force(func)?;
                            args = a;
                            continue;
                        }
                        NativeOutcome::Yield { payload } => {
                            if nested {
                                return Err(VmError::Unwind(Unwind::YieldFromNested));
                            }
                            return Ok(Flow::Suspend(payload));
                        }
                        NativeOutcome::ResumeContinuation { state, value } => {
                            *frames = state.frames;
                            *ds = state.dyn_state;
                            *ids = state.next_restart_id;
                            *ext = state.ext;
                            // Wholesale frame replacement: nothing of the
                            // incoming stack survives, so no clean prefix.
                            *low = 0;
                            if let Some(p) = prof.as_mut() {
                                p.on_replace(frames);
                            }
                            top(frames).stack.push(value);
                            return Ok(Flow::Continue);
                        }
                    }
                }
                return Err(raise(
                    gvm,
                    ds,
                    ids,
                    ext,
                    Condition::type_error("function", &callee),
                ));
            }
        }
        Op::Return => {
            if let Some(p) = prof.as_mut() {
                p.on_return();
            }
            let mut f = frames.pop().ok_or_else(|| VmError::msg("return from nothing"))?;
            let v = f
                .stack
                .pop()
                .ok_or_else(|| VmError::msg("return with empty stack"))?;
            match frames.last_mut() {
                None => return Ok(Flow::Done(v)),
                Some(caller) => caller.stack.push(v),
            }
        }
        Op::MakeClosure(ci) => {
            let closure = {
                let f = top(frames);
                let chunk = f.program.chunk(ci);
                let captures: Vec<Value> = chunk
                    .captures
                    .iter()
                    .map(|src| match src {
                        CaptureSource::Local(slot) => f.locals[*slot as usize].clone(),
                        CaptureSource::Capture(i) => f.captures[*i as usize].clone(),
                    })
                    .collect();
                Value::Func(Arc::new(Closure {
                    program: f.program.clone(),
                    chunk: ci,
                    captures: Arc::new(captures),
                }))
            };
            top(frames).stack.push(closure);
        }
        Op::MakeList(n) => {
            let items = popn(frames, n as usize)?;
            top(frames).stack.push(Value::list(items));
        }
        Op::MakeVector(n) => {
            let items = popn(frames, n as usize)?;
            top(frames).stack.push(Value::vector(items));
        }
        Op::MakeMap(n) => {
            let items = popn(frames, 2 * n as usize)?;
            let mut m = gozer_lang::AssocMap::new();
            let mut it = items.into_iter();
            while let (Some(k), Some(v)) = (it.next(), it.next()) {
                m.insert(k, v);
            }
            top(frames).stack.push(Value::Map(Arc::new(m)));
        }
        Op::Yield => {
            let payload = pop(frames)?;
            if nested {
                return Err(VmError::Unwind(Unwind::YieldFromNested));
            }
            return Ok(Flow::Suspend(payload));
        }
        Op::PushCC => {
            // Determine futures first, then snapshot. The snapshot's pc is
            // already past PushCC; resuming it delivers a value exactly
            // where the live path sees the continuation object.
            determine_frames(frames)?;
            let state = FiberState {
                frames: frames.clone(),
                dyn_state: ds.clone(),
                next_restart_id: *ids,
                ext: ext.clone(),
                clean_prefix: 0,
            };
            top(frames)
                .stack
                .push(Value::Opaque(Arc::new(ContinuationVal { state })));
        }
        Op::PushHandler => {
            let func = pop(frames)?;
            ds.handlers.push(HandlerEntry { func });
        }
        Op::PopHandlers(n) => {
            let new_len = ds.handlers.len().saturating_sub(n as usize);
            ds.handlers.truncate(new_len);
        }
        Op::PushRestart { name, offset } => {
            let (name_sym, target_pc, stack_depth) = {
                let f = top(frames);
                let sym = f.program.consts[name as usize]
                    .as_symbol()
                    .ok_or_else(|| VmError::msg("restart name constant must be a symbol"))?;
                (
                    sym,
                    (f.pc as i64 + offset as i64) as u32,
                    f.stack.len() as u32,
                )
            };
            *ids += 1;
            ds.restarts.push(RestartEntry {
                id: *ids,
                name: name_sym,
                frame_depth: (frames.len() - 1) as u32,
                stack_depth,
                target_pc,
                handlers_len: ds.handlers.len() as u32,
                restarts_len: ds.restarts.len() as u32,
                foreign: false,
            });
        }
        Op::PopRestarts(n) => {
            let new_len = ds.restarts.len().saturating_sub(n as usize);
            ds.restarts.truncate(new_len);
        }
    }
    Ok(Flow::Continue)
}

// ---- helpers -----------------------------------------------------------

fn top(frames: &mut [Frame]) -> &mut Frame {
    frames.last_mut().expect("frame stack empty")
}

fn pop(frames: &mut [Frame]) -> VmResult<Value> {
    top(frames)
        .stack
        .pop()
        .ok_or_else(|| VmError::msg("operand stack underflow"))
}

fn popn(frames: &mut [Frame], n: usize) -> VmResult<Vec<Value>> {
    let f = top(frames);
    if f.stack.len() < n {
        return Err(VmError::msg("operand stack underflow"));
    }
    let at = f.stack.len() - n;
    Ok(f.stack.split_off(at))
}

fn jump(frames: &mut [Frame], off: i32) {
    let f = top(frames);
    f.pc = (f.pc as i64 + off as i64) as u32;
}

fn const_symbol(frames: &mut [Frame], c: u32) -> VmResult<gozer_lang::Symbol> {
    let f = top(frames);
    f.program.consts[c as usize]
        .as_symbol()
        .ok_or_else(|| VmError::msg("expected symbol constant"))
}

/// Wait for every future reachable from the frame stack.
fn determine_frames(frames: &[Frame]) -> VmResult<()> {
    for f in frames {
        for v in f.locals.iter().chain(f.stack.iter()).chain(f.captures.iter()) {
            determine_deep(v)?;
        }
    }
    Ok(())
}

/// Build the activation frame for calling `callee` (a closure) on `args`.
pub(crate) fn frame_for_closure(
    gvm: &Arc<Gvm>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    callee: &Value,
    args: Vec<Value>,
) -> VmResult<Frame> {
    let cl = callee
        .as_callable::<Closure>()
        .ok_or_else(|| VmError::type_error("closure", callee))?;
    let chunk = cl.program.chunk(cl.chunk);
    let locals = match bind_params(&chunk.params, args, &chunk.name) {
        Ok(l) => l,
        Err(cond) => return Err(raise(gvm, ds, ids, ext, cond)),
    };
    let mut all_locals = locals;
    all_locals.resize(chunk.local_count as usize, Value::Nil);
    Ok(Frame {
        program: cl.program.clone(),
        chunk: cl.chunk,
        pc: 0,
        locals: all_locals,
        stack: Vec::with_capacity(8),
        captures: cl.captures.clone(),
    })
}

/// Bind `args` against `spec`, producing the parameter slot values.
fn bind_params(spec: &ParamSpec, mut args: Vec<Value>, fn_name: &str) -> Result<Vec<Value>, Condition> {
    let nreq = spec.required.len();
    if args.len() < nreq {
        return Err(Condition::with_types(
            vec!["program-error".into(), "error".into()],
            format!(
                "{fn_name}: expected at least {nreq} argument(s), got {}",
                args.len()
            ),
            Value::Nil,
        ));
    }
    let mut slots: Vec<Value> = Vec::with_capacity(spec.slot_count());
    let rest_args = args.split_off(nreq.min(args.len()));
    slots.extend(args);
    let mut remaining = rest_args.into_iter();
    for (_, default) in &spec.optional {
        match remaining.next() {
            Some(v) => slots.push(v),
            None => slots.push(default.clone()),
        }
    }
    let leftover: Vec<Value> = remaining.collect();
    if spec.rest.is_some() {
        slots.push(Value::list(leftover.clone()));
    }
    if !spec.keys.is_empty() {
        // Parse keyword pairs from the leftover arguments.
        if !leftover.len().is_multiple_of(2) {
            return Err(Condition::with_types(
                vec!["program-error".into(), "error".into()],
                format!("{fn_name}: odd number of keyword arguments"),
                Value::Nil,
            ));
        }
        let mut key_vals: Vec<Value> = spec.keys.iter().map(|(_, d)| d.clone()).collect();
        let mut i = 0;
        while i < leftover.len() {
            let Some(kw) = leftover[i].as_keyword() else {
                return Err(Condition::with_types(
                    vec!["program-error".into(), "error".into()],
                    format!("{fn_name}: expected a keyword, got {:?}", leftover[i]),
                    Value::Nil,
                ));
            };
            match spec.keys.iter().position(|(k, _)| *k == kw) {
                Some(ki) => key_vals[ki] = leftover[i + 1].clone(),
                None => {
                    if spec.rest.is_none() {
                        return Err(Condition::with_types(
                            vec!["program-error".into(), "error".into()],
                            format!("{fn_name}: unknown keyword :{}", kw.name()),
                            Value::Nil,
                        ));
                    }
                }
            }
            i += 2;
        }
        slots.extend(key_vals);
    } else if spec.rest.is_none() && !leftover.is_empty() {
        return Err(Condition::with_types(
            vec!["program-error".into(), "error".into()],
            format!(
                "{fn_name}: too many arguments ({} extra)",
                leftover.len()
            ),
            Value::Nil,
        ));
    }
    Ok(slots)
}

/// Call a Gozer function from Rust, in a nested (non-suspendable)
/// activation sharing the fiber's dynamic state and extension map.
pub(crate) fn call_nested(
    gvm: &Arc<Gvm>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    func: Value,
    args: Vec<Value>,
) -> VmResult<Value> {
    let mut callee = force(func)?;
    let mut args = args;
    loop {
        if callee.as_callable::<Closure>().is_some() {
            let frame = frame_for_closure(gvm, ds, ids, ext, &callee, args)?;
            let mut frames = vec![frame];
            let mut low = 0usize;
            return match interp(gvm, &mut frames, ds, ids, ext, true, None, &mut low)? {
                InterpOutcome::Done(v) => Ok(v),
                InterpOutcome::Suspended(_) => Err(VmError::Unwind(Unwind::YieldFromNested)),
            };
        }
        if let Some(nf) = callee.as_callable::<NativeFn>() {
            if !nf.raw {
                force_all(&mut args)?;
            }
            let f = nf.func.clone();
            let mut ctx = NativeCtx {
                gvm,
                ds,
                ids,
                ext,
                nested: true,
            };
            match f(&mut ctx, args)? {
                NativeOutcome::Value(v) => return Ok(v),
                NativeOutcome::Invoke { func, args: a } => {
                    callee = force(func)?;
                    args = a;
                }
                NativeOutcome::Yield { .. } => {
                    return Err(VmError::Unwind(Unwind::YieldFromNested));
                }
                NativeOutcome::ResumeContinuation { .. } => {
                    return Err(VmError::msg(
                        "cannot resume a continuation from a nested context",
                    ));
                }
            }
            continue;
        }
        return Err(VmError::type_error("function", &callee));
    }
}

/// Signal `cond` to the active handlers, innermost first. Handlers run in
/// nested activations **without unwinding** (§3.7); a handler that
/// declines simply returns and the next handler runs. Returns normally
/// when every handler declined.
pub(crate) fn do_signal(
    gvm: &Arc<Gvm>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    cond: &Condition,
) -> VmResult<()> {
    for idx in (0..ds.handlers.len()).rev() {
        let func = ds.handlers[idx].func.clone();
        // The handler sees only handlers established outside itself.
        let mut view = ds.nested_view(idx);
        call_nested(gvm, &mut view, ids, ext, func, vec![cond.value().clone()])?;
    }
    Ok(())
}

/// Signal `cond` as an *error*: if no handler transfers control, the
/// fiber fails with the condition.
pub(crate) fn raise(
    gvm: &Arc<Gvm>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    cond: Condition,
) -> VmError {
    match do_signal(gvm, ds, ids, ext, &cond) {
        Ok(()) => VmError::Signal(cond),
        Err(e) => e,
    }
}
