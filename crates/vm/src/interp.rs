//! The GVM interpreter loop.
//!
//! Executes [`Op`] streams against a heap-allocated frame stack. Two
//! activation modes exist:
//!
//! * **fiber mode** (`nested = false`): the top-level run of a fiber. May
//!   suspend at `yield`, producing a serializable continuation.
//! * **nested mode** (`nested = true`): interpreter re-entry from Rust —
//!   condition handlers, macro expansion, reader macros, future bodies,
//!   and higher-order natives. A nested activation cannot suspend; Vinz
//!   relies on this to force synchronous service calls on background
//!   threads (§3.2).
//!
//! Non-local control (restart transfers, Vinz `break`/`terminate`) crosses
//! activations as [`Unwind`] errors caught by the activation that owns the
//! target restart.
//!
//! # Fast paths
//!
//! The dispatch loop carries several semantics-preserving optimizations,
//! all gated by [`crate::opt::OptConfig`] (env `GVM_OPT`) and all required
//! to keep the profiler's opcode/pair counts and every observable pc
//! bit-identical with the de-optimized interpreter:
//!
//! * **Inline caches** for `LoadGlobal`/`GlobalLocal`: each site caches
//!   `(global-table generation, slot)` in its chunk's per-pc cache word
//!   and skips the name lookup while the generation matches (the table
//!   only bumps the generation when a *new* name is defined). A second,
//!   activation-local layer ([`GlobalCache`]) caches slot *values* keyed
//!   on the table's write epoch, so a cache hit costs one atomic load
//!   and a vector index instead of a read-lock acquisition.
//! * **Superinstructions**: fused ops execute both constituents and skip
//!   the pc past both; the second constituent is still present in the
//!   next slot for jumps and resumed continuations to land on.
//! * **Frame pooling**: frames popped by `Return`/`TailCall` are recycled
//!   within the activation instead of round-tripping the allocator. The
//!   pool never touches frames below the dirty watermark, so the
//!   `clean_prefix` delta-snapshot contract is unaffected.
//! * **Two-int arithmetic and simple closure calls** inline the hottest
//!   `Call` shapes: native `+`/`-`/`*`/comparisons on two `Int`s compute
//!   in place (falling back to the generic native on overflow or other
//!   types), and calls to closures with only required parameters move
//!   their arguments straight off the caller's stack into the callee
//!   frame with no intermediate argument vector.
//!
//! The loop itself is structured for speed: `run_loop` owns
//! fetch/dispatch, so hot opcodes execute without a per-instruction
//! function call or `Flow` round-trip, and the dirty watermark is
//! maintained only at the points where the frame stack can shrink
//! (`Return`, restart transfers, suspension) — everywhere else
//! `frames.len()` is non-decreasing, so the minimum the delta-snapshot
//! contract asks for is unchanged.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use gozer_lang::Value;

use crate::bytecode::{CaptureSource, Chunk, Op, ParamSpec, Program, ProgramRef};
use crate::conditions::Condition;
use crate::error::{Unwind, VmError, VmResult};
use crate::fiber::{DynState, FiberExt, FiberState, Frame, HandlerEntry, RestartEntry};
use crate::gvm::{Gvm, NativeCtx};
use crate::opt::OptConfig;
use crate::profile::{
    ProfScope, IDX_CALL, IDX_CONST, IDX_JUMP, IDX_JUMP_IF_FALSE, IDX_LOAD_LOCAL,
    IDX_STORE_LOCAL,
};
use crate::runtime::{
    determine_deep, force, force_all, Closure, ContinuationVal, Fast2, NativeFn, NativeOutcome,
};

/// Result of the interpreter loop.
pub(crate) enum InterpOutcome {
    /// Final value of the outermost frame.
    Done(Value),
    /// Suspended at a `yield`; the payload explains why (Vinz encodes the
    /// suspension reason here). The caller owns the captured state.
    Suspended(Value),
}

/// Why `run_loop` (or `do_call`) stopped.
enum Flow {
    /// Only produced by `do_call`: the call completed without leaving the
    /// activation and the dispatch loop keeps going.
    Continue,
    Done(Value),
    Suspend(Value),
}

/// What to do with a call's result value — `Push` for plain calls,
/// `BranchFalse` for the value path of the fused `CallBranchFalse` (the
/// suspension and closure paths instead fall through to the retained
/// `JumpIfFalse` in the next slot).
#[derive(Clone, Copy)]
enum AfterCall {
    Push,
    BranchFalse(i32),
}

/// Per-activation free list of recycled [`Frame`]s. Only frames popped
/// off the *top* of the stack (Return, TailCall replacement) enter the
/// pool — frames at or below the dirty watermark are never touched, so
/// recycling is invisible to the delta-snapshot machinery. Recycled
/// frames are scrubbed (locals/stack cleared) on entry so pooled
/// capacity, not values, is what gets reused.
struct FramePool {
    enabled: bool,
    free: Vec<Frame>,
}

const FRAME_POOL_CAP: usize = 64;

impl FramePool {
    fn new(enabled: bool) -> FramePool {
        FramePool {
            enabled,
            free: Vec::new(),
        }
    }

    fn recycle(&mut self, mut f: Frame) {
        if !self.enabled || self.free.len() >= FRAME_POOL_CAP {
            return;
        }
        f.locals.clear();
        f.stack.clear();
        self.free.push(f);
    }
}

/// Activation-local global *value* cache, layered over the per-site
/// inline caches. Validated against the global table's write epoch on
/// every read: while no global anywhere changes (the common case inside
/// a hot loop), a cached slot read is one atomic load plus a vector
/// index — no lock. Any write to any global bumps the epoch and drops
/// the whole cache. Same-thread writes are always observed (the epoch
/// bump is sequenced before the next read in program order);
/// cross-thread writes race exactly as they do against the locked read
/// path.
struct GlobalCache {
    enabled: bool,
    epoch: u64,
    slots: Vec<Option<Value>>,
}

impl GlobalCache {
    fn new(enabled: bool) -> GlobalCache {
        // Epoch 0 never matches the table (it starts at 1), so the first
        // read always misses into the table.
        GlobalCache {
            enabled,
            epoch: 0,
            slots: Vec::new(),
        }
    }

    #[inline]
    fn get(&mut self, gvm: &Gvm, slot: u32) -> Value {
        if !self.enabled {
            return gvm.global_slot_value(slot);
        }
        if self.epoch == gvm.global_epoch() {
            if let Some(Some(v)) = self.slots.get(slot as usize) {
                return v.clone();
            }
        }
        self.refill(gvm, slot)
    }

    /// Epoch rollover or first read of a slot: (re)validate the cache and
    /// fill from the table. Out of line so the hit path stays small.
    #[inline(never)]
    fn refill(&mut self, gvm: &Gvm, slot: u32) -> Value {
        let cur = gvm.global_epoch();
        if cur != self.epoch {
            self.slots.clear();
            self.epoch = cur;
        }
        let i = slot as usize;
        if let Some(Some(v)) = self.slots.get(i) {
            return v.clone();
        }
        let v = gvm.global_slot_value(slot);
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i] = Some(v.clone());
        v
    }
}

/// Run until completion or suspension. On entry, `resume` (if provided)
/// is pushed onto the top frame's operand stack — the value "returned by"
/// the yield that suspended the fiber.
///
/// `low` is the dirty-tracking watermark: the interpreter only ever
/// mutates the top frame (value ops, calls, returns, restart transfers
/// all work through `top`/push/pop/truncate), so the minimum stack depth
/// observed between steps bounds the damage — every frame below
/// `low - 1` is byte-identical to what the caller passed in. Continuation
/// resumption replaces the whole stack and drops the watermark to 0.
/// Nested activations pass a throwaway.
pub(crate) fn interp(
    gvm: &Arc<Gvm>,
    frames: &mut Vec<Frame>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    nested: bool,
    resume: Option<Value>,
    low: &mut usize,
) -> VmResult<InterpOutcome> {
    if let Some(v) = resume {
        let f = frames
            .last_mut()
            .ok_or_else(|| VmError::msg("cannot resume a finished fiber"))?;
        f.stack.push(v);
    }
    // Optimization switches are sampled once per activation.
    let opt = gvm.opt();
    let mut pool = FramePool::new(opt.frame_pool);
    let mut gcache = GlobalCache::new(opt.inline_caches);
    // One enabled check per activation; a disabled profiler costs an
    // `Option` test per step from here on. Dropping the scope (any exit
    // path) attributes whatever is still open.
    let mut prof = gvm.profiler().scope(frames);
    loop {
        match run_loop(
            gvm, frames, ds, ids, ext, nested, &mut prof, low, &mut pool, &opt, &mut gcache,
        ) {
            Ok(Flow::Continue) => unreachable!("run_loop never yields Continue"),
            Ok(Flow::Done(v)) => return Ok(InterpOutcome::Done(v)),
            Ok(Flow::Suspend(payload)) => {
                // Close timing segments *before* the determination wait
                // below: time blocked on futures (whose bodies profile
                // under their own activations) is not charged here, just
                // like the suspended interval that follows.
                if let Some(p) = prof.as_mut() {
                    p.suspend_closeout();
                }
                // §4.1: the continuation only becomes available once every
                // future it references is determined.
                determine_frames(frames)?;
                *low = (*low).min(frames.len());
                return Ok(InterpOutcome::Suspended(payload));
            }
            Err(e) => {
                if !try_restart_transfer(&e, frames, ds)? {
                    return Err(e);
                }
                *low = (*low).min(frames.len());
                if let Some(p) = prof.as_mut() {
                    p.on_truncate(frames.len());
                }
            }
        }
    }
}

/// Attempt to perform a restart transfer for `e` within this activation:
/// unwind the frame stack to the establishing frame, reset its operand
/// stack and pc, restore the dynamic stacks, and deliver the restart
/// arguments as a single list value. Returns true when the transfer was
/// performed; foreign restarts (owned by an outer activation) are left
/// for their owner.
fn try_restart_transfer(
    e: &VmError,
    frames: &mut Vec<Frame>,
    ds: &mut DynState,
) -> VmResult<bool> {
    let VmError::Unwind(Unwind::Restart { id, args }) = e else {
        return Ok(false);
    };
    let Some(pos) = ds
        .restarts
        .iter()
        .rposition(|r| r.id == *id && !r.foreign)
    else {
        return Ok(false);
    };
    let entry = ds.restarts[pos].clone();
    frames.truncate(entry.frame_depth as usize + 1);
    let f = frames
        .last_mut()
        .ok_or_else(|| VmError::msg("restart transfer into empty stack"))?;
    f.stack.truncate(entry.stack_depth as usize);
    f.pc = entry.target_pc;
    ds.handlers.truncate(entry.handlers_len as usize);
    ds.restarts.truncate(entry.restarts_len as usize);
    f.stack.push(Value::list(args.clone()));
    Ok(true)
}

/// Work the inner dispatch loop cannot finish against the top frame
/// alone — it breaks out and the outer loop handles it with the full
/// frame stack in scope.
enum Pending {
    Call { n: u16, tail: bool, after: AfterCall },
    Return,
    PushCC,
}

/// The fetch/dispatch loop. Runs instructions until the activation
/// finishes (`Done`), suspends (`Suspend`), or an error propagates — the
/// caller handles restart transfers and re-enters.
///
/// Structured as two nested loops: the inner loop borrows the top frame
/// *once* and dispatches every instruction that only touches that frame
/// (the overwhelming majority), so the frame's pc/stack stay in
/// registers. Instructions that grow or shrink the frame stack — calls,
/// returns, continuation capture — break out with a [`Pending`] action,
/// the outer loop applies it with full access to `frames`, and the inner
/// loop re-borrows whatever frame is then on top.
#[allow(clippy::too_many_arguments)]
fn run_loop(
    gvm: &Arc<Gvm>,
    frames: &mut Vec<Frame>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    nested: bool,
    prof: &mut Option<ProfScope<'_>>,
    low: &mut usize,
    pool: &mut FramePool,
    opt: &OptConfig,
    gcache: &mut GlobalCache,
) -> VmResult<Flow> {
    loop {
        let flen = frames.len();
        let f = frames
            .last_mut()
            .ok_or_else(|| VmError::msg("interpreter entered with no frames"))?;
        // Split the frame into disjoint field borrows so the chunk (and its
        // code slice) hoist out of the dispatch loop — nothing dispatched
        // here changes the running chunk; anything that could breaks out.
        let Frame {
            program,
            chunk: cur_chunk,
            pc,
            locals,
            stack,
            captures,
        } = f;
        let program: &ProgramRef = program;
        let cur_chunk = *cur_chunk;
        let chunk = program.chunk(cur_chunk);
        let code = &chunk.code[..];
        let pending = loop {
            let op = *code.get(*pc as usize).ok_or_else(|| {
                VmError::Bytecode(format!(
                    "pc {} ran off the end of chunk {} ({}, len {})",
                    pc,
                    cur_chunk,
                    chunk.name,
                    code.len()
                ))
            })?;
            *pc += 1;
            if let Some(p) = prof.as_mut() {
                // Fused ops count as their *first* constituent here; the fused
                // arms below credit the second at the matching execution point.
                p.count_op(&op);
            }
            match op {
                Op::Const(i) => {
                    let v = program.consts[i as usize].clone();
                    stack.push(v);
                }
                Op::Nil => stack.push(Value::Nil),
                Op::True => stack.push(Value::Bool(true)),
                Op::Pop => {
                    stack
                        .pop()
                        .ok_or_else(|| VmError::msg("operand stack underflow"))?;
                }
                Op::Dup => {
                    let v = stack
                        .last()
                        .cloned()
                        .ok_or_else(|| VmError::msg("dup on empty stack"))?;
                    stack.push(v);
                }
                Op::LoadLocal(slot) => {
                    let v = locals[slot as usize].clone();
                    stack.push(v);
                }
                Op::StoreLocal(slot) => {
                    let v = stack
                        .pop()
                        .ok_or_else(|| VmError::msg("operand stack underflow"))?;
                    locals[slot as usize] = v;
                }
                Op::TakeLocal(slot) => {
                    let v = std::mem::replace(&mut locals[slot as usize], Value::Nil);
                    stack.push(v);
                }
                Op::LoadCapture(i) => {
                    let v = captures[i as usize].clone();
                    stack.push(v);
                }
                Op::LoadGlobal(c) => {
                    let ic_pc = (*pc - 1) as usize;
                    match load_global(gvm, program, chunk, c, ic_pc, opt.inline_caches, gcache)? {
                        Some(v) => stack.push(v),
                        None => return Err(unbound_global(gvm, program, ds, ids, ext, c)),
                    }
                }
                // StoreGlobal and DefGlobal share semantics at runtime: both
                // write the named global unconditionally (`defvar`'s
                // define-if-unbound check is compiled away before this point).
                // They remain distinct opcodes only for the disassembler and
                // the profiler's per-opcode counts.
                Op::StoreGlobal(c) | Op::DefGlobal(c) => {
                    let sym = const_symbol(program, c)?;
                    let v = stack
                        .pop()
                        .ok_or_else(|| VmError::msg("operand stack underflow"))?;
                    gvm.set_global(sym, v);
                }
                Op::Jump(off) => {
                    *pc = (*pc as i64 + off as i64) as u32;
                }
                Op::JumpIfFalse(off) => {
                    let v = stack
                        .pop()
                        .ok_or_else(|| VmError::msg("operand stack underflow"))?;
                    let v = force(v)?;
                    if !v.is_truthy() {
                        *pc = (*pc as i64 + off as i64) as u32;
                    }
                }
                Op::JumpIfTrue(off) => {
                    let v = stack
                        .pop()
                        .ok_or_else(|| VmError::msg("operand stack underflow"))?;
                    let v = force(v)?;
                    if v.is_truthy() {
                        *pc = (*pc as i64 + off as i64) as u32;
                    }
                }
                Op::Call(n) => {
                    // Two-int native arithmetic completes without leaving
                    // the inner loop; everything else is a Pending::Call.
                    if opt.fast_paths && n == 2 {
                        if let Some(v) = try_fast2(stack) {
                            stack.push(v);
                            continue;
                        }
                    }
                    break Pending::Call { n, tail: false, after: AfterCall::Push };
                }
                Op::TailCall(n) => {
                    // A native in tail position pushes its value like the
                    // generic path does (the following Return pops the
                    // frame), so fast2 applies here too.
                    if opt.fast_paths && n == 2 {
                        if let Some(v) = try_fast2(stack) {
                            stack.push(v);
                            continue;
                        }
                    }
                    break Pending::Call { n, tail: true, after: AfterCall::Push };
                }
                Op::Return => break Pending::Return,
                Op::MakeClosure(ci) => {
                    let target = program.chunk(ci);
                    let caps: Vec<Value> = target
                        .captures
                        .iter()
                        .map(|src| match src {
                            CaptureSource::Local(slot) => locals[*slot as usize].clone(),
                            CaptureSource::Capture(i) => captures[*i as usize].clone(),
                        })
                        .collect();
                    let closure = Value::Func(Arc::new(Closure {
                        program: program.clone(),
                        chunk: ci,
                        captures: Arc::new(caps),
                    }));
                    stack.push(closure);
                }
                Op::MakeList(n) => {
                    let items = popn_stack(stack, n as usize)?;
                    stack.push(Value::list(items));
                }
                Op::MakeVector(n) => {
                    let items = popn_stack(stack, n as usize)?;
                    stack.push(Value::vector(items));
                }
                Op::MakeMap(n) => {
                    let items = popn_stack(stack, 2 * n as usize)?;
                    let mut m = gozer_lang::AssocMap::new();
                    let mut it = items.into_iter();
                    while let (Some(k), Some(v)) = (it.next(), it.next()) {
                        m.insert(k, v);
                    }
                    stack.push(Value::Map(Arc::new(m)));
                }
                Op::Yield => {
                    let payload = stack
                        .pop()
                        .ok_or_else(|| VmError::msg("operand stack underflow"))?;
                    if nested {
                        return Err(VmError::Unwind(Unwind::YieldFromNested));
                    }
                    return Ok(Flow::Suspend(payload));
                }
                Op::PushCC => break Pending::PushCC,
                Op::PushHandler => {
                    let func = stack
                        .pop()
                        .ok_or_else(|| VmError::msg("operand stack underflow"))?;
                    ds.handlers.push(HandlerEntry { func });
                }
                Op::PopHandlers(n) => {
                    let new_len = ds.handlers.len().saturating_sub(n as usize);
                    ds.handlers.truncate(new_len);
                }
                Op::PushRestart { name, offset } => {
                    let sym = program.consts[name as usize]
                        .as_symbol()
                        .ok_or_else(|| VmError::msg("restart name constant must be a symbol"))?;
                    let target_pc = (*pc as i64 + offset as i64) as u32;
                    *ids += 1;
                    ds.restarts.push(RestartEntry {
                        id: *ids,
                        name: sym,
                        frame_depth: (flen - 1) as u32,
                        stack_depth: stack.len() as u32,
                        target_pc,
                        handlers_len: ds.handlers.len() as u32,
                        restarts_len: ds.restarts.len() as u32,
                        foreign: false,
                    });
                }
                Op::PopRestarts(n) => {
                    let new_len = ds.restarts.len().saturating_sub(n as usize);
                    ds.restarts.truncate(new_len);
                }

                // ---- superinstructions --------------------------------------
                //
                // Each fused arm replicates its constituents *exactly* — same
                // pc at every fallible point, same profiler count stream —
                // and skips the pc past the retained second slot on the paths
                // that complete both halves. Suspension and closure-call
                // paths deliberately leave the pc at the second slot so the
                // retained original instruction runs on return/resume.
                Op::LoadLocal2(a, b) => {
                    let v = locals[a as usize].clone();
                    stack.push(v);
                    if let Some(p) = prof.as_mut() {
                        p.count_idx(IDX_LOAD_LOCAL);
                    }
                    let v = locals[b as usize].clone();
                    stack.push(v);
                    *pc += 1;
                }
                Op::LoadLocalConst(s, c) => {
                    let v = locals[s as usize].clone();
                    stack.push(v);
                    if let Some(p) = prof.as_mut() {
                        p.count_idx(IDX_CONST);
                    }
                    let v = program.consts[c as usize].clone();
                    stack.push(v);
                    *pc += 1;
                }
                Op::GlobalLocal(g, s) => {
                    // The global resolves before the pc advances: an unbound
                    // error surfaces at the fused slot's pc, exactly like the
                    // unfused LoadGlobal.
                    let ic_pc = (*pc - 1) as usize;
                    match load_global(gvm, program, chunk, g, ic_pc, opt.inline_caches, gcache)? {
                        Some(v) => stack.push(v),
                        None => return Err(unbound_global(gvm, program, ds, ids, ext, g)),
                    }
                    if let Some(p) = prof.as_mut() {
                        p.count_idx(IDX_LOAD_LOCAL);
                    }
                    let v = locals[s as usize].clone();
                    stack.push(v);
                    *pc += 1;
                }
                Op::ConstCall(c, n) => {
                    let v = program.consts[c as usize].clone();
                    stack.push(v);
                    if let Some(p) = prof.as_mut() {
                        p.count_idx(IDX_CALL);
                    }
                    // Advance past the retained Call before the call logic
                    // runs, so suspensions and errors observe the unfused pc.
                    *pc += 1;
                    if opt.fast_paths && n == 2 {
                        if let Some(v) = try_fast2(stack) {
                            stack.push(v);
                            continue;
                        }
                    }
                    break Pending::Call { n, tail: false, after: AfterCall::Push };
                }
                Op::LoadLocalCall(s, n) => {
                    let v = locals[s as usize].clone();
                    stack.push(v);
                    if let Some(p) = prof.as_mut() {
                        p.count_idx(IDX_CALL);
                    }
                    *pc += 1;
                    if opt.fast_paths && n == 2 {
                        if let Some(v) = try_fast2(stack) {
                            stack.push(v);
                            continue;
                        }
                    }
                    break Pending::Call { n, tail: false, after: AfterCall::Push };
                }
                Op::CallBranchFalse(n, off) => {
                    // The pc stays at the retained JumpIfFalse: closure pushes
                    // return into it, and suspensions resume into it. Only the
                    // immediate-value path consumes it — including the inline
                    // fast2 hit, which performs the retained branch exactly
                    // like `finish_call_value`.
                    if opt.fast_paths && n == 2 {
                        if let Some(v) = try_fast2(stack) {
                            if let Some(p) = prof.as_mut() {
                                p.count_idx(IDX_JUMP_IF_FALSE);
                            }
                            *pc += 1;
                            let v = force(v)?;
                            if !v.is_truthy() {
                                *pc = (*pc as i64 + off as i64) as u32;
                            }
                            continue;
                        }
                    }
                    break Pending::Call { n, tail: false, after: AfterCall::BranchFalse(off) };
                }
                Op::DupStore(slot) => {
                    // Dup; StoreLocal — net effect: the top of stack stays
                    // put and the local gets a copy of it.
                    let v = stack
                        .last()
                        .cloned()
                        .ok_or_else(|| VmError::msg("dup on empty stack"))?;
                    if let Some(p) = prof.as_mut() {
                        p.count_idx(IDX_STORE_LOCAL);
                    }
                    locals[slot as usize] = v;
                    *pc += 1;
                }
                Op::PopJump(off) => {
                    stack
                        .pop()
                        .ok_or_else(|| VmError::msg("operand stack underflow"))?;
                    if let Some(p) = prof.as_mut() {
                        p.count_idx(IDX_JUMP);
                    }
                    // The retained Jump's offset is relative to its own
                    // slot: advance past it first, then apply.
                    *pc += 1;
                    *pc = (*pc as i64 + off as i64) as u32;
                }
                Op::GlobalLocal2Call(g, a, b) => {
                    // The whole `(op local local)` call: on the two-int
                    // native fast path only the *result* touches the
                    // operand stack — no callee clone, no argument
                    // pushes. Anything else reconstructs the unfused
                    // stack shape and takes the generic call path.
                    let ic_pc = (*pc - 1) as usize;
                    let callee =
                        match load_global(gvm, program, chunk, g, ic_pc, opt.inline_caches, gcache)? {
                            Some(v) => v,
                            None => return Err(unbound_global(gvm, program, ds, ids, ext, g)),
                        };
                    if let Some(p) = prof.as_mut() {
                        p.count_idx(IDX_LOAD_LOCAL);
                        p.count_idx(IDX_LOAD_LOCAL);
                        p.count_idx(IDX_CALL);
                    }
                    *pc += 3;
                    if opt.fast_paths {
                        if let (Value::Int(x), Value::Int(y)) =
                            (&locals[a as usize], &locals[b as usize])
                        {
                            if let Some(v) =
                                fast2_of(&callee).and_then(|op2| fast2_apply(op2, *x, *y))
                            {
                                stack.push(v);
                                continue;
                            }
                        }
                    }
                    stack.push(callee);
                    stack.push(locals[a as usize].clone());
                    stack.push(locals[b as usize].clone());
                    break Pending::Call { n: 2, tail: false, after: AfterCall::Push };
                }
                Op::GlobalLocalConstCall(g, s, c) => {
                    let ic_pc = (*pc - 1) as usize;
                    let callee =
                        match load_global(gvm, program, chunk, g, ic_pc, opt.inline_caches, gcache)? {
                            Some(v) => v,
                            None => return Err(unbound_global(gvm, program, ds, ids, ext, g)),
                        };
                    if let Some(p) = prof.as_mut() {
                        p.count_idx(IDX_LOAD_LOCAL);
                        p.count_idx(IDX_CONST);
                        p.count_idx(IDX_CALL);
                    }
                    *pc += 3;
                    if opt.fast_paths {
                        if let (Value::Int(x), Value::Int(y)) =
                            (&locals[s as usize], &program.consts[c as usize])
                        {
                            if let Some(v) =
                                fast2_of(&callee).and_then(|op2| fast2_apply(op2, *x, *y))
                            {
                                stack.push(v);
                                continue;
                            }
                        }
                    }
                    stack.push(callee);
                    stack.push(locals[s as usize].clone());
                    stack.push(program.consts[c as usize].clone());
                    break Pending::Call { n: 2, tail: false, after: AfterCall::Push };
                }
            }
        };
        match pending {
            Pending::Call { n, tail, after } => {
                match do_call(
                    gvm, frames, ds, ids, ext, nested, prof, low, pool, opt, n, tail, after,
                )? {
                    Flow::Continue => {}
                    other => return Ok(other),
                }
            }
            Pending::Return => {
                if let Some(p) = prof.as_mut() {
                    p.on_return();
                }
                let mut f = frames.pop().expect("return from nothing");
                let v = f
                    .stack
                    .pop()
                    .ok_or_else(|| VmError::msg("return with empty stack"))?;
                pool.recycle(f);
                // The only in-loop point where the stack shrinks.
                *low = (*low).min(frames.len());
                match frames.last_mut() {
                    None => return Ok(Flow::Done(v)),
                    Some(caller) => caller.stack.push(v),
                }
            }
            Pending::PushCC => {
                // Determine futures first, then snapshot. The snapshot's pc
                // is already past PushCC; resuming it delivers a value
                // exactly where the live path sees the continuation object.
                determine_frames(frames)?;
                let state = FiberState {
                    frames: frames.clone(),
                    dyn_state: ds.clone(),
                    next_restart_id: *ids,
                    ext: ext.clone(),
                    clean_prefix: 0,
                };
                top(frames)
                    .stack
                    .push(Value::Opaque(Arc::new(ContinuationVal { state })));
            }
        }
    }
}

/// The full `Call`/`TailCall` implementation, shared by the plain arms
/// and the fused call variants. On entry the operand stack holds
/// `[..., callee, arg1..argN]` and the pc is already past the
/// instruction(s) the call belongs to.
#[allow(clippy::too_many_arguments)]
fn do_call(
    gvm: &Arc<Gvm>,
    frames: &mut Vec<Frame>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    nested: bool,
    prof: &mut Option<ProfScope<'_>>,
    low: &mut usize,
    pool: &mut FramePool,
    opt: &OptConfig,
    n: u16,
    tail: bool,
    after: AfterCall,
) -> VmResult<Flow> {
    if opt.fast_paths && try_simple_call(frames, prof, pool, n, tail) {
        return Ok(Flow::Continue);
    }
    do_call_generic(
        gvm, frames, ds, ids, ext, nested, prof, low, pool, opt, n, tail, after,
    )
}

/// Simple closure call: required-only parameters, exact arity. Arguments
/// move straight off the caller's stack into a pooled frame — no argument
/// vector, no `force` (a `Value::Func` is never a future), no
/// `bind_params`. Returns `false` when the callee doesn't fit, leaving
/// the operand stack untouched for the generic path. Kept small (and
/// apart from the generic machinery) so it inlines into the dispatch
/// loop's call handling.
#[inline]
fn try_simple_call(
    frames: &mut Vec<Frame>,
    prof: &mut Option<ProfScope<'_>>,
    pool: &mut FramePool,
    n: u16,
    tail: bool,
) -> bool {
    let f = top(frames);
    let simple = {
        let len = f.stack.len();
        len.checked_sub(n as usize + 1).and_then(|base| {
            let cl = f.stack[base].as_callable::<Closure>()?;
            let chunk = cl.program.chunk(cl.chunk);
            let p = &chunk.params;
            (p.optional.is_empty()
                && p.rest.is_none()
                && p.keys.is_empty()
                && p.required.len() == n as usize)
                .then_some((cl.chunk, chunk.local_count, base))
        })
    };
    let Some((chunk_idx, local_count, base)) = simple else {
        return false;
    };
    // A recycled frame usually already carries the callee's program and
    // captures (hot recursion re-enters the closure it just left), so its
    // Arcs are reused by pointer identity — the hot path touches no
    // refcount at all. Only a pool miss or a different callee clones.
    let (mut frame, from_pool) = match pool.free.pop() {
        Some(fr) => (fr, true),
        None => {
            let cl = f.stack[base]
                .as_callable::<Closure>()
                .expect("probed as closure above");
            let fresh = Frame {
                program: cl.program.clone(),
                chunk: chunk_idx,
                pc: 0,
                locals: Vec::with_capacity(local_count as usize),
                stack: Vec::with_capacity(8),
                captures: cl.captures.clone(),
            };
            (fresh, false)
        }
    };
    if n == 1 {
        // The dominant arity; a straight pop/push skips the
        // drain iterator machinery.
        let arg = f.stack.pop().expect("arity checked above");
        frame.locals.push(arg);
    } else {
        frame.locals.extend(f.stack.drain(base + 1..));
    }
    frame.locals.resize(local_count as usize, Value::Nil);
    let callee = f.stack.pop().expect("arity checked above");
    if from_pool {
        let cl = callee
            .as_callable::<Closure>()
            .expect("probed as closure above");
        if !Arc::ptr_eq(&frame.program, &cl.program) {
            frame.program = cl.program.clone();
        }
        frame.chunk = chunk_idx;
        frame.pc = 0;
        if !Arc::ptr_eq(&frame.captures, &cl.captures) {
            frame.captures = cl.captures.clone();
        }
    }
    drop(callee);
    if let Some(p) = prof.as_mut() {
        if tail {
            p.on_tail_call(&frame);
        } else {
            p.on_push(&frame);
        }
    }
    if tail {
        let old = std::mem::replace(top(frames), frame);
        pool.recycle(old);
    } else {
        frames.push(frame);
    }
    true
}

/// The generic (slow-path) half of [`do_call`]: argument vector, `force`,
/// full `bind_params`, natives, continuations and callable fallbacks.
/// Out of line so its machinery doesn't bloat the dispatch loop.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn do_call_generic(
    gvm: &Arc<Gvm>,
    frames: &mut Vec<Frame>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    nested: bool,
    prof: &mut Option<ProfScope<'_>>,
    low: &mut usize,
    pool: &mut FramePool,
    opt: &OptConfig,
    n: u16,
    tail: bool,
    after: AfterCall,
) -> VmResult<Flow> {
    // Two-int native calls that escape the fused arms — `(+ r1 r2)` on
    // two call results, a compare against a computed bound — land here;
    // resolve them without materializing the args vector. try_fast2
    // bails on overflow or a non-fast2 callee, falling through to the
    // full machinery. For a TailCall the value lands on the current
    // frame's stack and the following Return pops the frame, exactly
    // like the generic native path below.
    if opt.fast_paths && n == 2 {
        if let Some(v) = try_fast2(&mut top(frames).stack) {
            return finish_call_value(frames, prof, after, v);
        }
    }
    // Generic path.
    let mut args = {
        let f = top(frames);
        let at = f
            .stack
            .len()
            .checked_sub(n as usize)
            .ok_or_else(|| VmError::Bytecode("call: operand stack underflow".into()))?;
        f.stack.split_off(at)
    };
    let callee = pop(frames)?;
    // The Invoke outcome loops here so funcall/apply chains stay
    // iterative.
    let mut callee = force(callee)?;
    loop {
        if callee.as_callable::<Closure>().is_some() {
            let frame = frame_for_closure(gvm, ds, ids, ext, &callee, args)?;
            if let Some(p) = prof.as_mut() {
                if tail {
                    p.on_tail_call(&frame);
                } else {
                    p.on_push(&frame);
                }
            }
            if tail {
                let old = std::mem::replace(top(frames), frame);
                pool.recycle(old);
            } else {
                frames.push(frame);
            }
            return Ok(Flow::Continue);
        }
        if let Some(nf) = callee.as_callable::<NativeFn>() {
            if !nf.raw {
                force_all(&mut args)?;
            }
            let mut ctx = NativeCtx {
                gvm,
                ds,
                ids,
                ext,
                nested,
            };
            match (nf.func)(&mut ctx, args)? {
                NativeOutcome::Value(v) => {
                    return finish_call_value(frames, prof, after, v);
                }
                NativeOutcome::Invoke { func, args: a } => {
                    callee = force(func)?;
                    args = a;
                    continue;
                }
                NativeOutcome::Yield { payload } => {
                    if nested {
                        return Err(VmError::Unwind(Unwind::YieldFromNested));
                    }
                    // For CallBranchFalse the pc is at the retained
                    // JumpIfFalse; the resume value lands on the stack
                    // and the original branch runs — identical to the
                    // unfused suspension.
                    return Ok(Flow::Suspend(payload));
                }
                NativeOutcome::ResumeContinuation { state, value } => {
                    *frames = state.frames;
                    *ds = state.dyn_state;
                    *ids = state.next_restart_id;
                    *ext = state.ext;
                    // Wholesale frame replacement: nothing of the
                    // incoming stack survives, so no clean prefix. Any
                    // pending `after` belonged to the abandoned frame.
                    *low = 0;
                    if let Some(p) = prof.as_mut() {
                        p.on_replace(frames);
                    }
                    top(frames).stack.push(value);
                    return Ok(Flow::Continue);
                }
            }
        }
        return Err(raise(
            gvm,
            ds,
            ids,
            ext,
            Condition::type_error("function", &callee),
        ));
    }
}

/// Deliver a call's immediate result per `after`. For `BranchFalse`
/// this *is* the retained `JumpIfFalse`: it is counted, the pc advances
/// past it, and the branch is taken on a false value — the same count
/// stream, pc and forcing behavior as executing the slot itself.
fn finish_call_value(
    frames: &mut [Frame],
    prof: &mut Option<ProfScope<'_>>,
    after: AfterCall,
    v: Value,
) -> VmResult<Flow> {
    match after {
        AfterCall::Push => top(frames).stack.push(v),
        AfterCall::BranchFalse(off) => {
            if let Some(p) = prof.as_mut() {
                p.count_idx(IDX_JUMP_IF_FALSE);
            }
            top(frames).pc += 1;
            let v = force(v)?;
            if !v.is_truthy() {
                jump(frames, off);
            }
        }
    }
    Ok(Flow::Continue)
}

/// Attempt the two-int native fast path on a `[..., callee, a, b]` stack
/// top: a native with a [`Fast2`] discriminant applied to two `Int`s
/// computes in place — no argument vector, no future forcing (an Int is
/// never a future). On a hit the three operands are popped and the
/// result returned; any other shape (including overflow) returns `None`
/// with the stack untouched, and the generic native owns the semantics.
#[inline]
fn try_fast2(stack: &mut Vec<Value>) -> Option<Value> {
    let len = stack.len();
    if len < 3 {
        return None;
    }
    let (Value::Int(a), Value::Int(b)) = (&stack[len - 2], &stack[len - 1]) else {
        return None;
    };
    let (a, b) = (*a, *b);
    let op2 = fast2_of(&stack[len - 3])?;
    let v = fast2_apply(op2, a, b)?;
    stack.truncate(len - 3);
    Some(v)
}

/// The [`Fast2`] discriminant of a native callee, if it has one.
#[inline]
fn fast2_of(callee: &Value) -> Option<Fast2> {
    let Value::Func(func) = callee else {
        return None;
    };
    func.as_any().downcast_ref::<NativeFn>().and_then(|nf| nf.fast2)
}

/// The two-int fast paths, mirroring the generic natives exactly:
/// checked integer arithmetic (`None` on overflow → generic float
/// promotion), comparisons through `f64` like `cmp_chain`.
fn fast2_apply(op: Fast2, a: i64, b: i64) -> Option<Value> {
    let bool_val = |x: bool| if x { Value::Bool(true) } else { Value::Nil };
    Some(match op {
        Fast2::Add => Value::Int(a.checked_add(b)?),
        Fast2::Sub => Value::Int(a.checked_sub(b)?),
        Fast2::Mul => Value::Int(a.checked_mul(b)?),
        Fast2::Lt => bool_val((a as f64) < (b as f64)),
        Fast2::Gt => bool_val((a as f64) > (b as f64)),
        Fast2::Le => bool_val((a as f64) <= (b as f64)),
        Fast2::Ge => bool_val((a as f64) >= (b as f64)),
        Fast2::NumEq => bool_val((a as f64) == (b as f64)),
        Fast2::NumNe => bool_val((a as f64) != (b as f64)),
    })
}

/// Resolve the global named by constant `c`, consulting (and refilling)
/// the chunk's per-pc inline cache and the activation-local value cache.
/// `None` means unbound — the caller raises; unbound names are never
/// cached. Only the cache-hit check stays in the caller's code path; the
/// resolve-and-stamp path is kept out of line so it doesn't bloat the
/// dispatch loop.
fn load_global(
    gvm: &Gvm,
    program: &Program,
    chunk: &Chunk,
    c: u32,
    ic_pc: usize,
    use_ic: bool,
    gcache: &mut GlobalCache,
) -> VmResult<Option<Value>> {
    if use_ic {
        if let Some(cell) = chunk.ic.get(ic_pc) {
            let packed = cell.load(Ordering::Acquire);
            let cached_gen = (packed >> 32) as u32;
            if cached_gen != 0 && cached_gen == gvm.global_generation() {
                return Ok(Some(gcache.get(gvm, packed as u32)));
            }
            return load_global_miss(gvm, program, c, cell, gcache);
        }
    }
    let sym = const_symbol(program, c)?;
    Ok(gvm.get_global(sym))
}

/// The inline-cache miss path: resolve, then stamp with the generation
/// read *before* the lookup — a racing new definition leaves a stale
/// stamp, which just re-resolves next time.
#[inline(never)]
fn load_global_miss(
    gvm: &Gvm,
    program: &Program,
    c: u32,
    cell: &std::sync::atomic::AtomicU64,
    gcache: &mut GlobalCache,
) -> VmResult<Option<Value>> {
    let gen = gvm.global_generation();
    let sym = const_symbol(program, c)?;
    let Some(slot) = gvm.lookup_global_slot(sym) else {
        return Ok(None);
    };
    cell.store(((gen as u64) << 32) | slot as u64, Ordering::Release);
    Ok(Some(gcache.get(gvm, slot)))
}

/// Build the unbound-variable error for constant `c`, routing through the
/// condition system first.
fn unbound_global(
    gvm: &Arc<Gvm>,
    program: &Program,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    c: u32,
) -> VmError {
    let sym = match const_symbol(program, c) {
        Ok(s) => s,
        Err(e) => return e,
    };
    raise(
        gvm,
        ds,
        ids,
        ext,
        Condition::with_types(
            vec!["unbound-variable".into(), "error".into()],
            format!("unbound variable: {}", sym.name()),
            Value::Symbol(sym),
        ),
    )
}

// ---- helpers -----------------------------------------------------------

fn top(frames: &mut [Frame]) -> &mut Frame {
    frames.last_mut().expect("frame stack empty")
}

fn pop(frames: &mut [Frame]) -> VmResult<Value> {
    top(frames)
        .stack
        .pop()
        .ok_or_else(|| VmError::msg("operand stack underflow"))
}

fn popn_stack(stack: &mut Vec<Value>, n: usize) -> VmResult<Vec<Value>> {
    if stack.len() < n {
        return Err(VmError::msg("operand stack underflow"));
    }
    let at = stack.len() - n;
    Ok(stack.split_off(at))
}

fn jump(frames: &mut [Frame], off: i32) {
    let f = top(frames);
    f.pc = (f.pc as i64 + off as i64) as u32;
}

fn const_symbol(program: &Program, c: u32) -> VmResult<gozer_lang::Symbol> {
    program.consts[c as usize]
        .as_symbol()
        .ok_or_else(|| VmError::msg("expected symbol constant"))
}

/// Wait for every future reachable from the frame stack.
fn determine_frames(frames: &[Frame]) -> VmResult<()> {
    for f in frames {
        for v in f.locals.iter().chain(f.stack.iter()).chain(f.captures.iter()) {
            determine_deep(v)?;
        }
    }
    Ok(())
}

/// Build the activation frame for calling `callee` (a closure) on `args`.
pub(crate) fn frame_for_closure(
    gvm: &Arc<Gvm>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    callee: &Value,
    args: Vec<Value>,
) -> VmResult<Frame> {
    let cl = callee
        .as_callable::<Closure>()
        .ok_or_else(|| VmError::type_error("closure", callee))?;
    let chunk = cl.program.chunk(cl.chunk);
    let locals = match bind_params(&chunk.params, args, &chunk.name) {
        Ok(l) => l,
        Err(cond) => return Err(raise(gvm, ds, ids, ext, cond)),
    };
    let mut all_locals = locals;
    all_locals.resize(chunk.local_count as usize, Value::Nil);
    Ok(Frame {
        program: cl.program.clone(),
        chunk: cl.chunk,
        pc: 0,
        locals: all_locals,
        stack: Vec::with_capacity(8),
        captures: cl.captures.clone(),
    })
}

/// Bind `args` against `spec`, producing the parameter slot values.
fn bind_params(spec: &ParamSpec, mut args: Vec<Value>, fn_name: &str) -> Result<Vec<Value>, Condition> {
    let nreq = spec.required.len();
    if args.len() < nreq {
        return Err(Condition::with_types(
            vec!["program-error".into(), "error".into()],
            format!(
                "{fn_name}: expected at least {nreq} argument(s), got {}",
                args.len()
            ),
            Value::Nil,
        ));
    }
    let mut slots: Vec<Value> = Vec::with_capacity(spec.slot_count());
    let rest_args = args.split_off(nreq.min(args.len()));
    slots.extend(args);
    let mut remaining = rest_args.into_iter();
    for (_, default) in &spec.optional {
        match remaining.next() {
            Some(v) => slots.push(v),
            None => slots.push(default.clone()),
        }
    }
    let leftover: Vec<Value> = remaining.collect();
    if spec.rest.is_some() {
        slots.push(Value::list(leftover.clone()));
    }
    if !spec.keys.is_empty() {
        // Parse keyword pairs from the leftover arguments.
        if !leftover.len().is_multiple_of(2) {
            return Err(Condition::with_types(
                vec!["program-error".into(), "error".into()],
                format!("{fn_name}: odd number of keyword arguments"),
                Value::Nil,
            ));
        }
        let mut key_vals: Vec<Value> = spec.keys.iter().map(|(_, d)| d.clone()).collect();
        let mut i = 0;
        while i < leftover.len() {
            let Some(kw) = leftover[i].as_keyword() else {
                return Err(Condition::with_types(
                    vec!["program-error".into(), "error".into()],
                    format!("{fn_name}: expected a keyword, got {:?}", leftover[i]),
                    Value::Nil,
                ));
            };
            match spec.keys.iter().position(|(k, _)| *k == kw) {
                Some(ki) => key_vals[ki] = leftover[i + 1].clone(),
                None => {
                    if spec.rest.is_none() {
                        return Err(Condition::with_types(
                            vec!["program-error".into(), "error".into()],
                            format!("{fn_name}: unknown keyword :{}", kw.name()),
                            Value::Nil,
                        ));
                    }
                }
            }
            i += 2;
        }
        slots.extend(key_vals);
    } else if spec.rest.is_none() && !leftover.is_empty() {
        return Err(Condition::with_types(
            vec!["program-error".into(), "error".into()],
            format!(
                "{fn_name}: too many arguments ({} extra)",
                leftover.len()
            ),
            Value::Nil,
        ));
    }
    Ok(slots)
}

/// Call a Gozer function from Rust, in a nested (non-suspendable)
/// activation sharing the fiber's dynamic state and extension map.
pub(crate) fn call_nested(
    gvm: &Arc<Gvm>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    func: Value,
    args: Vec<Value>,
) -> VmResult<Value> {
    let mut callee = force(func)?;
    let mut args = args;
    loop {
        if callee.as_callable::<Closure>().is_some() {
            let frame = frame_for_closure(gvm, ds, ids, ext, &callee, args)?;
            let mut frames = vec![frame];
            let mut low = 0usize;
            return match interp(gvm, &mut frames, ds, ids, ext, true, None, &mut low)? {
                InterpOutcome::Done(v) => Ok(v),
                InterpOutcome::Suspended(_) => Err(VmError::Unwind(Unwind::YieldFromNested)),
            };
        }
        if let Some(nf) = callee.as_callable::<NativeFn>() {
            if !nf.raw {
                force_all(&mut args)?;
            }
            let mut ctx = NativeCtx {
                gvm,
                ds,
                ids,
                ext,
                nested: true,
            };
            match (nf.func)(&mut ctx, args)? {
                NativeOutcome::Value(v) => return Ok(v),
                NativeOutcome::Invoke { func, args: a } => {
                    callee = force(func)?;
                    args = a;
                }
                NativeOutcome::Yield { .. } => {
                    return Err(VmError::Unwind(Unwind::YieldFromNested));
                }
                NativeOutcome::ResumeContinuation { .. } => {
                    return Err(VmError::msg(
                        "cannot resume a continuation from a nested context",
                    ));
                }
            }
            continue;
        }
        return Err(VmError::type_error("function", &callee));
    }
}

/// Signal `cond` to the active handlers, innermost first. Handlers run in
/// nested activations **without unwinding** (§3.7); a handler that
/// declines simply returns and the next handler runs. Returns normally
/// when every handler declined.
pub(crate) fn do_signal(
    gvm: &Arc<Gvm>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    cond: &Condition,
) -> VmResult<()> {
    for idx in (0..ds.handlers.len()).rev() {
        let func = ds.handlers[idx].func.clone();
        // The handler sees only handlers established outside itself.
        let mut view = ds.nested_view(idx);
        call_nested(gvm, &mut view, ids, ext, func, vec![cond.value().clone()])?;
    }
    Ok(())
}

/// Signal `cond` as an *error*: if no handler transfers control, the
/// fiber fails with the condition.
pub(crate) fn raise(
    gvm: &Arc<Gvm>,
    ds: &mut DynState,
    ids: &mut u64,
    ext: &mut FiberExt,
    cond: Condition,
) -> VmError {
    match do_signal(gvm, ds, ids, ext, &cond) {
        Ok(()) => VmError::Signal(cond),
        Err(e) => e,
    }
}
