//! The Gozer Virtual Machine: the embedder-facing engine object.
//!
//! A [`Gvm`] owns the global environment (globals double as the function
//! namespace — Gozer is a Lisp-1), the macro table, the read table, the
//! program registry used to re-link migrated continuations, and the future
//! thread pool. All state is behind locks: multiple fibers of multiple
//! tasks run against one `Gvm` per node, exactly as multiple workflow
//! service threads share one JVM in production.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use gozer_lang::reader::SharedStream;
use gozer_lang::{LangError, ReadEval, Reader, Symbol, Value};
use parking_lot::{Mutex, RwLock};

use crate::bytecode::{fnv1a64, ProgramRef};
use crate::compiler::{Compiler, MacroHost};
use crate::conditions::Condition;
use crate::error::{Unwind, VmError, VmResult};
use crate::fiber::{DynState, FiberExt, FiberState, RunOutcome, Suspension};
use crate::interp::{call_nested, do_signal, frame_for_closure, interp, InterpOutcome};
use crate::pool::ThreadPool;
use crate::runtime::Closure;

/// Context handed to native functions: the VM plus the calling fiber's
/// dynamic state. Natives use it to call back into Gozer code, signal
/// conditions, and read/write the fiber extension map that Vinz uses for
/// task/fiber identity.
pub struct NativeCtx<'a> {
    /// The owning VM.
    pub gvm: &'a Arc<Gvm>,
    /// Handler/restart stacks of the calling fiber.
    pub ds: &'a mut DynState,
    /// Restart id counter of the calling fiber.
    pub ids: &'a mut u64,
    /// Fiber extension map (task id, background flag, ...).
    pub ext: &'a mut FiberExt,
    /// True when the activation cannot suspend (handler, macro, future
    /// thread). Vinz checks this to fall back to synchronous service
    /// calls (§3.2).
    pub nested: bool,
}

impl NativeCtx<'_> {
    /// Call a Gozer function synchronously (nested activation — the call
    /// cannot suspend the fiber).
    pub fn call(&mut self, func: &Value, args: Vec<Value>) -> VmResult<Value> {
        call_nested(self.gvm, self.ds, self.ids, self.ext, func.clone(), args)
    }

    /// Signal a condition to the active handlers without unwinding;
    /// returns normally when every handler declined.
    pub fn signal(&mut self, cond: &Condition) -> VmResult<()> {
        do_signal(self.gvm, self.ds, self.ids, self.ext, cond)
    }

    /// Signal a condition as an error: if no handler transfers control
    /// the fiber fails.
    pub fn raise(&mut self, cond: Condition) -> VmError {
        crate::interp::raise(self.gvm, self.ds, self.ids, self.ext, cond)
    }

    /// True when running on a fiber thread that may suspend — the
    /// `is-fiber-thread` predicate of Listing 2.
    pub fn can_yield(&self) -> bool {
        !self.nested
            && !self
                .ext
                .get("background")
                .map(Value::is_truthy)
                .unwrap_or(false)
    }
}

/// Outcome of starting or resuming a fiber, with failure folded in (Vinz
/// treats failure as a normal task outcome, not a Rust error).
pub use crate::fiber::RunOutcome as FiberRunOutcome;

/// What a [`FiberObsEvent`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FiberObsKind {
    /// A suspended continuation is about to re-enter the interpreter.
    Resumed,
    /// The fiber captured a continuation with this many live heap frames.
    Suspended {
        /// Heap frame count at capture time.
        frames: usize,
    },
    /// The fiber ran to completion (including clean `break`).
    Completed,
    /// The fiber terminated with an unhandled condition or unwind.
    Failed,
}

/// One fiber lifecycle notification, with the fiber's extension map (the
/// embedder keeps its identity — e.g. Vinz's `task-id`/`fiber-id` — in
/// there).
pub struct FiberObsEvent<'a> {
    /// What happened.
    pub kind: FiberObsKind,
    /// The fiber's extension map at the time of the event.
    pub ext: &'a FiberExt,
}

/// Observer callback installed with [`Gvm::set_fiber_observer`].
pub type FiberObserver = Arc<dyn Fn(&FiberObsEvent<'_>) + Send + Sync>;

/// The global environment as a **slot table**: name→slot resolution is
/// separated from slot→value access so the interpreter's per-callsite
/// inline caches can skip the hash lookup entirely.
///
/// Invariants the inline caches depend on:
///
/// * slots are append-only — a symbol's slot index never changes once
///   assigned, and slots are never reused;
/// * `gen` starts at 1 (cache word 0 always means "empty") and is bumped
///   **only when a new symbol is added**. Redefining an existing global
///   writes the slot in place, so hot caches stay valid across
///   redefinition and still observe the new value;
/// * lock order is `map` then `slots`, everywhere.
struct GlobalTable {
    map: RwLock<HashMap<Symbol, u32>>,
    slots: RwLock<Vec<Value>>,
    gen: AtomicU32,
    /// Bumped on *every* write (new definition or in-place update).
    /// Interpreter activations key their local value caches on this, so
    /// a cache stays valid exactly until any global changes — unlike
    /// `gen`, which only tracks the name → slot mapping.
    epoch: AtomicU64,
}

impl GlobalTable {
    fn new() -> GlobalTable {
        GlobalTable {
            map: RwLock::new(HashMap::with_capacity(256)),
            slots: RwLock::new(Vec::with_capacity(256)),
            gen: AtomicU32::new(1),
            epoch: AtomicU64::new(1),
        }
    }

    fn get(&self, name: Symbol) -> Option<Value> {
        let idx = *self.map.read().get(&name)?;
        Some(self.slots.read()[idx as usize].clone())
    }

    /// Returns the symbol's slot, assigning a fresh one (and bumping the
    /// generation) if it had none.
    fn slot_for(&self, name: Symbol, v: Value) -> u32 {
        if let Some(&idx) = self.map.read().get(&name) {
            self.slots.write()[idx as usize] = v;
            self.epoch.fetch_add(1, Ordering::Release);
            return idx;
        }
        let mut map = self.map.write();
        // Re-check under the write lock (lost race with another definer).
        if let Some(&idx) = map.get(&name) {
            self.slots.write()[idx as usize] = v;
            self.epoch.fetch_add(1, Ordering::Release);
            return idx;
        }
        let mut slots = self.slots.write();
        let idx = slots.len() as u32;
        slots.push(v);
        map.insert(name, idx);
        self.gen.fetch_add(1, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
        idx
    }

    /// Define only when unbound; true when the definition took effect.
    fn define_if_unbound(&self, name: Symbol, v: Value) -> bool {
        let mut map = self.map.write();
        if map.contains_key(&name) {
            return false;
        }
        let mut slots = self.slots.write();
        let idx = slots.len() as u32;
        slots.push(v);
        map.insert(name, idx);
        self.gen.fetch_add(1, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
        true
    }
}

/// The engine.
pub struct Gvm {
    globals: GlobalTable,
    macros: RwLock<HashMap<Symbol, Value>>,
    /// The active read table; `set-macro-character` mutates it.
    pub reader: Mutex<Reader>,
    programs: RwLock<HashMap<u64, ProgramRef>>,
    pool: Arc<ThreadPool>,
    gensym_counter: AtomicU64,
    /// Captured output of `log`/`print` for tests and the workflow trace.
    pub log: Mutex<Vec<String>>,
    /// Mirror log output to stdout.
    pub log_to_stdout: AtomicBool,
    /// Deterministic PRNG state for the `random` builtin.
    rng: Mutex<u64>,
    /// When false, `future` runs eagerly on the calling thread (used by
    /// benches to isolate distribution effects from local parallelism).
    pub futures_enabled: AtomicBool,
    /// Optional fiber suspend/resume observer (the VM leg of the
    /// observability layer).
    fiber_observer: RwLock<Option<FiberObserver>>,
    /// The execution profiler (always present, disabled by default).
    profiler: Arc<crate::profile::VmProfiler>,
    /// Interpreter optimization switches (read from `GVM_OPT` /
    /// `GVM_NO_FUSE` at construction).
    opt: RwLock<crate::opt::OptConfig>,
}

impl Gvm {
    /// Create a VM with a default-sized future pool and the standard
    /// native library installed.
    pub fn new() -> Arc<Gvm> {
        Gvm::with_pool(ThreadPool::default_size())
    }

    /// Create a VM with `n` future-pool workers.
    pub fn with_pool_size(n: usize) -> Arc<Gvm> {
        Gvm::with_pool(ThreadPool::new(n))
    }

    /// Create a VM over an existing pool (BlueBox shares one pool per
    /// node across service instances, §4.1).
    pub fn with_pool(pool: Arc<ThreadPool>) -> Arc<Gvm> {
        let gvm = Arc::new(Gvm {
            globals: GlobalTable::new(),
            macros: RwLock::new(HashMap::new()),
            reader: Mutex::new(Reader::new()),
            programs: RwLock::new(HashMap::new()),
            pool,
            gensym_counter: AtomicU64::new(0),
            log: Mutex::new(Vec::new()),
            log_to_stdout: AtomicBool::new(false),
            rng: Mutex::new(0x9E3779B97F4A7C15),
            futures_enabled: AtomicBool::new(true),
            fiber_observer: RwLock::new(None),
            profiler: Arc::new(crate::profile::VmProfiler::default()),
            opt: RwLock::new(crate::opt::OptConfig::from_env()),
        });
        crate::natives::install(&gvm);
        gvm.load_str(crate::natives::PRELUDE, "prelude")
            .expect("prelude must load");
        gvm
    }

    /// The future pool.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// The execution profiler. Enable with
    /// `gvm.profiler().set_enabled(true)`; disabled it costs one atomic
    /// load per interpreter activation plus an `Option` test per step.
    pub fn profiler(&self) -> &Arc<crate::profile::VmProfiler> {
        &self.profiler
    }

    // ---- globals / macros / programs --------------------------------

    /// Read a global binding.
    pub fn get_global(&self, name: Symbol) -> Option<Value> {
        self.globals.get(name)
    }

    /// Names of all global bindings containing `fragment` (the `apropos`
    /// builtin), sorted.
    pub fn global_names_matching(&self, fragment: &str) -> Vec<Symbol> {
        let mut names: Vec<Symbol> = self
            .globals
            .map
            .read()
            .keys()
            .filter(|s| s.name().contains(fragment))
            .copied()
            .collect();
        names.sort_by_key(|s| s.name());
        names
    }

    /// Create or overwrite a global binding.
    pub fn set_global(&self, name: Symbol, v: Value) {
        self.globals.slot_for(name, v);
    }

    /// Define only when unbound (the `defvar` contract). Returns whether
    /// the definition took effect.
    pub fn define_if_unbound(&self, name: Symbol, v: Value) -> bool {
        self.globals.define_if_unbound(name, v)
    }

    /// Current global-table generation (bumps only when a *new* symbol
    /// is defined; in-place redefinition keeps inline caches hot).
    pub(crate) fn global_generation(&self) -> u32 {
        self.globals.gen.load(Ordering::Acquire)
    }

    /// Resolve a symbol to its slot index, if bound.
    pub(crate) fn lookup_global_slot(&self, name: Symbol) -> Option<u32> {
        self.globals.map.read().get(&name).copied()
    }

    /// Read a slot directly (inline-cache hit path — no hash lookup).
    pub(crate) fn global_slot_value(&self, slot: u32) -> Value {
        self.globals.slots.read()[slot as usize].clone()
    }

    /// Current global *write* epoch: changes on every global write.
    /// Activation-local value caches are valid while this is unchanged.
    pub(crate) fn global_epoch(&self) -> u64 {
        self.globals.epoch.load(Ordering::Acquire)
    }

    /// The VM's optimization configuration.
    pub fn opt(&self) -> crate::opt::OptConfig {
        *self.opt.read()
    }

    /// Replace the optimization configuration (tests; takes effect at
    /// the next interpreter activation).
    pub fn set_opt(&self, opt: crate::opt::OptConfig) {
        *self.opt.write() = opt;
    }

    /// Register a macro function under `name`.
    pub fn define_macro(&self, name: Symbol, func: Value) {
        self.macros.write().insert(name, func);
    }

    /// Register a program so migrated continuations can re-link to it.
    pub fn register_program(&self, p: ProgramRef) {
        self.programs.write().insert(p.id, p);
    }

    /// Look up a registered program by content id.
    pub fn get_program(&self, id: u64) -> Option<ProgramRef> {
        self.programs.read().get(&id).cloned()
    }

    /// Fresh symbol for macro hygiene.
    pub fn gensym_sym(&self) -> Symbol {
        let n = self.gensym_counter.fetch_add(1, Ordering::Relaxed);
        Symbol::intern(&format!("#:g{n}"))
    }

    /// Append to the VM log.
    pub fn log_line(&self, line: String) {
        if self.log_to_stdout.load(Ordering::Relaxed) {
            println!("{line}");
        }
        self.log.lock().push(line);
    }

    /// Drain the captured log.
    pub fn take_log(&self) -> Vec<String> {
        std::mem::take(&mut *self.log.lock())
    }

    /// Deterministic pseudo-random `u64` (xorshift64*).
    pub fn next_random(&self) -> u64 {
        let mut s = self.rng.lock();
        let mut x = *s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *s = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    // ---- load / eval -------------------------------------------------

    /// Read, compile and execute every top-level form in `src`.
    ///
    /// Forms are processed one at a time so that `defmacro` and
    /// `set-macro-character` take effect for the rest of the file, exactly
    /// as when the original system loads a workflow's source (§3.3).
    /// Returns the value of the last form.
    ///
    /// Program ids are derived from the source name, form index and form
    /// text, so loading identical source on another node reproduces
    /// identical programs — the invariant fiber migration relies on.
    pub fn load_str(self: &Arc<Gvm>, src: &str, unit_name: &str) -> VmResult<Value> {
        let stream = SharedStream::new(src);
        let mut last = Value::Nil;
        let mut index = 0u32;
        loop {
            let reader = self.reader.lock().clone();
            let mut eval = GvmReadEval { gvm: self };
            let form = reader.read(&stream, &mut eval)?;
            let Some(form) = form else { break };
            let name = format!("{unit_name}#{index}");
            let id = fnv1a64(format!("{name}:{form:?}").as_bytes());
            let host = GvmHost(self);
            let program = Compiler::compile_toplevel(&host, &form, &name, id)?;
            crate::verify::verify_program(&program)?;
            self.register_program(program.clone());
            last = self.run_program(&program)?;
            index += 1;
        }
        Ok(last)
    }

    /// Evaluate a single already-read form (used by the `eval` builtin
    /// and by deflink's generated definitions).
    pub fn eval_form(self: &Arc<Gvm>, form: &Value, unit_name: &str) -> VmResult<Value> {
        let id = fnv1a64(format!("{unit_name}:{form:?}").as_bytes());
        let host = GvmHost(self);
        let program = Compiler::compile_toplevel(&host, form, unit_name, id)?;
        crate::verify::verify_program(&program)?;
        self.register_program(program.clone());
        self.run_program(&program)
    }

    /// Run a compiled top-level program to completion on the calling
    /// thread. Suspension at top level is an error: only fibers may
    /// yield.
    fn run_program(self: &Arc<Gvm>, program: &ProgramRef) -> VmResult<Value> {
        let closure = Value::Func(Arc::new(Closure {
            program: program.clone(),
            chunk: 0,
            captures: Arc::new(Vec::new()),
        }));
        match self.call_fiber(&closure, vec![])? {
            RunOutcome::Done(v) => Ok(v),
            RunOutcome::Suspended(_) => Err(VmError::msg(
                "top-level form suspended; yield is only valid inside a fiber",
            )),
        }
    }

    // ---- fibers -------------------------------------------------------

    /// Build the initial continuation for calling `func` (a closure) on
    /// `args` — the persisted "initial state" the Start operation writes
    /// (§3.1).
    pub fn fiber_for(self: &Arc<Gvm>, func: &Value, args: Vec<Value>) -> VmResult<FiberState> {
        let mut state = FiberState::default();
        let frame = frame_for_closure(
            self,
            &mut state.dyn_state,
            &mut state.next_restart_id,
            &mut state.ext,
            func,
            args,
        )?;
        state.frames.push(frame);
        Ok(state)
    }

    /// Run (or continue) a fiber until completion or its next `yield`.
    pub fn run_fiber(self: &Arc<Gvm>, state: FiberState) -> VmResult<RunOutcome> {
        self.drive(state, None)
    }

    /// Resume a suspended fiber, delivering `value` as the result of the
    /// `yield` that suspended it.
    pub fn resume_fiber(self: &Arc<Gvm>, state: FiberState, value: Value) -> VmResult<RunOutcome> {
        self.drive(state, Some(value))
    }

    /// Start a fresh fiber for `func` and run it.
    pub fn call_fiber(self: &Arc<Gvm>, func: &Value, args: Vec<Value>) -> VmResult<RunOutcome> {
        let state = self.fiber_for(func, args)?;
        self.run_fiber(state)
    }

    /// Call a Gozer function to completion on the current thread with no
    /// suspension allowed (macros, tests, REPL helpers).
    pub fn call_sync(self: &Arc<Gvm>, func: &Value, args: Vec<Value>) -> VmResult<Value> {
        let mut ds = DynState::default();
        let mut ids = 0u64;
        let mut ext = FiberExt::default();
        call_nested(self, &mut ds, &mut ids, &mut ext, func.clone(), args)
    }

    /// Install (or clear) the fiber observer, called on every resume,
    /// suspension, completion, and failure routed through
    /// [`Gvm::run_fiber`]/[`Gvm::resume_fiber`].
    pub fn set_fiber_observer(&self, observer: Option<FiberObserver>) {
        *self.fiber_observer.write() = observer;
    }

    fn drive(self: &Arc<Gvm>, state: FiberState, resume: Option<Value>) -> VmResult<RunOutcome> {
        let observer = self.fiber_observer.read().clone();
        let FiberState {
            mut frames,
            mut dyn_state,
            mut next_restart_id,
            mut ext,
            clean_prefix,
        } = state;
        // Dirty-tracking watermark: the interpreter lowers this to the
        // minimum frame-stack depth it reaches, and every frame below
        // `low - 1` survives the run untouched (only the top frame ever
        // mutates). Combined with the incoming prefix this tells the
        // serializer how much of the suspended state still matches the
        // fiber's last persisted snapshot.
        let mut low = frames.len();
        if resume.is_some() {
            if let Some(obs) = &observer {
                obs(&FiberObsEvent {
                    kind: FiberObsKind::Resumed,
                    ext: &ext,
                });
            }
        }
        let result = interp(
            self,
            &mut frames,
            &mut dyn_state,
            &mut next_restart_id,
            &mut ext,
            false,
            resume,
            &mut low,
        );
        if let Some(obs) = &observer {
            let kind = match &result {
                Ok(InterpOutcome::Done(_)) => FiberObsKind::Completed,
                Ok(InterpOutcome::Suspended(_)) => FiberObsKind::Suspended {
                    frames: frames.len(),
                },
                Err(VmError::Unwind(Unwind::BreakFiber)) => FiberObsKind::Completed,
                Err(_) => FiberObsKind::Failed,
            };
            obs(&FiberObsEvent { kind, ext: &ext });
        }
        match result {
            Ok(InterpOutcome::Done(v)) => Ok(RunOutcome::Done(v)),
            Ok(InterpOutcome::Suspended(payload)) => Ok(RunOutcome::Suspended(Suspension {
                payload,
                state: FiberState {
                    frames,
                    dyn_state,
                    next_restart_id,
                    ext,
                    // The frame at the watermark itself was the mutable
                    // top at the lowest point, hence `low - 1` clean.
                    clean_prefix: clean_prefix.min(low.saturating_sub(1)),
                },
            })),
            // Vinz `break`: the fiber terminates cleanly with nil (§3.7).
            Err(VmError::Unwind(Unwind::BreakFiber)) => Ok(RunOutcome::Done(Value::Nil)),
            // Attach a backtrace to unhandled conditions: the heap frames
            // are still intact (nothing unwound), so the full chain of
            // function names and code positions is available.
            Err(VmError::Signal(cond)) => {
                Err(VmError::Signal(attach_backtrace(cond, &frames)))
            }
            Err(e) => Err(e),
        }
    }

    /// Convenience: evaluate source and expect a value (tests, REPL).
    pub fn eval_str(self: &Arc<Gvm>, src: &str) -> VmResult<Value> {
        self.load_str(src, "eval")
    }

    /// Look up a defined function by name.
    pub fn function(&self, name: &str) -> Option<Value> {
        self.get_global(Symbol::intern(name))
    }
}

/// Render the frame stack into the condition's `:backtrace` field
/// (outermost first), preserving any backtrace a nested failure already
/// attached.
fn attach_backtrace(cond: Condition, frames: &[crate::fiber::Frame]) -> Condition {
    if cond.field("backtrace").is_some() || frames.is_empty() {
        return cond;
    }
    let mut text = String::new();
    for (i, f) in frames.iter().enumerate() {
        let chunk = f.program.chunk(f.chunk);
        text.push_str(&format!(
            "  {i}: {} (program {}, chunk {}, pc {})\n",
            chunk.name, f.program.name, f.chunk, f.pc
        ));
    }
    let Value::Map(m) = cond.value() else {
        return cond;
    };
    let mut m = (**m).clone();
    m.insert(Value::keyword("backtrace"), Value::from(text));
    Condition(Value::Map(Arc::new(m)))
}

/// [`MacroHost`] view of a VM: macro lookup from the macro table, macro
/// application as a nested (non-suspendable) call.
pub struct GvmHost<'a>(pub &'a Arc<Gvm>);

impl MacroHost for GvmHost<'_> {
    fn lookup_macro(&self, name: Symbol) -> Option<Value> {
        self.0.macros.read().get(&name).cloned()
    }

    fn expand_macro(&self, func: &Value, args: &[Value]) -> VmResult<Value> {
        self.0.call_sync(func, args.to_vec())
    }

    fn gensym(&self) -> Symbol {
        self.0.gensym_sym()
    }
}

/// Reader callback that runs user reader-macro functions on the VM.
pub struct GvmReadEval<'a> {
    /// The owning VM.
    pub gvm: &'a Arc<Gvm>,
}

impl ReadEval for GvmReadEval<'_> {
    fn call_function(&mut self, func: &Value, args: &[Value]) -> Result<Value, LangError> {
        self.gvm
            .call_sync(func, args.to_vec())
            .map_err(|e| LangError::new(format!("reader macro failed: {e}")))
    }
}
