//! Interpreter optimization switches.
//!
//! All of the PR-10 speed work — superinstruction fusion, the
//! generation-stamped global inline caches, frame pooling, and the
//! inline arithmetic/closure-call fast paths — is *semantics-preserving*
//! and individually defeatable, which is what the differential tests
//! lean on: the same program must produce the same value **and the same
//! profiler opcode/pair counts** at every level.
//!
//! Environment knobs (read at [`crate::Gvm`] construction and, for
//! fusion, at compile time):
//!
//! * `GVM_OPT=full` (default) | `nofuse` | `off`
//! * `GVM_NO_FUSE=1` — shorthand for `GVM_OPT=nofuse`, the escape hatch
//!   the differential sweeps use.
//!
//! Fusion is a property of compiled [`crate::bytecode::Program`]s, not
//! of the interpreter, so tests that need both modes in one process use
//! [`set_fuse_override`] around compilation (compilation happens on the
//! calling thread — see [`crate::Gvm::load_str`]).

use std::cell::Cell;

/// Which optimizations are active for a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Compile-time superinstruction fusion (keep-second-slot pairs).
    pub fuse: bool,
    /// Generation-stamped inline caches for `LoadGlobal`.
    pub inline_caches: bool,
    /// Per-activation frame recycling.
    pub frame_pool: bool,
    /// Inline two-int arithmetic and zero-alloc closure calls.
    pub fast_paths: bool,
}

impl OptConfig {
    /// Everything on — the default.
    pub fn full() -> OptConfig {
        OptConfig {
            fuse: true,
            inline_caches: true,
            frame_pool: true,
            fast_paths: true,
        }
    }

    /// Fusion off, everything else on (`GVM_NO_FUSE=1`).
    pub fn no_fuse() -> OptConfig {
        OptConfig {
            fuse: false,
            ..OptConfig::full()
        }
    }

    /// Everything off: the pre-optimization interpreter, kept as the
    /// reference implementation for differential testing and the
    /// `gvm_perf --compare` speedup gate.
    pub fn off() -> OptConfig {
        OptConfig {
            fuse: false,
            inline_caches: false,
            frame_pool: false,
            fast_paths: false,
        }
    }

    /// Read the `GVM_OPT` / `GVM_NO_FUSE` environment knobs.
    pub fn from_env() -> OptConfig {
        let explicit = std::env::var("GVM_OPT").ok();
        let no_fuse = std::env::var("GVM_NO_FUSE").map(|v| v == "1" || v == "true");
        match explicit.as_deref() {
            Some("off") => OptConfig::off(),
            Some("nofuse") => OptConfig::no_fuse(),
            Some(_) => OptConfig::full(),
            None if matches!(no_fuse, Ok(true)) => OptConfig::no_fuse(),
            None => OptConfig::full(),
        }
    }
}

impl Default for OptConfig {
    fn default() -> OptConfig {
        OptConfig::full()
    }
}

thread_local! {
    static FUSE_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Force fusion on or off for programs compiled **on this thread**,
/// overriding the environment; `None` restores the environment default.
/// In-process differential tests compile the same source twice under
/// opposite overrides.
pub fn set_fuse_override(v: Option<bool>) {
    FUSE_OVERRIDE.with(|c| c.set(v));
}

/// Whether the compiler should fuse, honoring the thread override.
pub(crate) fn fusion_enabled() -> bool {
    FUSE_OVERRIDE.with(|c| c.get()).unwrap_or_else(|| OptConfig::from_env().fuse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_wins_over_env() {
        set_fuse_override(Some(false));
        assert!(!fusion_enabled());
        set_fuse_override(Some(true));
        assert!(fusion_enabled());
        set_fuse_override(None);
    }

    #[test]
    fn levels() {
        assert!(OptConfig::full().fuse);
        assert!(!OptConfig::no_fuse().fuse);
        assert!(OptConfig::no_fuse().inline_caches);
        assert!(!OptConfig::off().fast_paths);
    }
}
