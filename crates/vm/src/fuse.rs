//! Superinstruction fusion: the compiler's keep-second-slot peephole.
//!
//! The pass rewrites the *first* slot of each fused pair to a fused
//! [`Op`] and leaves the second slot's original instruction in place.
//! Nothing moves and no offset is rewritten, so:
//!
//! * jump targets that land on the second slot still execute the
//!   original instruction;
//! * every pc the unfused program can reach exists unchanged in the
//!   fused program, so continuations captured on a fused node resume
//!   byte-identically on an unfused node (and vice versa);
//! * the profiler counts constituents, keeping opcode and pair counts
//!   bit-identical between modes.
//!
//! Fusion is greedy left-to-right and non-overlapping: after fusing
//! `(i, i+1)` the scan resumes at `i + 2`, because slot `i + 1` must
//! keep its original instruction as the landing pad.
//!
//! The pair table is profiler-derived: `gozer-repl profile --top-pairs`
//! on `gvm_microbench`-shaped workloads reports `load-local/load-local`,
//! `load-local/const`, `load-global/load-local`, `const/call`,
//! `load-local/call` and `call/jump-if-false` as the hottest adjacent
//! pairs by an order of magnitude; `dup/store-local` (every
//! value-position `setq`) and `pop/jump` (every loop back-edge) round
//! out the table.

use crate::bytecode::Op;

/// Fuse one pair if it is in the table.
fn fuse_pair(a: Op, b: Op) -> Option<Op> {
    match (a, b) {
        (Op::LoadLocal(x), Op::LoadLocal(y)) => Some(Op::LoadLocal2(x, y)),
        (Op::LoadLocal(s), Op::Const(c)) => Some(Op::LoadLocalConst(s, c)),
        (Op::LoadGlobal(g), Op::LoadLocal(s)) => Some(Op::GlobalLocal(g, s)),
        (Op::Const(c), Op::Call(n)) => Some(Op::ConstCall(c, n)),
        (Op::LoadLocal(s), Op::Call(n)) => Some(Op::LoadLocalCall(s, n)),
        (Op::Call(n), Op::JumpIfFalse(off)) => Some(Op::CallBranchFalse(n, off)),
        (Op::Dup, Op::StoreLocal(s)) => Some(Op::DupStore(s)),
        (Op::Pop, Op::Jump(off)) => Some(Op::PopJump(off)),
        _ => None,
    }
}

/// Fuse one quadruple if it is in the table: the complete two-argument
/// call shapes, which execute without materializing callee or arguments
/// when the global resolves to a two-int native.
fn fuse_quad(a: Op, b: Op, c: Op, d: Op) -> Option<Op> {
    match (a, b, c, d) {
        (Op::LoadGlobal(g), Op::LoadLocal(x), Op::LoadLocal(y), Op::Call(2)) => {
            Some(Op::GlobalLocal2Call(g, x, y))
        }
        (Op::LoadGlobal(g), Op::LoadLocal(x), Op::Const(cc), Op::Call(2)) => {
            Some(Op::GlobalLocalConstCall(g, x, cc))
        }
        _ => None,
    }
}

/// Apply the peephole to one chunk's code, in place. Quads fuse first
/// (longest match wins), then the pair pass runs over the result — it
/// also fuses *inside* a quad's retained slots, which is sound because
/// every fused op keeps its own tail slots: any pc the unfused program
/// can reach still executes the same constituent stream.
pub(crate) fn fuse_code(code: &mut [Op]) {
    let mut i = 0;
    while i + 3 < code.len() {
        match fuse_quad(code[i], code[i + 1], code[i + 2], code[i + 3]) {
            Some(fused) => {
                code[i] = fused;
                i += 4;
            }
            None => i += 1,
        }
    }
    let mut i = 0;
    while i + 1 < code.len() {
        match fuse_pair(code[i], code[i + 1]) {
            Some(fused) => {
                code[i] = fused;
                i += 2;
            }
            None => i += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuses_hot_pairs_and_keeps_second_slot() {
        let mut code = vec![
            Op::LoadLocal(0),
            Op::LoadLocal(1),
            Op::Const(2),
            Op::Call(2),
            Op::Return,
        ];
        fuse_code(&mut code);
        assert_eq!(
            code,
            vec![
                Op::LoadLocal2(0, 1),
                Op::LoadLocal(1), // second slot preserved
                Op::ConstCall(2, 2),
                Op::Call(2), // second slot preserved
                Op::Return,
            ]
        );
    }

    #[test]
    fn fusion_is_non_overlapping() {
        // Three LoadLocals: (0,1) fuse, 2 is left alone (no partner).
        let mut code = vec![Op::LoadLocal(0), Op::LoadLocal(1), Op::LoadLocal(2), Op::Return];
        fuse_code(&mut code);
        assert_eq!(
            code,
            vec![Op::LoadLocal2(0, 1), Op::LoadLocal(1), Op::LoadLocal(2), Op::Return]
        );
    }

    #[test]
    fn call_branch_false_keeps_branch_offset() {
        let mut code = vec![Op::Call(2), Op::JumpIfFalse(3), Op::Return];
        fuse_code(&mut code);
        assert_eq!(code[0], Op::CallBranchFalse(2, 3));
        assert_eq!(code[1], Op::JumpIfFalse(3));
    }

    #[test]
    fn every_fused_op_reports_its_parts() {
        let mut code = vec![
            Op::LoadLocal(7),
            Op::Const(9),
            Op::LoadGlobal(1),
            Op::LoadLocal(3),
            Op::Return,
        ];
        fuse_code(&mut code);
        for (i, op) in code.iter().enumerate() {
            if let Some(parts) = op.fused_constituents() {
                for (k, part) in parts.iter().enumerate().skip(1) {
                    let slot = code[i + k];
                    let kept = slot == *part
                        || slot.fused_constituents().is_some_and(|inner| inner[0] == *part);
                    assert!(kept, "slot {} must retain {part:?}, found {slot:?}", i + k);
                }
            }
        }
    }

    #[test]
    fn fuses_two_arg_call_shapes_into_quads() {
        // (+ acc i) and (- n 1): the full call shape collapses, and the
        // retained slots may themselves re-fuse (LoadLocal2, ConstCall).
        let mut code = vec![
            Op::LoadGlobal(0),
            Op::LoadLocal(1),
            Op::LoadLocal(2),
            Op::Call(2),
            Op::LoadGlobal(1),
            Op::LoadLocal(0),
            Op::Const(3),
            Op::Call(2),
            Op::Return,
        ];
        fuse_code(&mut code);
        assert_eq!(code[0], Op::GlobalLocal2Call(0, 1, 2));
        assert_eq!(code[1], Op::LoadLocal2(1, 2)); // retained slots re-fused
        assert_eq!(code[2], Op::LoadLocal(2));
        assert_eq!(code[3], Op::Call(2));
        assert_eq!(code[4], Op::GlobalLocalConstCall(1, 0, 3));
        assert_eq!(code[5], Op::LoadLocalConst(0, 3));
        assert_eq!(code[6], Op::Const(3));
        assert_eq!(code[7], Op::Call(2));
    }
}
