//! Bytecode representation for the GVM.
//!
//! A [`Program`] is a compilation unit (one `load` of Gozer source, or one
//! top-level form at the REPL). It owns a constant pool and a set of
//! [`Chunk`]s, one per function body. Frames reference code by
//! `(program, chunk, pc)` triple, which is what makes continuations plain
//! data: serializing a frame records the program's content hash and the
//! chunk index, never a host pointer (paper §4.1 — the GVM implements its
//! own stack-oriented architecture precisely so the stack can be
//! externalized, in the manner of Stackless Python).

use std::fmt;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use gozer_lang::{Symbol, Value};

/// A single GVM instruction. Instructions carry immediate operands inline;
/// the enum *is* the bytecode (a word-coded instruction stream).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push constant pool entry.
    Const(u32),
    /// Push `nil`.
    Nil,
    /// Push `t`.
    True,
    /// Pop and discard.
    Pop,
    /// Duplicate top of stack.
    Dup,

    /// Push local slot.
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// *Move* a local slot onto the stack, leaving `nil` behind. Emitted
    /// by the compiler (via the internal `%take` form) where a binding's
    /// value is provably dead until reassigned — e.g. the `loop collect`
    /// accumulator handed to `%append1` — so the callee sees a uniquely
    /// referenced value and copy-on-write natives can mutate in place.
    TakeLocal(u16),
    /// Push closure capture.
    LoadCapture(u16),
    /// Push global named by constant-pool symbol.
    LoadGlobal(u32),
    /// Pop into global named by constant-pool symbol.
    StoreGlobal(u32),
    /// Pop and define global named by constant-pool symbol.
    DefGlobal(u32),

    /// Relative jump (target = pc + offset, offset counted after decode).
    Jump(i32),
    /// Pop; jump when false (`nil`). Forces a future on top of stack.
    JumpIfFalse(i32),
    /// Pop; jump when true. Forces a future on top of stack.
    JumpIfTrue(i32),

    /// Call: stack is [..., func, arg1..argN]; pops N+1, pushes result.
    Call(u16),
    /// Tail call: like `Call` but replaces the current frame.
    TailCall(u16),
    /// Return top of stack from the current frame.
    Return,

    /// Instantiate a closure over the chunk's capture list.
    MakeClosure(u32),

    /// Collect N stack values into a list.
    MakeList(u16),
    /// Collect N stack values into a vector.
    MakeVector(u16),
    /// Collect 2N stack values (k v pairs) into a map.
    MakeMap(u16),

    /// Suspend the fiber: pops a payload value; the continuation resumes
    /// just after this instruction with the resume value pushed.
    Yield,
    /// Push a first-class continuation object capturing the fiber state
    /// just after this instruction.
    PushCC,

    /// Pop a handler function and push it on the fiber's handler stack.
    PushHandler,
    /// Pop `n` handlers from the handler stack.
    PopHandlers(u16),
    /// Establish a restart: name from the constant pool, clause body at
    /// relative offset.
    PushRestart {
        /// Constant-pool index of the restart's name symbol.
        name: u32,
        /// Relative jump offset to the restart clause body.
        offset: i32,
    },
    /// Remove the `n` most recent restarts.
    PopRestarts(u16),

    // ---- superinstructions ---------------------------------------------
    //
    // Each fused op replaces the *first* slot of a hot adjacent pair; the
    // second slot keeps its original instruction ("keep-second-slot"
    // fusion). Executing the fused op runs both constituents and skips
    // the pc past both, so every pc a continuation can observe — jump
    // targets into the second slot, suspension points, frame pcs — is
    // identical to the unfused program. That is what lets fused and
    // unfused nodes exchange serialized continuations freely, and why
    // `gozer-serial` needs no changes: it records only (program, chunk,
    // pc). The profiler credits each *constituent* opcode, keeping counts
    // bit-identical across modes.
    /// Fused `LoadLocal(a); LoadLocal(b)`.
    LoadLocal2(u16, u16),
    /// Fused `LoadLocal(slot); Const(c)`.
    LoadLocalConst(u16, u32),
    /// Fused `LoadGlobal(g); LoadLocal(slot)`.
    GlobalLocal(u32, u16),
    /// Fused `Const(c); Call(n)` (constant last argument).
    ConstCall(u32, u16),
    /// Fused `LoadLocal(slot); Call(n)` (local last argument).
    LoadLocalCall(u16, u16),
    /// Fused `Call(n); JumpIfFalse(off)` (call feeding a branch). When
    /// the callee is a closure this degrades to plain `Call` semantics —
    /// the retained `JumpIfFalse` in the second slot runs on return.
    CallBranchFalse(u16, i32),
    /// Fused `Dup; StoreLocal(slot)` (the `setq`-leaves-its-value shape).
    DupStore(u16),
    /// Fused `Pop; Jump(off)` (discard a statement value and loop back).
    PopJump(i32),
    /// Fused `LoadGlobal(g); LoadLocal(a); LoadLocal(b); Call(2)` — the
    /// complete two-local call shape (`(+ acc i)`, `(<= i bound)`).
    /// When the global resolves to a two-int native the result is
    /// computed without materializing the callee or arguments on the
    /// operand stack; slots i+1..i+3 keep their original instructions
    /// as landing pads, exactly like the pairwise fusions.
    GlobalLocal2Call(u32, u16, u16),
    /// Fused `LoadGlobal(g); LoadLocal(s); Const(c); Call(2)` — the
    /// local-and-constant call shape (`(- n 1)`, `(< n 2)`).
    GlobalLocalConstCall(u32, u16, u32),
}

impl Op {
    /// The constituent sequence of a fused op (`None` for plain ops).
    /// Offsets in later constituents are relative to their own retained
    /// slot, exactly as in the unfused program. Constituents after the
    /// first must still occupy the following slots (possibly themselves
    /// re-fused, with the same first constituent) so jumps and resumed
    /// continuations can land on them.
    pub fn fused_constituents(&self) -> Option<Vec<Op>> {
        match *self {
            Op::LoadLocal2(a, b) => Some(vec![Op::LoadLocal(a), Op::LoadLocal(b)]),
            Op::LoadLocalConst(s, c) => Some(vec![Op::LoadLocal(s), Op::Const(c)]),
            Op::GlobalLocal(g, s) => Some(vec![Op::LoadGlobal(g), Op::LoadLocal(s)]),
            Op::ConstCall(c, n) => Some(vec![Op::Const(c), Op::Call(n)]),
            Op::LoadLocalCall(s, n) => Some(vec![Op::LoadLocal(s), Op::Call(n)]),
            Op::CallBranchFalse(n, off) => Some(vec![Op::Call(n), Op::JumpIfFalse(off)]),
            Op::DupStore(s) => Some(vec![Op::Dup, Op::StoreLocal(s)]),
            Op::PopJump(off) => Some(vec![Op::Pop, Op::Jump(off)]),
            Op::GlobalLocal2Call(g, a, b) => Some(vec![
                Op::LoadGlobal(g),
                Op::LoadLocal(a),
                Op::LoadLocal(b),
                Op::Call(2),
            ]),
            Op::GlobalLocalConstCall(g, s, c) => Some(vec![
                Op::LoadGlobal(g),
                Op::LoadLocal(s),
                Op::Const(c),
                Op::Call(2),
            ]),
            _ => None,
        }
    }
}

/// How a closure capture is sourced from the *enclosing* frame at
/// `MakeClosure` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureSource {
    /// Copy an enclosing local slot.
    Local(u16),
    /// Copy one of the enclosing closure's own captures.
    Capture(u16),
}

/// Formal parameter specification for a chunk.
///
/// Defaults for `&optional` and `&key` parameters are restricted to
/// *constants* (a deliberate simplification; every listing in the paper
/// uses constant or `nil` defaults).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamSpec {
    /// Required positional parameters, bound to slots `0..required.len()`.
    pub required: Vec<Symbol>,
    /// `&optional` parameters with constant defaults.
    pub optional: Vec<(Symbol, Value)>,
    /// `&rest` parameter capturing remaining arguments as a list.
    pub rest: Option<Symbol>,
    /// `&key` parameters: `(keyword-name, default)`. The variable binds in
    /// declaration order after required/optional/rest.
    pub keys: Vec<(Symbol, Value)>,
}

impl ParamSpec {
    /// Total number of parameter slots this spec binds.
    pub fn slot_count(&self) -> usize {
        self.required.len()
            + self.optional.len()
            + usize::from(self.rest.is_some())
            + self.keys.len()
    }

    /// Smallest number of positional arguments accepted.
    pub fn min_args(&self) -> usize {
        self.required.len()
    }
}

/// One compiled function body.
#[derive(Debug)]
pub struct Chunk {
    /// Name for diagnostics (`"lambda"` when anonymous).
    pub name: String,
    /// Docstring, preserved for the `doc` builtin (deflink relies on this
    /// to surface service operation documentation, §3.3).
    pub doc: Option<String>,
    /// Parameter specification.
    pub params: ParamSpec,
    /// Number of local slots (parameters + let-bound variables).
    pub local_count: u16,
    /// Captures to copy from the enclosing frame when a closure over this
    /// chunk is created.
    pub captures: Vec<CaptureSource>,
    /// The instruction stream.
    pub code: Vec<Op>,
    /// Per-pc inline caches for `LoadGlobal`/`GlobalLocal` sites, packed
    /// `(generation << 32) | slot`. Generation 0 means "empty". Sized to
    /// `code.len()` by the compiler; hand-built programs may leave it
    /// empty, in which case those sites take the slow lookup every time.
    /// Purely a cache: never serialized, never compared, reset by clone.
    pub ic: Vec<AtomicU64>,
}

impl Clone for Chunk {
    fn clone(&self) -> Chunk {
        Chunk {
            name: self.name.clone(),
            doc: self.doc.clone(),
            params: self.params.clone(),
            local_count: self.local_count,
            captures: self.captures.clone(),
            code: self.code.clone(),
            // Caches are per-Chunk state; a clone starts cold.
            ic: self.code.iter().map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A compilation unit: constant pool plus chunks.
#[derive(Debug, Clone)]
pub struct Program {
    /// Content-derived identifier used by the serializer to re-link
    /// closures and continuations on another node.
    pub id: u64,
    /// Human-readable name (e.g. the workflow name).
    pub name: String,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Function bodies; chunk 0 is the top-level entry.
    pub chunks: Vec<Chunk>,
}

impl Program {
    /// Fetch a chunk, panicking on a malformed index (compiler invariant).
    pub fn chunk(&self, idx: u32) -> &Chunk {
        &self.chunks[idx as usize]
    }
}

/// FNV-1a 64-bit hash, used to derive stable [`Program::id`]s from source
/// text (stable across processes, unlike `DefaultHasher`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Render a chunk's code for debugging and the `disassemble` builtin.
pub fn disassemble(program: &Program, chunk_idx: u32) -> String {
    use fmt::Write;
    let chunk = program.chunk(chunk_idx);
    let mut out = String::new();
    let _ = writeln!(
        out,
        ";; chunk {chunk_idx} {} (locals={}, captures={})",
        chunk.name,
        chunk.local_count,
        chunk.captures.len()
    );
    for (i, op) in chunk.code.iter().enumerate() {
        let note = match op {
            Op::Const(c) | Op::LoadGlobal(c) | Op::StoreGlobal(c) | Op::DefGlobal(c) => {
                format!(" ; {:?}", program.consts[*c as usize])
            }
            Op::Jump(off) | Op::JumpIfFalse(off) | Op::JumpIfTrue(off) => {
                format!(" ; -> {}", i as i64 + 1 + *off as i64)
            }
            Op::PushRestart { name, offset } => {
                format!(
                    " ; {:?} -> {}",
                    program.consts[*name as usize],
                    i as i64 + 1 + *offset as i64
                )
            }
            Op::GlobalLocal(g, _)
            | Op::GlobalLocal2Call(g, ..)
            | Op::GlobalLocalConstCall(g, ..) => {
                format!(" ; {:?}", program.consts[*g as usize])
            }
            Op::LoadLocalConst(_, c) | Op::ConstCall(c, _) => {
                format!(" ; {:?}", program.consts[*c as usize])
            }
            // Branch offset is relative to the *second* slot (i + 1).
            Op::CallBranchFalse(_, off) | Op::PopJump(off) => {
                format!(" ; -> {}", i as i64 + 2 + *off as i64)
            }
            _ => String::new(),
        };
        let _ = writeln!(out, "{i:5}  {op:?}{note}");
    }
    out
}

/// A shared, immutable program.
pub type ProgramRef = Arc<Program>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), fnv1a64(b"a"));
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn param_spec_slot_count() {
        let spec = ParamSpec {
            required: vec![Symbol::intern("a")],
            optional: vec![(Symbol::intern("b"), Value::Int(1))],
            rest: Some(Symbol::intern("r")),
            keys: vec![(Symbol::intern("k"), Value::Nil)],
        };
        assert_eq!(spec.slot_count(), 4);
        assert_eq!(spec.min_args(), 1);
    }

    #[test]
    fn disassemble_formats() {
        let p = Program {
            id: 1,
            name: "test".into(),
            consts: vec![Value::Int(42)],
            chunks: vec![Chunk {
                name: "top".into(),
                doc: None,
                params: ParamSpec::default(),
                local_count: 0,
                captures: vec![],
                code: vec![Op::Const(0), Op::Return],
                ic: Vec::new(),
            }],
        };
        let text = disassemble(&p, 0);
        assert!(text.contains("Const(0) ; 42"));
        assert!(text.contains("Return"));
    }
}
