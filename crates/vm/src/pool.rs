//! A small work-queue thread pool backing Gozer futures.
//!
//! The paper (§4.1) maps futures onto the JVM's `ExecutorService`; this is
//! the Rust equivalent: fixed worker threads draining a channel of boxed
//! jobs. BlueBox supplies its own load-balancing-aware executor in
//! production — the `bluebox` crate does the same by constructing the pool
//! with a node-specific size.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size thread pool. Dropping the pool closes the queue and joins
/// the workers (outstanding jobs finish first).
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Create a pool with `size` workers (at least 1).
    pub fn new(size: usize) -> Arc<ThreadPool> {
        let size = size.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("gozer-future-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(ThreadPool {
            tx: Some(tx),
            workers,
            size,
        })
    }

    /// Pool with one worker per available core.
    pub fn default_size() -> Arc<ThreadPool> {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ThreadPool::new(n)
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Submit a job. Jobs submitted after shutdown are silently dropped
    /// (only reachable during teardown races).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(Box::new(job));
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the queue so workers exit, then join them.
        self.tx.take();
        let me = std::thread::current().id();
        for w in self.workers.drain(..) {
            // The last Arc can be released *on* a worker (a job holding
            // the owning Gvm outlives the main thread's handle); joining
            // ourselves is EDEADLK, which std turns into a panic. Skip —
            // the worker exits on its own once the closed queue drains.
            if w.thread().id() == me {
                continue;
            }
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_concurrently() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = unbounded();
        for _ in 0..100 {
            let counter = counter.clone();
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = counter.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn minimum_one_worker() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }
}
