//! VM error and control-transfer types.

use gozer_lang::{LangError, Value};

use crate::conditions::Condition;

/// Errors and non-local control transfers inside the GVM.
///
/// The `Unwind` variant is *control flow*, not failure: condition handlers
/// run as nested interpreter activations (without unwinding the signaling
/// code, per §3.7), and when a handler invokes a restart the transfer
/// propagates out of the nested activations as an `Unwind` which the
/// owning fiber loop catches and turns into a frame-stack truncation.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// Reader failure.
    Read(LangError),
    /// Compile-time failure (bad special form, unknown macro arity, ...).
    Compile(String),
    /// Malformed bytecode: the load-time verifier rejected the program,
    /// or the interpreter hit an out-of-range fetch/operand at runtime
    /// (which a verified program cannot produce).
    Bytecode(String),
    /// A signaled condition that no handler dealt with.
    Signal(Condition),
    /// Non-local control transfer (see [`Unwind`]).
    Unwind(Unwind),
}

/// Non-local control transfers that cross interpreter activations.
#[derive(Debug, Clone, PartialEq)]
pub enum Unwind {
    /// Transfer to the restart with this id, passing `args`.
    Restart {
        /// Id of the target [`crate::fiber::RestartEntry`].
        id: u64,
        /// Arguments delivered to the restart clause.
        args: Vec<Value>,
    },
    /// Vinz `break` action: terminate the current fiber cleanly, returning
    /// `nil` to its parent (paper §3.7).
    BreakFiber,
    /// Vinz `terminate` action: terminate the fiber *and the whole task*
    /// with an error status (paper §3.7).
    TerminateTask(Condition),
    /// A `yield` was attempted from a context that cannot suspend (future
    /// thread, condition handler, macroexpansion). Vinz avoids this by
    /// detecting background threads and falling back to synchronous
    /// requests (§3.2); reaching it from user code is an error.
    YieldFromNested,
}

impl VmError {
    /// Build a `Signal` from a plain error message.
    pub fn msg(message: impl Into<String>) -> VmError {
        VmError::Signal(Condition::error(message))
    }

    /// Build a type-error signal.
    pub fn type_error(expected: &str, got: &Value) -> VmError {
        VmError::Signal(Condition::type_error(expected, got))
    }

    /// The condition carried by this error, synthesizing one for
    /// non-signal variants (used when reporting fiber failure to Vinz).
    pub fn to_condition(&self) -> Condition {
        match self {
            VmError::Signal(c) => c.clone(),
            VmError::Read(e) => Condition::new("reader-error", e.to_string()),
            VmError::Compile(msg) => Condition::new("compile-error", msg.clone()),
            VmError::Bytecode(msg) => Condition::new("bytecode-error", msg.clone()),
            VmError::Unwind(Unwind::TerminateTask(c)) => c.clone(),
            VmError::Unwind(u) => Condition::error(format!("unexpected unwind: {u:?}")),
        }
    }
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::Read(e) => write!(f, "read error: {e}"),
            VmError::Compile(msg) => write!(f, "compile error: {msg}"),
            VmError::Bytecode(msg) => write!(f, "bytecode error: {msg}"),
            VmError::Signal(c) => write!(f, "unhandled condition: {c}"),
            VmError::Unwind(u) => write!(f, "control transfer escaped: {u:?}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<LangError> for VmError {
    fn from(e: LangError) -> Self {
        VmError::Read(e)
    }
}

/// Result alias for VM operations.
pub type VmResult<T> = Result<T, VmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condition_extraction() {
        let e = VmError::msg("bad");
        assert_eq!(e.to_condition().message(), "bad");
        let e = VmError::Compile("nope".into());
        assert!(e.to_condition().matches("compile-error"));
    }

    #[test]
    fn display() {
        assert!(VmError::msg("x").to_string().contains("unhandled"));
        assert!(VmError::Compile("y".into()).to_string().contains("compile"));
    }
}
