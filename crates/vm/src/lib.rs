#![warn(missing_docs)]

//! # The Gozer Virtual Machine (GVM)
//!
//! Implementation of the language runtime described in §4.1 of *"The
//! Gozer Workflow System"* (IPPS 2010): a bytecode compiler and a
//! stack-oriented interpreter whose call stack is ordinary heap data, so
//! any flow of control can be captured as a **serializable continuation**
//! (`yield` / `push-cc`), persisted, migrated to another node, and
//! resumed — the mechanism underlying Vinz's distributed workflows.
//!
//! The GVM also provides:
//!
//! * **Futures** (§2): Multilisp-style transparent promises executed on a
//!   thread pool, with the determination rules of §4.1 (forced when passed
//!   to natives, and before any continuation capture).
//! * **The condition system** (§3.7): handlers that run *without
//!   unwinding*, restarts, and non-local transfers, on which Vinz builds
//!   `defhandler`/`with-handler`.
//! * A substantial native library plus a Gozer-source prelude.
//!
//! # Quick start
//!
//! ```
//! use gozer_vm::Gvm;
//!
//! let gvm = Gvm::new();
//! let v = gvm.eval_str("(+ 1 (* 2 3))").unwrap();
//! assert_eq!(v, gozer_lang::Value::Int(7));
//!
//! // Local parallelism with futures (Listing 1's par-sum-squares):
//! let v = gvm
//!     .eval_str(
//!         "(apply #'+ (loop for n in (range 1 5) collect (future (* n n))))",
//!     )
//!     .unwrap();
//! assert_eq!(v, gozer_lang::Value::Int(30));
//! ```

pub mod bytecode;
pub mod compiler;
pub mod conditions;
pub mod error;
pub mod fiber;
pub(crate) mod fuse;
pub mod gvm;
pub mod interp;
pub mod natives;
pub mod opt;
pub mod pool;
pub mod profile;
pub mod runtime;
pub mod verify;

pub use bytecode::{disassemble, fnv1a64, Chunk, Op, Program, ProgramRef};
pub use compiler::{Compiler, MacroHost};
pub use conditions::Condition;
pub use error::{Unwind, VmError, VmResult};
pub use fiber::{DynState, FiberExt, FiberState, Frame, RunOutcome, Suspension};
pub use gvm::{FiberObsEvent, FiberObsKind, FiberObserver, Gvm, GvmHost, NativeCtx};
pub use natives::ObjectVal;
pub use opt::{set_fuse_override, OptConfig};
pub use pool::ThreadPool;
pub use verify::verify_program;
pub use profile::{FnCounts, VmProfileSnapshot, VmProfiler, OPCODE_COUNT, OPCODE_NAMES};
pub use runtime::{force, Closure, ContinuationVal, Fast2, FutureVal, NativeFn, NativeOutcome};
