//! Low-overhead GVM execution profiler.
//!
//! Sampling-free, atomic-counter instrumentation of the interpreter:
//! per-opcode execution counts and per-function call / inclusive /
//! exclusive wall-time attribution. The profiler is wired into every
//! interpreter activation but costs one relaxed atomic load when
//! disabled — `Gvm::profiler().scope(..)` returns `None` and the step
//! loop only ever tests an `Option`.
//!
//! **Suspension is excluded by construction.** Timing is kept on a
//! shadow stack (one [`TimingEntry`] per live frame) whose clocks exist
//! only while an activation is running: when a fiber suspends at
//! `yield`, every open entry's elapsed segment is attributed and the
//! scope is dropped; when the continuation is later resumed — possibly
//! after serialize/ship/deserialize on another node — a fresh scope
//! re-seeds entries with `start = now`. Time spent suspended, persisted
//! or in transit is therefore never charged to any function, while
//! calls are counted only once (at frame entry, `pc == 0`).
//!
//! Exclusive time of a function includes time spent in native calls it
//! makes (the VM does not model native frames); a native that re-enters
//! the interpreter (handlers, macros, future bodies) is profiled again
//! under its own root, so nested activations show up as separate stacks
//! in the folded output.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::bytecode::Op;
use crate::fiber::Frame;

/// Number of opcode kinds (the `Op` enum's variant count).
pub const OPCODE_COUNT: usize = 28;

/// Display names, indexed by [`opcode_index`].
pub const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "const",
    "nil",
    "true",
    "pop",
    "dup",
    "load-local",
    "store-local",
    "load-capture",
    "load-global",
    "store-global",
    "def-global",
    "jump",
    "jump-if-false",
    "jump-if-true",
    "call",
    "tail-call",
    "return",
    "make-closure",
    "make-list",
    "make-vector",
    "make-map",
    "yield",
    "push-cc",
    "push-handler",
    "pop-handlers",
    "push-restart",
    "pop-restarts",
    "take-local",
];

/// Dense index of an opcode into the counter array.
pub(crate) fn opcode_index(op: &Op) -> usize {
    match op {
        Op::Const(_) => 0,
        Op::Nil => 1,
        Op::True => 2,
        Op::Pop => 3,
        Op::Dup => 4,
        Op::LoadLocal(_) => 5,
        Op::StoreLocal(_) => 6,
        Op::LoadCapture(_) => 7,
        Op::LoadGlobal(_) => 8,
        Op::StoreGlobal(_) => 9,
        Op::DefGlobal(_) => 10,
        Op::Jump(_) => 11,
        Op::JumpIfFalse(_) => 12,
        Op::JumpIfTrue(_) => 13,
        Op::Call(_) => 14,
        Op::TailCall(_) => 15,
        Op::Return => 16,
        Op::MakeClosure(_) => 17,
        Op::MakeList(_) => 18,
        Op::MakeVector(_) => 19,
        Op::MakeMap(_) => 20,
        Op::Yield => 21,
        Op::PushCC => 22,
        Op::PushHandler => 23,
        Op::PopHandlers(_) => 24,
        Op::PushRestart { .. } => 25,
        Op::PopRestarts(_) => 26,
        Op::TakeLocal(_) => 27,
        // Fused superinstructions are invisible to the profiler: the
        // interpreter counts their constituents individually (the first
        // via this mapping at fetch, the second inside the fused arm),
        // keeping counts bit-identical with `GVM_NO_FUSE=1`.
        Op::LoadLocal2(..) | Op::LoadLocalConst(..) | Op::LoadLocalCall(..) => IDX_LOAD_LOCAL,
        Op::GlobalLocal(..) | Op::GlobalLocal2Call(..) | Op::GlobalLocalConstCall(..) => {
            IDX_LOAD_GLOBAL
        }
        Op::ConstCall(..) => IDX_CONST,
        Op::CallBranchFalse(..) => IDX_CALL,
        Op::DupStore(..) => IDX_DUP,
        Op::PopJump(..) => IDX_POP,
    }
}

// Constituent indices the fused interpreter arms count directly.
pub(crate) const IDX_CONST: usize = 0;
pub(crate) const IDX_POP: usize = 3;
pub(crate) const IDX_DUP: usize = 4;
pub(crate) const IDX_LOAD_LOCAL: usize = 5;
pub(crate) const IDX_STORE_LOCAL: usize = 6;
pub(crate) const IDX_LOAD_GLOBAL: usize = 8;
pub(crate) const IDX_JUMP: usize = 11;
pub(crate) const IDX_JUMP_IF_FALSE: usize = 12;
pub(crate) const IDX_CALL: usize = 14;

/// Per-function accumulators. One per (program id, chunk index); shared
/// across all fibers and threads of the owning VM.
struct FnStat {
    name: Arc<str>,
    calls: AtomicU64,
    incl_nanos: AtomicU64,
    excl_nanos: AtomicU64,
}

/// Per-function totals, as exported by [`VmProfiler::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnCounts {
    /// Function (chunk) name.
    pub name: String,
    /// Frame entries (calls + tail calls); resumed frames are not
    /// re-counted.
    pub calls: u64,
    /// Wall nanos while the function's frame was live and the fiber was
    /// actually running (suspended intervals excluded).
    pub incl_nanos: u64,
    /// Inclusive minus time spent in Gozer callees.
    pub excl_nanos: u64,
}

/// Point-in-time export of a profiler's counters.
#[derive(Debug, Clone, Default)]
pub struct VmProfileSnapshot {
    /// `(opcode name, executed count)`, in [`OPCODE_NAMES`] order.
    pub opcodes: Vec<(String, u64)>,
    /// Per-function totals, merged by name, sorted by name.
    pub functions: Vec<FnCounts>,
    /// Folded call stacks (`root;child;leaf` → exclusive nanos), sorted
    /// by path.
    pub folded: Vec<(String, u64)>,
    /// Adjacent dynamic opcode pairs `(first, second, count)` — the data
    /// behind `gozer-repl profile --top-pairs` and the fusion pair
    /// table. Only nonzero pairs, sorted by name. The pair stream is
    /// built from *constituent* opcodes, so it is identical fused vs
    /// unfused.
    pub pairs: Vec<(String, String, u64)>,
}

/// The per-VM profiler. Always present on a [`crate::Gvm`]; disabled by
/// default.
pub struct VmProfiler {
    enabled: AtomicBool,
    opcodes: [AtomicU64; OPCODE_COUNT],
    /// Dense `OPCODE_COUNT × OPCODE_COUNT` matrix of adjacent dynamic
    /// pairs, row = first opcode of the pair.
    pairs: Vec<AtomicU64>,
    fns: RwLock<HashMap<(u64, u32), Arc<FnStat>>>,
    folded: Mutex<HashMap<Arc<str>, u64>>,
}

impl Default for VmProfiler {
    fn default() -> VmProfiler {
        VmProfiler {
            enabled: AtomicBool::new(false),
            opcodes: std::array::from_fn(|_| AtomicU64::new(0)),
            pairs: std::iter::repeat_with(|| AtomicU64::new(0))
                .take(OPCODE_COUNT * OPCODE_COUNT)
                .collect(),
            fns: RwLock::new(HashMap::new()),
            folded: Mutex::new(HashMap::new()),
        }
    }
}

impl VmProfiler {
    /// Turn collection on or off. Takes effect at the next interpreter
    /// activation (scopes already open keep collecting).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::SeqCst);
    }

    /// Whether collection is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Zero every counter (the enabled flag is left alone).
    pub fn reset(&self) {
        for c in &self.opcodes {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.pairs {
            c.store(0, Ordering::Relaxed);
        }
        self.fns.write().clear();
        self.folded.lock().clear();
    }

    /// Begin profiling one interpreter activation over `frames`, or
    /// `None` when disabled — the per-step cost in that case is a single
    /// `Option` test.
    pub(crate) fn scope<'p>(&'p self, frames: &[Frame]) -> Option<ProfScope<'p>> {
        if !self.is_enabled() {
            return None;
        }
        let mut scope = ProfScope {
            prof: self,
            stack: Vec::with_capacity(frames.len().max(8)),
            local_folded: HashMap::new(),
            prev_op: None,
        };
        scope.seed(frames);
        Some(scope)
    }

    fn stat_for(&self, frame: &Frame) -> Arc<FnStat> {
        let key = (frame.program.id, frame.chunk);
        if let Some(s) = self.fns.read().get(&key) {
            return s.clone();
        }
        let mut w = self.fns.write();
        w.entry(key)
            .or_insert_with(|| {
                Arc::new(FnStat {
                    name: Arc::from(frame.fn_name()),
                    calls: AtomicU64::new(0),
                    incl_nanos: AtomicU64::new(0),
                    excl_nanos: AtomicU64::new(0),
                })
            })
            .clone()
    }

    /// Export every counter. Functions are merged by name (a redefined
    /// function keeps one row) and sorted; folded paths are sorted.
    pub fn snapshot(&self) -> VmProfileSnapshot {
        let opcodes = OPCODE_NAMES
            .iter()
            .zip(self.opcodes.iter())
            .map(|(n, c)| (n.to_string(), c.load(Ordering::Relaxed)))
            .collect();
        let mut by_name: HashMap<&str, FnCounts> = HashMap::new();
        let fns = self.fns.read();
        for stat in fns.values() {
            let e = by_name.entry(&stat.name).or_insert_with(|| FnCounts {
                name: stat.name.to_string(),
                calls: 0,
                incl_nanos: 0,
                excl_nanos: 0,
            });
            e.calls += stat.calls.load(Ordering::Relaxed);
            e.incl_nanos += stat.incl_nanos.load(Ordering::Relaxed);
            e.excl_nanos += stat.excl_nanos.load(Ordering::Relaxed);
        }
        let mut functions: Vec<FnCounts> = by_name.into_values().collect();
        functions.sort_by(|a, b| a.name.cmp(&b.name));
        let mut folded: Vec<(String, u64)> = self
            .folded
            .lock()
            .iter()
            .map(|(p, w)| (p.to_string(), *w))
            .collect();
        folded.sort_by(|a, b| a.0.cmp(&b.0));
        let mut pairs: Vec<(String, String, u64)> = Vec::new();
        for a in 0..OPCODE_COUNT {
            for b in 0..OPCODE_COUNT {
                let c = self.pairs[a * OPCODE_COUNT + b].load(Ordering::Relaxed);
                if c > 0 {
                    pairs.push((OPCODE_NAMES[a].to_string(), OPCODE_NAMES[b].to_string(), c));
                }
            }
        }
        pairs.sort_by(|x, y| (&x.0, &x.1).cmp(&(&y.0, &y.1)));
        VmProfileSnapshot {
            opcodes,
            functions,
            folded,
            pairs,
        }
    }
}

/// One shadow-stack slot: the timing state of a live frame.
struct TimingEntry {
    stat: Arc<FnStat>,
    path: Arc<str>,
    start: Instant,
    child_nanos: u64,
}

/// Shadow timing stack for one interpreter activation. Mirrors the
/// frame stack exactly: push on `Call`, replace on `TailCall`, pop on
/// `Return`, truncate on restart transfer, rebuild on continuation
/// resume. Dropping the scope closes every remaining entry, so error
/// exits and suspensions attribute whatever ran.
pub(crate) struct ProfScope<'p> {
    prof: &'p VmProfiler,
    stack: Vec<TimingEntry>,
    /// Folded-path weights buffered locally and flushed on drop, so a
    /// hot recursive function costs an atomic add per return, not a
    /// global map lock.
    local_folded: HashMap<Arc<str>, u64>,
    /// Previous *constituent* opcode index, for the adjacent-pair
    /// matrix. Per-activation (resets at scope creation), so the pair
    /// stream is a pure function of the constituent opcode stream and
    /// identical fused vs unfused.
    prev_op: Option<usize>,
}

impl<'p> ProfScope<'p> {
    /// Count one executed opcode.
    #[inline]
    pub(crate) fn count_op(&mut self, op: &Op) {
        self.count_idx(opcode_index(op));
    }

    /// Count one executed constituent by dense index — used by the
    /// fused interpreter arms to credit their second constituent.
    #[inline]
    pub(crate) fn count_idx(&mut self, idx: usize) {
        self.prof.opcodes[idx].fetch_add(1, Ordering::Relaxed);
        if let Some(prev) = self.prev_op {
            self.prof.pairs[prev * OPCODE_COUNT + idx].fetch_add(1, Ordering::Relaxed);
        }
        self.prev_op = Some(idx);
    }

    /// Mirror the current frame stack (activation entry and
    /// continuation resume). Only never-executed frames (`pc == 0`) are
    /// counted as calls: a resumed continuation's frames were counted
    /// when first pushed.
    fn seed(&mut self, frames: &[Frame]) {
        let now = Instant::now();
        for frame in frames {
            let stat = self.prof.stat_for(frame);
            if frame.pc == 0 {
                stat.calls.fetch_add(1, Ordering::Relaxed);
            }
            let path = self.extend_path(&stat.name);
            self.stack.push(TimingEntry {
                stat,
                path,
                start: now,
                child_nanos: 0,
            });
        }
    }

    fn extend_path(&self, name: &str) -> Arc<str> {
        match self.stack.last() {
            Some(parent) => Arc::from(format!("{};{}", parent.path, name).as_str()),
            None => Arc::from(name),
        }
    }

    /// A frame was pushed by `Op::Call`.
    pub(crate) fn on_push(&mut self, frame: &Frame) {
        let stat = self.prof.stat_for(frame);
        stat.calls.fetch_add(1, Ordering::Relaxed);
        let path = self.extend_path(&stat.name);
        self.stack.push(TimingEntry {
            stat,
            path,
            start: Instant::now(),
            child_nanos: 0,
        });
    }

    /// The top frame was replaced by `Op::TailCall`: close the old
    /// entry, open (and count) the new one at the same depth.
    pub(crate) fn on_tail_call(&mut self, frame: &Frame) {
        self.close_top();
        self.on_push(frame);
    }

    /// The top frame returned.
    pub(crate) fn on_return(&mut self) {
        self.close_top();
    }

    /// The frame stack was truncated to `depth` (restart transfer).
    pub(crate) fn on_truncate(&mut self, depth: usize) {
        while self.stack.len() > depth {
            self.close_top();
        }
    }

    /// The frame stack was wholesale replaced (first-class continuation
    /// resume): close everything, mirror the new stack.
    pub(crate) fn on_replace(&mut self, frames: &[Frame]) {
        self.on_truncate(0);
        self.seed(frames);
    }

    /// Attribute every open segment now (called just before suspension
    /// so future-determination waits are not charged to the fiber).
    pub(crate) fn suspend_closeout(&mut self) {
        self.on_truncate(0);
    }

    fn close_top(&mut self) {
        let Some(e) = self.stack.pop() else { return };
        let seg = e.start.elapsed().as_nanos() as u64;
        let excl = seg.saturating_sub(e.child_nanos);
        e.stat.incl_nanos.fetch_add(seg, Ordering::Relaxed);
        e.stat.excl_nanos.fetch_add(excl, Ordering::Relaxed);
        *self.local_folded.entry(e.path).or_insert(0) += excl;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_nanos += seg;
        }
    }
}

impl Drop for ProfScope<'_> {
    fn drop(&mut self) {
        self.on_truncate(0);
        if !self.local_folded.is_empty() {
            let mut folded = self.prof.folded.lock();
            for (path, w) in self.local_folded.drain() {
                *folded.entry(path).or_insert(0) += w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_index_is_dense_and_total() {
        // Every variant maps inside the table; spot-check both ends.
        assert_eq!(opcode_index(&Op::Const(0)), 0);
        assert_eq!(opcode_index(&Op::TakeLocal(0)), OPCODE_COUNT - 1);
        assert_eq!(OPCODE_NAMES.len(), OPCODE_COUNT);
    }

    #[test]
    fn disabled_profiler_yields_no_scope() {
        let p = VmProfiler::default();
        assert!(p.scope(&[]).is_none());
        p.set_enabled(true);
        assert!(p.scope(&[]).is_some());
    }

    #[test]
    fn snapshot_of_fresh_profiler_is_empty() {
        let p = VmProfiler::default();
        let s = p.snapshot();
        assert_eq!(s.opcodes.len(), OPCODE_COUNT);
        assert!(s.opcodes.iter().all(|(_, c)| *c == 0));
        assert!(s.functions.is_empty());
        assert!(s.folded.is_empty());
    }

    #[test]
    fn attributes_calls_times_and_folded_stacks() {
        let gvm = crate::Gvm::new();
        gvm.profiler().set_enabled(true);
        gvm.eval_str("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
            .unwrap();
        gvm.eval_str("(fib 10)").unwrap();
        let s = gvm.profiler().snapshot();
        let fib = s
            .functions
            .iter()
            .find(|f| f.name == "fib")
            .expect("fib profiled");
        assert_eq!(fib.calls, 177, "fib(10) makes 177 fib invocations");
        assert!(fib.incl_nanos >= fib.excl_nanos);
        // Every exclusive segment lands in exactly one folded path.
        let sum_excl: u64 = s.functions.iter().map(|f| f.excl_nanos).sum();
        let sum_folded: u64 = s.folded.iter().map(|(_, w)| *w).sum();
        assert_eq!(sum_excl, sum_folded);
        assert!(s.folded.iter().any(|(p, _)| p.contains("fib;fib")));
        let calls = s
            .opcodes
            .iter()
            .find(|(n, _)| n == "call")
            .map(|(_, c)| *c)
            .unwrap();
        assert!(calls > 0, "call opcodes counted");
        // Disabled VMs collect nothing.
        let quiet = crate::Gvm::new();
        quiet.eval_str("(+ 1 2)").unwrap();
        assert!(quiet.profiler().snapshot().functions.is_empty());
    }

    #[test]
    fn suspended_intervals_are_excluded() {
        use crate::fiber::RunOutcome;
        use gozer_lang::Value;

        let gvm = crate::Gvm::new();
        gvm.profiler().set_enabled(true);
        gvm.eval_str("(defun waiter () (yield :a) (yield :b) 42)")
            .unwrap();
        let f = gvm.function("waiter").unwrap();
        let RunOutcome::Suspended(s1) = gvm.call_fiber(&f, vec![]).unwrap() else {
            panic!("expected first suspension")
        };
        std::thread::sleep(std::time::Duration::from_millis(60));
        let RunOutcome::Suspended(s2) = gvm.resume_fiber(s1.state, Value::Nil).unwrap() else {
            panic!("expected second suspension")
        };
        std::thread::sleep(std::time::Duration::from_millis(60));
        let RunOutcome::Done(v) = gvm.resume_fiber(s2.state, Value::Nil).unwrap() else {
            panic!("expected completion")
        };
        assert_eq!(v, Value::Int(42));
        let s = gvm.profiler().snapshot();
        let w = s
            .functions
            .iter()
            .find(|f| f.name == "waiter")
            .expect("waiter profiled");
        assert_eq!(w.calls, 1, "resume must not re-count the call");
        assert!(
            w.incl_nanos < 50_000_000,
            "suspended time charged to waiter: {}ns",
            w.incl_nanos
        );
    }
}
