//! Deterministic fault injection for the simulated cluster.
//!
//! A [`ChaosPlan`] is a *pure function* from `(seed, fault point, stable
//! message key)` to a fault decision. Nothing in a decision depends on
//! wall-clock time, broker-assigned ids, or thread scheduling, so a
//! distributed test driven by a plan is reproducible from its seed
//! alone: the same message always draws the same fate, no matter which
//! instance happens to pick it up or when.
//!
//! Faults covered (the failure modes §3.2's survivability argument has
//! to hold under):
//!
//! * **Drop** — the delivery is abandoned and the message re-queued, as
//!   when a node vanishes mid-handoff (at-least-once redelivery).
//! * **Delay** — delivery stalls for a bounded, seed-derived duration.
//! * **Duplicate** — the broker delivers the message twice.
//! * **Reorder** — the message jumps its FCFS position on enqueue.
//! * **Crash** — the receiving instance dies [`FaultPoint::BeforeProcess`]
//!   (message untouched) or [`FaultPoint::AfterProcess`] (handler ran,
//!   ack lost: the idempotency-critical case), optionally taking its
//!   whole node down.
//! * **Reply loss** — a synchronous caller's reply evaporates.
//!
//! Crashes are metered by budgets so a finite plan cannot extinguish a
//! cluster faster than a test's recovery step can respawn it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::message::Message;

/// Where a fault fires relative to message processing.
///
/// This generalizes the old `CrashPoint`: manual kills
/// ([`crate::Cluster::kill_instance`]) and seeded chaos crashes share
/// the enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Before the handler runs; the message is redelivered untouched.
    BeforeProcess,
    /// After the handler ran but before the reply/ack: the message is
    /// redelivered even though its effects may have happened, exercising
    /// at-least-once idempotency.
    AfterProcess,
}

/// What the chaos layer decided for one delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Process normally.
    Deliver,
    /// Abandon this delivery and re-queue the message.
    DropRedeliver,
    /// Stall the delivery, then process normally.
    Delay(Duration),
    /// Kill the receiving instance at the given point.
    Crash(FaultPoint),
}

/// A seeded, splittable PRNG (splitmix64). Deterministic per seed;
/// `split` derives an independent stream, so concurrent consumers each
/// get a reproducible sequence of their own.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosRng {
    /// Construct from a seed.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed ^ GOLDEN }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[0, n)` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo.wrapping_add(self.below((hi - lo) as u64) as i64)
    }

    /// Bernoulli trial: true `permille` times out of 1000.
    pub fn chance(&mut self, permille: u32) -> bool {
        self.below(1000) < permille as u64
    }

    /// Derive an independent generator (parent advances once).
    pub fn split(&mut self) -> ChaosRng {
        ChaosRng::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }
}

/// Stateless hash used for per-message fault decisions.
fn mix(seed: u64, point: u64, key: u64) -> u64 {
    let mut state = seed ^ point.wrapping_mul(0xD605_0EDB_34AF_4F29) ^ key.rotate_left(17);
    splitmix64(&mut state)
}

// Distinct fault-point discriminators for the decision hash.
const PT_DROP: u64 = 1;
const PT_DELAY: u64 = 2;
const PT_DELAY_AMOUNT: u64 = 3;
const PT_DUP: u64 = 4;
const PT_REORDER: u64 = 5;
const PT_REORDER_SLOT: u64 = 6;
const PT_CRASH_BEFORE: u64 = 7;
const PT_CRASH_AFTER: u64 = 8;
const PT_NODE_SCOPE: u64 = 9;
const PT_REPLY_LOSS: u64 = 10;

/// Fault probabilities (permille) and budgets for a [`ChaosPlan`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed from which every decision derives.
    pub seed: u64,
    /// Probability a delivery is abandoned and re-queued.
    pub drop_permille: u32,
    /// Probability a delivery is delayed.
    pub delay_permille: u32,
    /// Upper bound on an injected delay.
    pub max_delay: Duration,
    /// Probability a sent message is delivered twice.
    pub duplicate_permille: u32,
    /// Probability a sent message jumps its queue position.
    pub reorder_permille: u32,
    /// Probability the receiving instance crashes before processing.
    pub crash_before_permille: u32,
    /// Probability the receiving instance crashes after processing.
    pub crash_after_permille: u32,
    /// Probability an injected crash takes the whole node down.
    pub node_kill_permille: u32,
    /// Probability a synchronous caller's reply is lost.
    pub reply_loss_permille: u32,
    /// Total instance crashes the plan may inject.
    pub max_crashes: u32,
    /// Total node-wide kills the plan may inject (counted against
    /// `max_crashes` too, once per node kill).
    pub max_node_kills: u32,
    /// Per-message cap on injected drops: once a message has been
    /// redelivered this many times, it is always delivered. Guarantees
    /// progress under at-least-once semantics.
    pub max_faults_per_message: u32,
    /// When set, faults are injected *only* into messages with this
    /// operation; everything else flows untouched. Used by the
    /// [`poison`](ChaosConfig::poison) preset to doom one operation
    /// while the rest of the workload stays healthy.
    pub target_operation: Option<String>,
}

impl ChaosConfig {
    /// All probabilities zero: a plan that never interferes.
    pub fn off(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            drop_permille: 0,
            delay_permille: 0,
            max_delay: Duration::from_millis(1),
            duplicate_permille: 0,
            reorder_permille: 0,
            crash_before_permille: 0,
            crash_after_permille: 0,
            node_kill_permille: 0,
            reply_loss_permille: 0,
            max_crashes: 0,
            max_node_kills: 0,
            max_faults_per_message: 3,
            target_operation: None,
        }
    }

    /// The survivability preset: every fault except reply loss, at rates
    /// calibrated for workloads of tens-to-hundreds of messages. Reply
    /// loss is excluded because a lost synchronous reply surfaces as a
    /// (correct) caller timeout, not a survivability violation.
    pub fn survivability(seed: u64) -> ChaosConfig {
        ChaosConfig {
            drop_permille: 40,
            delay_permille: 60,
            max_delay: Duration::from_millis(2),
            duplicate_permille: 30,
            reorder_permille: 40,
            crash_before_permille: 12,
            crash_after_permille: 12,
            node_kill_permille: 150,
            max_crashes: 5,
            max_node_kills: 1,
            ..ChaosConfig::off(seed)
        }
    }

    /// Heavier message-level faults, no crashes: stresses redelivery and
    /// duplication without ever needing recovery.
    pub fn turbulence(seed: u64) -> ChaosConfig {
        ChaosConfig {
            drop_permille: 120,
            delay_permille: 120,
            max_delay: Duration::from_millis(2),
            duplicate_permille: 100,
            reorder_permille: 120,
            ..ChaosConfig::off(seed)
        }
    }

    /// A poison-message preset: every delivery of the targeted
    /// operation crashes its instance before processing, with a budget
    /// deep enough to outlast any redelivery budget. The rest of the
    /// workload is untouched. Exercises the dead-letter path.
    pub fn poison(seed: u64, operation: impl Into<String>) -> ChaosConfig {
        ChaosConfig {
            crash_before_permille: 1000,
            max_crashes: 64,
            target_operation: Some(operation.into()),
            ..ChaosConfig::off(seed)
        }
    }
}

/// Counters for injected faults (all monotonically increasing).
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Deliveries abandoned and re-queued.
    pub dropped: AtomicU64,
    /// Deliveries delayed.
    pub delayed: AtomicU64,
    /// Messages delivered twice.
    pub duplicated: AtomicU64,
    /// Messages enqueued out of order.
    pub reordered: AtomicU64,
    /// Instance crashes injected before processing.
    pub crashes_before: AtomicU64,
    /// Instance crashes injected after processing.
    pub crashes_after: AtomicU64,
    /// Node-wide kills injected.
    pub node_kills: AtomicU64,
    /// Synchronous replies suppressed.
    pub replies_lost: AtomicU64,
}

/// Point-in-time copy of [`ChaosStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosStatsSnapshot {
    /// Deliveries abandoned and re-queued.
    pub dropped: u64,
    /// Deliveries delayed.
    pub delayed: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages enqueued out of order.
    pub reordered: u64,
    /// Instance crashes injected before processing.
    pub crashes_before: u64,
    /// Instance crashes injected after processing.
    pub crashes_after: u64,
    /// Node-wide kills injected.
    pub node_kills: u64,
    /// Synchronous replies suppressed.
    pub replies_lost: u64,
}

impl ChaosStatsSnapshot {
    /// Total faults of any kind.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.delayed
            + self.duplicated
            + self.reordered
            + self.crashes_before
            + self.crashes_after
            + self.node_kills
            + self.replies_lost
    }
}

/// A seeded fault-injection plan consulted by the cluster at its fault
/// points.
///
/// Decision functions (`decide_*`) are pure: they depend only on the
/// seed and the message's *stable key* ([`ChaosPlan::message_key`]),
/// never on broker ids, timing, or prior decisions. The `on_*` wrappers
/// used by the cluster add the impure-but-bounded parts — arming and
/// crash budgets — and count stats.
pub struct ChaosPlan {
    config: ChaosConfig,
    armed: AtomicBool,
    crashes_spent: AtomicU64,
    node_kills_spent: AtomicU64,
    /// Injected-fault counters.
    pub stats: ChaosStats,
}

impl ChaosPlan {
    /// Build an armed plan.
    pub fn new(config: ChaosConfig) -> Arc<ChaosPlan> {
        Arc::new(ChaosPlan {
            config,
            armed: AtomicBool::new(true),
            crashes_spent: AtomicU64::new(0),
            node_kills_spent: AtomicU64::new(0),
            stats: ChaosStats::default(),
        })
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// The plan's configuration.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Stop injecting faults (used by recovery phases: disarm, respawn,
    /// let the workload finish cleanly).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Resume injecting faults.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Whether faults are currently injected.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Copy the fault counters.
    pub fn snapshot(&self) -> ChaosStatsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ChaosStatsSnapshot {
            dropped: load(&self.stats.dropped),
            delayed: load(&self.stats.delayed),
            duplicated: load(&self.stats.duplicated),
            reordered: load(&self.stats.reordered),
            crashes_before: load(&self.stats.crashes_before),
            crashes_after: load(&self.stats.crashes_after),
            node_kills: load(&self.stats.node_kills),
            replies_lost: load(&self.stats.replies_lost),
        }
    }

    /// The stable identity of a message for fault decisions: a hash of
    /// what the *sender* chose (service, operation, headers, body) plus
    /// the redelivery count — never the broker-assigned id or any
    /// timestamp, both of which vary run to run.
    ///
    /// Including `redeliveries` gives each delivery attempt a fresh
    /// draw, so a dropped message is not doomed to be dropped forever.
    pub fn message_key(msg: &Message) -> u64 {
        // FNV-1a over the stable fields.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= 0xFF;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        eat(msg.service.as_bytes());
        eat(msg.operation.as_bytes());
        for (k, v) in &msg.headers {
            eat(k.as_bytes());
            eat(v.as_bytes());
        }
        eat(&msg.body);
        eat(&msg.redeliveries.to_le_bytes());
        h
    }

    // ---- pure decision core -------------------------------------------------

    /// Pure: what happens when a message with this key and redelivery
    /// count reaches an instance. Ignores arming and crash budgets.
    pub fn decide_delivery(&self, key: u64, redeliveries: u32) -> FaultAction {
        let c = &self.config;
        if mix(c.seed, PT_CRASH_BEFORE, key) % 1000 < c.crash_before_permille as u64 {
            return FaultAction::Crash(FaultPoint::BeforeProcess);
        }
        if redeliveries < c.max_faults_per_message
            && mix(c.seed, PT_DROP, key) % 1000 < c.drop_permille as u64
        {
            return FaultAction::DropRedeliver;
        }
        if mix(c.seed, PT_DELAY, key) % 1000 < c.delay_permille as u64 {
            let micros = c.max_delay.as_micros().max(1) as u64;
            return FaultAction::Delay(Duration::from_micros(
                mix(c.seed, PT_DELAY_AMOUNT, key) % micros,
            ));
        }
        FaultAction::Deliver
    }

    /// Pure: does the instance crash after processing this message?
    pub fn decide_crash_after(&self, key: u64) -> bool {
        mix(self.config.seed, PT_CRASH_AFTER, key) % 1000
            < self.config.crash_after_permille as u64
    }

    /// Pure: is this send delivered twice?
    pub fn decide_duplicate(&self, key: u64) -> bool {
        mix(self.config.seed, PT_DUP, key) % 1000 < self.config.duplicate_permille as u64
    }

    /// Pure: does this send jump the queue, and by how many slots?
    pub fn decide_reorder(&self, key: u64) -> Option<usize> {
        if mix(self.config.seed, PT_REORDER, key) % 1000 < self.config.reorder_permille as u64 {
            Some((mix(self.config.seed, PT_REORDER_SLOT, key) % 3 + 1) as usize)
        } else {
            None
        }
    }

    /// Pure: does an injected crash take the whole node?
    pub fn decide_node_scope(&self, key: u64) -> bool {
        mix(self.config.seed, PT_NODE_SCOPE, key) % 1000 < self.config.node_kill_permille as u64
    }

    /// Pure: is the synchronous reply for this correlation lost?
    pub fn decide_reply_loss(&self, correlation: u64) -> bool {
        mix(self.config.seed, PT_REPLY_LOSS, correlation) % 1000
            < self.config.reply_loss_permille as u64
    }

    // ---- effectful wrappers (arming + budgets + stats) ----------------------

    /// Is this message within the plan's blast radius? (Always, unless
    /// the config targets a single operation.)
    fn targets(&self, msg: &Message) -> bool {
        match &self.config.target_operation {
            Some(op) => msg.operation == *op,
            None => true,
        }
    }

    fn try_spend_crash(&self) -> bool {
        let max = self.config.max_crashes as u64;
        let mut spent = self.crashes_spent.load(Ordering::SeqCst);
        loop {
            if spent >= max {
                return false;
            }
            match self.crashes_spent.compare_exchange(
                spent,
                spent + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => spent = actual,
            }
        }
    }

    /// Cluster hook: decide the fate of a delivery. Crash decisions are
    /// suppressed once the crash budget is spent (the message is then
    /// delivered normally).
    pub fn on_deliver(&self, msg: &Message) -> FaultAction {
        if !self.is_armed() || !self.targets(msg) {
            return FaultAction::Deliver;
        }
        let key = ChaosPlan::message_key(msg);
        match self.decide_delivery(key, msg.redeliveries) {
            FaultAction::Crash(point) => {
                if self.try_spend_crash() {
                    self.stats.crashes_before.fetch_add(1, Ordering::Relaxed);
                    FaultAction::Crash(point)
                } else {
                    FaultAction::Deliver
                }
            }
            FaultAction::DropRedeliver => {
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                FaultAction::DropRedeliver
            }
            FaultAction::Delay(d) => {
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                FaultAction::Delay(d)
            }
            FaultAction::Deliver => FaultAction::Deliver,
        }
    }

    /// Cluster hook: crash after the handler ran?
    pub fn on_after_process(&self, msg: &Message) -> bool {
        if !self.is_armed() || !self.targets(msg) {
            return false;
        }
        let key = ChaosPlan::message_key(msg);
        if self.decide_crash_after(key) && self.try_spend_crash() {
            self.stats.crashes_after.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Cluster hook: deliver this send twice?
    pub fn on_send_duplicate(&self, msg: &Message) -> bool {
        if !self.is_armed() || !self.targets(msg) {
            return false;
        }
        if self.decide_duplicate(ChaosPlan::message_key(msg)) {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Cluster hook: displace this send in the queue by `n` slots?
    pub fn on_send_reorder(&self, msg: &Message) -> Option<usize> {
        if !self.is_armed() || !self.targets(msg) {
            return None;
        }
        let slots = self.decide_reorder(ChaosPlan::message_key(msg))?;
        self.stats.reordered.fetch_add(1, Ordering::Relaxed);
        Some(slots)
    }

    /// Cluster hook: widen an injected crash to the whole node? Budgeted
    /// separately (and consumes nothing extra when the budget is gone).
    pub fn on_node_scope(&self, msg: &Message) -> bool {
        if !self.is_armed() {
            return false;
        }
        if !self.decide_node_scope(ChaosPlan::message_key(msg)) {
            return false;
        }
        let max = self.config.max_node_kills as u64;
        if self.node_kills_spent.fetch_add(1, Ordering::SeqCst) < max {
            self.stats.node_kills.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Cluster hook: suppress a synchronous caller's reply?
    pub fn on_caller_reply(&self, correlation: u64) -> bool {
        if !self.is_armed() {
            return false;
        }
        if self.decide_reply_loss(correlation) {
            self.stats.replies_lost.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

impl std::fmt::Debug for ChaosPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosPlan")
            .field("seed", &self.config.seed)
            .field("armed", &self.is_armed())
            .field("stats", &self.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(op: &str, body: &[u8], redeliveries: u32) -> Message {
        let mut m = Message::new("svc", op, body.to_vec()).header("fiber", "7");
        m.redeliveries = redeliveries;
        m
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_key() {
        let plan_a = ChaosPlan::new(ChaosConfig::survivability(42));
        let plan_b = ChaosPlan::new(ChaosConfig::survivability(42));
        let plan_c = ChaosPlan::new(ChaosConfig::survivability(43));
        let mut differs = false;
        for i in 0..500u32 {
            let m = msg("Op", &i.to_le_bytes(), i % 3);
            let key = ChaosPlan::message_key(&m);
            assert_eq!(
                plan_a.decide_delivery(key, m.redeliveries),
                plan_b.decide_delivery(key, m.redeliveries)
            );
            assert_eq!(plan_a.decide_crash_after(key), plan_b.decide_crash_after(key));
            assert_eq!(plan_a.decide_duplicate(key), plan_b.decide_duplicate(key));
            assert_eq!(plan_a.decide_reorder(key), plan_b.decide_reorder(key));
            if plan_a.decide_delivery(key, m.redeliveries)
                != plan_c.decide_delivery(key, m.redeliveries)
            {
                differs = true;
            }
        }
        assert!(differs, "different seeds should produce different schedules");
    }

    #[test]
    fn message_key_ignores_broker_id_and_time() {
        let mut a = msg("Op", b"payload", 1);
        let mut b = msg("Op", b"payload", 1);
        a.id = 17;
        b.id = 99;
        b.enqueued_at = std::time::Instant::now();
        assert_eq!(ChaosPlan::message_key(&a), ChaosPlan::message_key(&b));
        // But any stable field changes the key.
        let c = msg("Other", b"payload", 1);
        let d = msg("Op", b"payload", 2);
        assert_ne!(ChaosPlan::message_key(&a), ChaosPlan::message_key(&c));
        assert_ne!(ChaosPlan::message_key(&a), ChaosPlan::message_key(&d));
    }

    #[test]
    fn redelivery_cap_guarantees_progress() {
        let mut config = ChaosConfig::off(7);
        config.drop_permille = 1000; // always drop...
        config.max_faults_per_message = 3; // ...until the cap
        let plan = ChaosPlan::new(config);
        let m = msg("Op", b"x", 3);
        let key = ChaosPlan::message_key(&m);
        assert_eq!(plan.decide_delivery(key, 3), FaultAction::Deliver);
        assert_eq!(plan.decide_delivery(key, 2), FaultAction::DropRedeliver);
    }

    #[test]
    fn crash_budget_is_finite() {
        let mut config = ChaosConfig::off(5);
        config.crash_before_permille = 1000;
        config.max_crashes = 2;
        let plan = ChaosPlan::new(config);
        let mut crashes = 0;
        for i in 0..10u32 {
            let m = msg("Op", &i.to_le_bytes(), 0);
            if matches!(plan.on_deliver(&m), FaultAction::Crash(_)) {
                crashes += 1;
            }
        }
        assert_eq!(crashes, 2);
        assert_eq!(plan.snapshot().crashes_before, 2);
    }

    #[test]
    fn disarm_stops_all_faults() {
        let plan = ChaosPlan::new(ChaosConfig::turbulence(11));
        plan.disarm();
        for i in 0..200u32 {
            let m = msg("Op", &i.to_le_bytes(), 0);
            assert_eq!(plan.on_deliver(&m), FaultAction::Deliver);
            assert!(!plan.on_send_duplicate(&m));
            assert!(plan.on_send_reorder(&m).is_none());
        }
        assert_eq!(plan.snapshot().total(), 0);
    }

    #[test]
    fn rng_split_streams_are_independent_and_reproducible() {
        let mut parent_a = ChaosRng::new(3);
        let mut parent_b = ChaosRng::new(3);
        let mut child_a = parent_a.split();
        let mut child_b = parent_b.split();
        let xs: Vec<u64> = (0..8).map(|_| child_a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| child_b.next_u64()).collect();
        assert_eq!(xs, ys);
        let ps: Vec<u64> = (0..8).map(|_| parent_a.next_u64()).collect();
        assert_ne!(xs, ps, "child stream must differ from parent stream");
    }
}
