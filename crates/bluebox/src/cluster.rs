//! The cluster: broker, service registry, instances, failure injection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use gozer_obs::{Event, EventKind, Histogram, Obs, Phase};
use gozer_xml::ServiceDescription;
use parking_lot::{Mutex, RwLock};

use crate::chaos::{ChaosPlan, FaultAction};
use crate::message::{Fault, Message, ReplyTo};
use crate::metrics::Metrics;
use crate::queue::{Policy, ServiceQueue};
use crate::recovery::{DeadLetter, Lease, PendingReclaim, RecoveryConfig, RecoveryStats, RecoveryStatsSnapshot};
use crate::transport::{InProcessTransport, Transport};

pub use crate::chaos::FaultPoint;

/// Backwards-compatible name for [`FaultPoint`]: manual kill injection
/// predates the general chaos layer.
pub type CrashPoint = FaultPoint;

/// A service operation handler. One handler object serves every instance
/// of the service (instances are threads competing on the queue).
pub trait Handler: Send + Sync {
    /// Process one request; the reply body (possibly empty) or a fault.
    fn handle(&self, ctx: &ServiceCtx, msg: &Message) -> Result<Vec<u8>, Fault>;
}

impl<F> Handler for F
where
    F: Fn(&ServiceCtx, &Message) -> Result<Vec<u8>, Fault> + Send + Sync,
{
    fn handle(&self, ctx: &ServiceCtx, msg: &Message) -> Result<Vec<u8>, Fault> {
        self(ctx, msg)
    }
}

/// Context handed to a handler invocation.
pub struct ServiceCtx {
    /// The cluster (for nested calls and sends).
    pub cluster: Arc<Cluster>,
    /// The node this instance runs on (fiber caches are per-node).
    pub node_id: u32,
    /// The instance id.
    pub instance_id: u64,
    /// The service name.
    pub service: String,
}

/// Errors from synchronous calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallError {
    /// The service replied with a fault.
    Fault(Fault),
    /// No reply within the timeout.
    Timeout,
    /// The cluster is shutting down.
    Closed,
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::Fault(fault) => write!(f, "fault: {fault}"),
            CallError::Timeout => write!(f, "call timed out"),
            CallError::Closed => write!(f, "cluster closed"),
        }
    }
}

impl std::error::Error for CallError {}

struct ServiceEntry {
    desc: Option<ServiceDescription>,
    handler: Arc<dyn Handler>,
}

pub(crate) struct InstanceControl {
    pub(crate) stop: AtomicBool,
    pub(crate) fault: Mutex<Option<FaultPoint>>,
    pub(crate) busy: AtomicBool,
    pub(crate) alive: AtomicBool,
    /// Last queue interaction (or, for remote proxy instances, last
    /// heartbeat frame from the worker process); the reaper treats a
    /// holder whose heartbeat is older than the lease TTL as failed.
    pub(crate) heartbeat: Mutex<Instant>,
}

impl InstanceControl {
    pub(crate) fn new() -> InstanceControl {
        InstanceControl {
            stop: AtomicBool::new(false),
            fault: Mutex::new(None),
            busy: AtomicBool::new(false),
            alive: AtomicBool::new(true),
            heartbeat: Mutex::new(Instant::now()),
        }
    }
}

struct InstanceHandle {
    id: u64,
    node_id: u32,
    service: String,
    control: Arc<InstanceControl>,
    thread: Option<JoinHandle<()>>,
}

/// The simulated BlueBox cluster.
pub struct Cluster {
    queues: RwLock<HashMap<String, Arc<ServiceQueue>>>,
    services: RwLock<HashMap<String, ServiceEntry>>,
    pending: Mutex<HashMap<u64, Sender<Result<Vec<u8>, Fault>>>>,
    instances: Mutex<Vec<InstanceHandle>>,
    next_msg_id: AtomicU64,
    next_corr: AtomicU64,
    next_instance: AtomicU64,
    policy: Policy,
    /// Steal slack applied to queues created from now on (see
    /// [`ServiceQueue::with_affinity_slack`]).
    affinity_slack: RwLock<usize>,
    /// Maps a fiber id to its affine node, so service replies
    /// (`ResumeFromCall`) inherit the placement hint of the fiber they
    /// resume. Installed by the embedder (Vinz).
    affinity_resolver: RwLock<Option<Arc<dyn Fn(&str) -> Option<u32> + Send + Sync>>>,
    /// Latency-phase attribution hook: `f(task_id, phase)` flips the
    /// task's tracker ledger into `phase`. Installed by the embedder
    /// (Vinz); the broker calls it when it parks, releases, reclaims,
    /// or re-queues a task-correlated message.
    phase_observer: RwLock<Option<Arc<dyn Fn(&str, Phase) + Send + Sync>>>,
    chaos: RwLock<Option<Arc<ChaosPlan>>>,
    /// Broker metrics.
    pub metrics: Arc<Metrics>,
    obs: Arc<Obs>,
    hist_wait: Arc<Histogram>,
    hist_busy: Arc<Histogram>,
    hist_sync: Arc<Histogram>,
    // --- recovery layer ---------------------------------------------------
    recovery_cfg: RwLock<RecoveryConfig>,
    /// Outstanding leases by broker message id.
    leases: Mutex<HashMap<u64, Lease>>,
    /// Reclaimed messages waiting out their backoff (queue lease held).
    reclaims_pending: Mutex<Vec<PendingReclaim>>,
    /// Delayed sends ([`Cluster::send_after`]).
    delayed: Mutex<Vec<(Instant, Message)>>,
    /// Per-queue dead-letter stores.
    dead: Mutex<HashMap<String, Vec<DeadLetter>>>,
    dead_observers: Mutex<Vec<Box<dyn Fn(&DeadLetter) + Send + Sync>>>,
    recovery_stats: Arc<RecoveryStats>,
    closed: AtomicBool,
    reaper: Mutex<Option<JoinHandle<()>>>,
    // --- speculative persistence (store watermark gating) -------------
    /// Asks the store whether a commit watermark is durable yet.
    /// Installed by the embedder (Vinz) when its store defers
    /// durability; absent means nothing is ever held.
    durability_probe: RwLock<Option<Arc<dyn Fn(u64) -> bool + Send + Sync>>>,
    /// Messages parked until the store's commit watermark passes their
    /// `hold_until` gate. Dropped on shutdown — exactly what a crash
    /// would do to effects whose save never became durable.
    held: Mutex<Vec<Message>>,
    held_total: AtomicU64,
    held_released: AtomicU64,
    /// Where instances run: in-process threads (the deterministic
    /// default) or proxies for remote worker processes. See
    /// [`crate::transport`].
    transport: RwLock<Arc<dyn Transport>>,
}

impl Cluster {
    /// New cluster with FCFS queues (the production default, §5).
    pub fn new() -> Arc<Cluster> {
        Cluster::with_policy(Policy::Fcfs)
    }

    /// New cluster with the given queue scheduling policy.
    pub fn with_policy(policy: Policy) -> Arc<Cluster> {
        let obs = Arc::new(Obs::new());
        let metrics = Arc::new(Metrics::default());
        register_broker_metrics(&obs, &metrics);
        let reg = &obs.registry;
        let hist_wait = reg.histogram(
            "bluebox_queue_wait_seconds",
            "Message queue wait, enqueue to delivery.",
            "",
        );
        let hist_busy = reg.histogram(
            "bluebox_handler_busy_seconds",
            "Time spent inside handlers.",
            "",
        );
        let hist_sync = reg.histogram(
            "bluebox_sync_block_seconds",
            "Caller block time of synchronous nested calls.",
            "",
        );
        let recovery_stats = Arc::new(RecoveryStats::default());
        let rs = recovery_stats.clone();
        reg.counter_fn(
            "bluebox_lease_reclaims_total",
            "In-flight messages reclaimed from dead or stale instances.",
            "",
            move || rs.reclaims.load(Ordering::Relaxed),
        );
        let rs = recovery_stats.clone();
        reg.counter_fn(
            "gozer_dead_letters_total",
            "Messages quarantined after exhausting their redelivery budget.",
            "",
            move || rs.dead_letters.load(Ordering::Relaxed),
        );
        let cluster = Arc::new(Cluster {
            queues: RwLock::new(HashMap::new()),
            services: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            instances: Mutex::new(Vec::new()),
            next_msg_id: AtomicU64::new(1),
            next_corr: AtomicU64::new(1),
            next_instance: AtomicU64::new(1),
            policy,
            affinity_slack: RwLock::new(crate::queue::DEFAULT_AFFINITY_SLACK),
            affinity_resolver: RwLock::new(None),
            phase_observer: RwLock::new(None),
            chaos: RwLock::new(None),
            metrics,
            obs,
            hist_wait,
            hist_busy,
            hist_sync,
            recovery_cfg: RwLock::new(RecoveryConfig::default()),
            leases: Mutex::new(HashMap::new()),
            reclaims_pending: Mutex::new(Vec::new()),
            delayed: Mutex::new(Vec::new()),
            dead: Mutex::new(HashMap::new()),
            dead_observers: Mutex::new(Vec::new()),
            recovery_stats,
            closed: AtomicBool::new(false),
            reaper: Mutex::new(None),
            durability_probe: RwLock::new(None),
            held: Mutex::new(Vec::new()),
            held_total: AtomicU64::new(0),
            held_released: AtomicU64::new(0),
            transport: RwLock::new(Arc::new(InProcessTransport)),
        });
        // Affinity delivery counters, summed across all service queues.
        let weak = Arc::downgrade(&cluster);
        cluster.obs.registry.counter_fn(
            "gozer_affinity_hits_total",
            "Affinity-stamped messages delivered to their affine node.",
            "",
            move || weak.upgrade().map_or(0, |c| c.affinity_stats().0),
        );
        let weak = Arc::downgrade(&cluster);
        cluster.obs.registry.counter_fn(
            "gozer_affinity_misses_total",
            "Affinity-stamped messages delivered elsewhere (steal or dead node).",
            "",
            move || weak.upgrade().map_or(0, |c| c.affinity_stats().1),
        );
        // Speculative-persistence gate visibility.
        let weak = Arc::downgrade(&cluster);
        cluster.obs.registry.counter_fn(
            "gozer_messages_held_total",
            "Outbound messages parked behind a not-yet-durable store watermark.",
            "",
            move || {
                weak.upgrade()
                    .map_or(0, |c| c.held_total.load(Ordering::Relaxed))
            },
        );
        let weak = Arc::downgrade(&cluster);
        cluster.obs.registry.gauge_fn(
            "gozer_messages_held",
            "Messages currently parked awaiting durability.",
            "",
            move || weak.upgrade().map_or(0, |c| c.held.lock().len() as i64),
        );
        // Backpressure introspection: total waiting messages across all
        // service queues, read by admission gates and the scale bench.
        let weak = Arc::downgrade(&cluster);
        cluster.obs.registry.gauge_fn(
            "gozer_queue_depth",
            "Waiting messages across all service queues.",
            "",
            move || weak.upgrade().map_or(0, |c| c.total_queue_depth() as i64),
        );
        let weak = Arc::downgrade(&cluster);
        let reaper = std::thread::Builder::new()
            .name("bb-reaper".into())
            .spawn(move || reaper_loop(weak))
            .expect("spawn reaper thread");
        *cluster.reaper.lock() = Some(reaper);
        cluster
    }

    /// Set the affinity steal slack for queues created from now on
    /// (0 disables affinity preference). Call before deploying services.
    pub fn set_affinity_slack(&self, slack: usize) {
        *self.affinity_slack.write() = slack;
    }

    /// Install the fiber-id → affine-node resolver used to stamp service
    /// replies (`ResumeFromCall`) with the placement hint of the fiber
    /// they resume. Replaces any previous resolver.
    pub fn set_affinity_resolver(
        &self,
        f: impl Fn(&str) -> Option<u32> + Send + Sync + 'static,
    ) {
        *self.affinity_resolver.write() = Some(Arc::new(f));
    }

    /// Install the latency-phase observer: `f(task_id, phase)` is
    /// called whenever a broker transition changes what a task is
    /// waiting on (parked on durability, released to a queue, lease
    /// expired, re-queued). Installed by the embedder (Vinz) so the
    /// task tracker's phase ledger follows broker-side time.
    pub fn set_phase_observer(&self, f: impl Fn(&str, Phase) + Send + Sync + 'static) {
        *self.phase_observer.write() = Some(Arc::new(f));
    }

    /// Flip `msg`'s task (if the message is task-correlated) into
    /// `phase` via the installed observer.
    fn note_phase(&self, msg: &Message, phase: Phase) {
        let observer = self.phase_observer.read().clone();
        let Some(observer) = observer else { return };
        if let Some(task) = task_of(msg) {
            observer(task, phase);
        }
    }

    /// Install the durability probe the speculative-send gate consults:
    /// `f(watermark)` answers "has the store committed this watermark?".
    /// Installed by the embedder (Vinz) alongside the store's commit
    /// hook. Replaces any previous probe.
    pub fn set_durability_probe(&self, f: impl Fn(u64) -> bool + Send + Sync + 'static) {
        *self.durability_probe.write() = Some(Arc::new(f));
    }

    /// The store's commit watermark advanced to `watermark`: release
    /// every held message whose gate it passes. Wired to the store's
    /// commit hook by the embedder.
    pub fn note_durable(&self, watermark: u64) {
        let ready: Vec<Message> = {
            let mut held = self.held.lock();
            if held.is_empty() {
                return;
            }
            let (ready, rest) = held.drain(..).partition(|m| m.hold_until <= watermark);
            *held = rest;
            ready
        };
        for msg in ready {
            self.release_held(msg);
        }
    }

    /// Deliver a message whose durability gate just opened: stamp how
    /// long it was parked (so queue-wait accounting can exclude it),
    /// flip its task back to `queue_wait`, and dispatch.
    fn release_held(&self, mut msg: Message) {
        self.held_released.fetch_add(1, Ordering::Relaxed);
        let held = msg.enqueued_at.elapsed().as_nanos() as u64;
        msg.held_nanos = msg.held_nanos.saturating_add(held);
        self.obs.bus.emit(msg_event(
            EventKind::MessageReleased {
                service: msg.service.clone(),
                operation: msg.operation.clone(),
                held_nanos: held,
            },
            &msg,
        ));
        self.note_phase(&msg, Phase::QueueWait);
        self.dispatch(msg);
    }

    /// Messages currently parked behind the speculative-send gate.
    pub fn held_count(&self) -> usize {
        self.held.lock().len()
    }

    /// Affinity delivery counters summed across queues, as
    /// `(hits, misses)` — the `gozer_affinity_hits_total` /
    /// `gozer_affinity_misses_total` metrics.
    pub fn affinity_stats(&self) -> (u64, u64) {
        let queues = self.queues.read();
        queues.values().fold((0, 0), |(h, m), q| {
            let (qh, qm) = q.affinity_counts();
            (h + qh, m + qm)
        })
    }

    /// The cluster's observability handle: the shared event bus and
    /// metrics registry every layer (broker, Vinz, VM hooks) emits into.
    pub fn obs(&self) -> Arc<Obs> {
        self.obs.clone()
    }

    /// Install a chaos plan: from now on every send, delivery, and
    /// reply consults it. Replaces any previous plan.
    pub fn set_chaos(&self, plan: Arc<ChaosPlan>) {
        *self.chaos.write() = Some(plan);
    }

    /// Remove the chaos plan (already-scheduled faults stand; no new
    /// ones are injected).
    pub fn clear_chaos(&self) {
        *self.chaos.write() = None;
    }

    /// The currently installed chaos plan, if any.
    pub fn chaos_plan(&self) -> Option<Arc<ChaosPlan>> {
        self.chaos.read().clone()
    }

    fn queue(&self, service: &str) -> Arc<ServiceQueue> {
        if let Some(q) = self.queues.read().get(service) {
            return q.clone();
        }
        let mut queues = self.queues.write();
        let slack = *self.affinity_slack.read();
        queues
            .entry(service.to_string())
            .or_insert_with(|| Arc::new(ServiceQueue::with_affinity_slack(self.policy, slack)))
            .clone()
    }

    /// Register a service: its interface document (what `deflink`
    /// fetches) and the handler shared by all instances. Instances must
    /// be spawned separately.
    pub fn register_service(
        &self,
        name: &str,
        desc: Option<ServiceDescription>,
        handler: Arc<dyn Handler>,
    ) {
        self.services
            .write()
            .insert(name.to_string(), ServiceEntry { desc, handler });
    }

    /// Fetch a service's interface document.
    pub fn wsdl(&self, service: &str) -> Option<ServiceDescription> {
        self.services.read().get(service)?.desc.clone()
    }

    /// Install a transport (see [`crate::transport`]); subsequent
    /// [`spawn_instances`](Self::spawn_instances) calls go through it.
    /// Replaces the previous transport without tearing it down.
    pub fn set_transport(&self, t: Arc<dyn Transport>) {
        *self.transport.write() = t;
    }

    /// The installed transport.
    pub fn transport(&self) -> Arc<dyn Transport> {
        self.transport.read().clone()
    }

    /// Spawn `count` instances of `service` on `node_id` via the
    /// installed transport. Returns their instance ids.
    pub fn spawn_instances(self: &Arc<Cluster>, service: &str, node_id: u32, count: usize) -> Vec<u64> {
        let transport = self.transport();
        transport.spawn_instances(self, service, node_id, count)
    }

    /// Spawn `count` in-process instance threads of `service` on
    /// `node_id` — the [`InProcessTransport`] implementation, and the
    /// path remote transports use for services that stay local.
    pub(crate) fn spawn_local_instances(self: &Arc<Cluster>, service: &str, node_id: u32, count: usize) -> Vec<u64> {
        let handler = self
            .services
            .read()
            .get(service)
            .map(|e| e.handler.clone())
            .expect("service must be registered before spawning instances");
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let id = self.next_instance.fetch_add(1, Ordering::Relaxed);
            ids.push(id);
            let control = Arc::new(InstanceControl {
                stop: AtomicBool::new(false),
                fault: Mutex::new(None),
                busy: AtomicBool::new(false),
                alive: AtomicBool::new(true),
                heartbeat: Mutex::new(Instant::now()),
            });
            let queue = self.queue(service);
            let ctx = ServiceCtx {
                cluster: self.clone(),
                node_id,
                instance_id: id,
                service: service.to_string(),
            };
            let thread_control = control.clone();
            let thread_handler = handler.clone();
            let thread = std::thread::Builder::new()
                .name(format!("bb-{service}-{id}"))
                .spawn(move || instance_loop(ctx, queue, thread_handler, thread_control))
                .expect("spawn instance thread");
            self.instances.lock().push(InstanceHandle {
                id,
                node_id,
                service: service.to_string(),
                control,
                thread: Some(thread),
            });
        }
        ids
    }

    /// Register one *proxy* instance for a remote worker process: the
    /// transport allocates the id and control here, then `spawn` starts
    /// the proxy thread that pops the queue and forwards deliveries
    /// over its connection. The handle joins the normal instance table,
    /// so the lease reaper, `live_instances`, kill helpers, and
    /// shutdown all treat remote capacity exactly like local threads.
    pub(crate) fn register_remote_instance(
        self: &Arc<Cluster>,
        service: &str,
        node_id: u32,
        spawn: impl FnOnce(u64, Arc<InstanceControl>) -> JoinHandle<()>,
    ) -> u64 {
        let id = self.next_instance.fetch_add(1, Ordering::Relaxed);
        let control = Arc::new(InstanceControl::new());
        // Table entry first, thread second: a lease the new proxy
        // inserts must always find its holder registered, or a reaper
        // scan in the gap would reclaim it instantly as "dead holder".
        self.instances.lock().push(InstanceHandle {
            id,
            node_id,
            service: service.to_string(),
            control: control.clone(),
            thread: None,
        });
        let thread = spawn(id, control);
        let mut instances = self.instances.lock();
        if let Some(h) = instances.iter_mut().find(|h| h.id == id) {
            h.thread = Some(thread);
        }
        id
    }

    /// The queue of a service (created on first touch).
    pub(crate) fn service_queue(&self, service: &str) -> Arc<ServiceQueue> {
        self.queue(service)
    }

    /// Record a lease: `msg` is in flight at `instance`.
    pub(crate) fn insert_lease(&self, msg: &Message, service: &str, instance: u64) {
        self.leases.lock().insert(
            msg.id,
            Lease {
                msg: msg.clone(),
                service: service.to_string(),
                instance,
            },
        );
    }

    /// Claim the lease for settling. `true` means the caller owns the
    /// completion — the reaper has *not* reclaimed the message — and
    /// must route the reply and settle the queue. `false` means the
    /// message was already reclaimed (and possibly redelivered); the
    /// caller must drop its result, or the same delivery would take
    /// effect twice.
    pub(crate) fn take_lease(&self, msg_id: u64) -> bool {
        self.leases.lock().remove(&msg_id).is_some()
    }

    /// Whether `msg_id`'s lease is still outstanding.
    pub(crate) fn lease_held(&self, msg_id: u64) -> bool {
        self.leases.lock().contains_key(&msg_id)
    }

    /// Delivery-side accounting shared by local instance loops and
    /// remote proxies: metrics, queue-wait attribution, the
    /// `MessageDelivered` event, and the transport observation hook.
    pub(crate) fn note_delivered(&self, msg: &Message, node_id: u32, instance_id: u64) {
        let metrics = &self.metrics;
        // Pure queue wait: durability-hold time (stamped on release) is
        // its own latency phase, not queue time.
        let wait = (msg.enqueued_at.elapsed().as_nanos() as u64).saturating_sub(msg.held_nanos);
        metrics.add(&metrics.delivered, 1);
        metrics.add(&metrics.wait_nanos, wait);
        metrics.add(&metrics.wait_count, 1);
        self.hist_wait.observe_nanos(wait);
        self.obs.bus.emit(
            msg_event(
                EventKind::MessageDelivered {
                    service: msg.service.clone(),
                    operation: msg.operation.clone(),
                    wait_nanos: wait,
                },
                msg,
            )
            .node(node_id)
            .instance(instance_id),
        );
        self.transport().on_deliver(msg);
    }

    /// Fire-and-forget send.
    ///
    /// A message carrying a `hold_until` watermark gate is parked (not
    /// queued) while the installed durability probe reports the
    /// watermark as not yet committed; [`Cluster::note_durable`] — fired
    /// by the store's commit hook — releases it. With no probe
    /// installed the gate is vacuous: synchronous stores are durable by
    /// the time the send happens.
    pub fn send(&self, mut msg: Message) {
        msg.id = self.next_msg_id.fetch_add(1, Ordering::Relaxed);
        msg.enqueued_at = Instant::now();
        self.metrics.add(&self.metrics.sent, 1);
        self.obs.bus.emit(msg_event(
            EventKind::MessageSent {
                service: msg.service.clone(),
                operation: msg.operation.clone(),
            },
            &msg,
        ));
        self.transport().on_send(&msg);
        if msg.hold_until > 0 {
            let probe = self.durability_probe.read().clone();
            if let Some(probe) = probe {
                // Probe and park under the held-list lock: note_durable
                // drains that list under the same lock *after* the
                // store's watermark advances, so a commit can't slip
                // between a failed probe and the push — a message that
                // parks is guaranteed a later note_durable (or the
                // reaper's re-probe) will see it.
                let mut held = self.held.lock();
                if !probe(msg.hold_until) {
                    self.held_total.fetch_add(1, Ordering::Relaxed);
                    self.obs.bus.emit(msg_event(
                        EventKind::MessageHeld {
                            service: msg.service.clone(),
                            operation: msg.operation.clone(),
                            watermark: msg.hold_until,
                        },
                        &msg,
                    ));
                    self.note_phase(&msg, Phase::DurabilityHold);
                    held.push(msg);
                    return;
                }
            }
        }
        self.dispatch(msg);
    }

    /// The enqueue tail of [`Cluster::send`]: chaos faults, then the
    /// service queue. Held messages re-enter here when released.
    fn dispatch(&self, msg: Message) {
        let queue = self.queue(&msg.service);
        if let Some(plan) = self.chaos_plan() {
            if plan.on_send_duplicate(&msg) {
                self.emit_fault(&msg, "duplicate");
                let mut dup = msg.clone();
                dup.id = self.next_msg_id.fetch_add(1, Ordering::Relaxed);
                queue.push(dup);
            }
            if let Some(slots) = plan.on_send_reorder(&msg) {
                self.emit_fault(&msg, "reorder");
                queue.push_displaced(msg, slots);
                return;
            }
        }
        queue.push(msg);
    }

    /// Emit a [`EventKind::FaultInjected`] event correlated to `msg`.
    fn emit_fault(&self, msg: &Message, fault: &str) {
        self.obs.bus.emit(msg_event(
            EventKind::FaultInjected {
                fault: fault.to_string(),
                operation: msg.operation.clone(),
            },
            msg,
        ));
    }

    /// Send a request whose reply is delivered as a fresh request to
    /// `reply_service`/`reply_operation` — the `ResumeFromCall` pattern
    /// of §3.2. Returns the correlation id stamped on the reply.
    pub fn send_with_service_reply(
        &self,
        msg: Message,
        reply_service: &str,
        reply_operation: &str,
    ) -> u64 {
        let correlation = self.allocate_correlation();
        self.send_with_service_reply_corr(msg, reply_service, reply_operation, correlation);
        correlation
    }

    /// Reserve a correlation id without sending anything. Lets callers
    /// durably record the correlation *before* the request goes out, so a
    /// fast reply can never race the bookkeeping.
    pub fn allocate_correlation(&self) -> u64 {
        self.next_corr.fetch_add(1, Ordering::Relaxed)
    }

    /// [`send_with_service_reply`](Self::send_with_service_reply) with a
    /// pre-allocated correlation id.
    pub fn send_with_service_reply_corr(
        &self,
        mut msg: Message,
        reply_service: &str,
        reply_operation: &str,
        correlation: u64,
    ) {
        msg.reply_to = ReplyTo::Service {
            service: reply_service.to_string(),
            operation: reply_operation.to_string(),
            correlation,
        };
        self.send(msg);
    }

    /// Synchronous call: blocks the calling thread until the reply (the
    /// traditional pattern whose wasted slot-time §3.2 quantifies).
    pub fn call(&self, mut msg: Message, timeout: Duration) -> Result<Vec<u8>, CallError> {
        let correlation = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(correlation, tx);
        msg.reply_to = ReplyTo::Caller { correlation };
        self.send(msg);
        let started = Instant::now();
        let result = rx.recv_timeout(timeout);
        let blocked = started.elapsed().as_nanos() as u64;
        self.metrics.add(&self.metrics.sync_block_nanos, blocked);
        self.metrics.add(&self.metrics.sync_block_count, 1);
        self.hist_sync.observe_nanos(blocked);
        match result {
            Ok(Ok(body)) => Ok(body),
            Ok(Err(fault)) => Err(CallError::Fault(fault)),
            Err(_) => {
                self.pending.lock().remove(&correlation);
                Err(CallError::Timeout)
            }
        }
    }

    pub(crate) fn route_reply(&self, request: &Message, result: Result<Vec<u8>, Fault>) {
        self.transport().on_reply(request);
        match &request.reply_to {
            ReplyTo::Nowhere => {
                if result.is_err() {
                    self.metrics.add(&self.metrics.faults, 1);
                }
            }
            ReplyTo::Caller { correlation } => {
                if result.is_err() {
                    self.metrics.add(&self.metrics.faults, 1);
                }
                // Chaos reply loss: the caller's entry stays in
                // `pending` and the call surfaces as a timeout, exactly
                // as a vanished reply would in production.
                if let Some(plan) = self.chaos_plan() {
                    if plan.on_caller_reply(*correlation) {
                        self.emit_fault(request, "reply-loss");
                        return;
                    }
                }
                if let Some(tx) = self.pending.lock().remove(correlation) {
                    let _ = tx.send(result);
                }
            }
            ReplyTo::Service {
                service,
                operation,
                correlation,
            } => {
                let mut reply = Message::new(service, operation, Vec::new())
                    .header("correlation", correlation.to_string());
                // Propagate the workflow correlation ids so the reply —
                // and any fault the chaos layer injects into it — still
                // attaches to the fiber that made the call.
                for key in ["task-id", "fiber-id"] {
                    if let Some(v) = request.get_header(key) {
                        reply = reply.header(key, v.to_string());
                    }
                }
                // ResumeFromCall replies race back to the fiber's cache:
                // stamp them with the node that last saved the fiber.
                if let Some(resolver) = self.affinity_resolver.read().clone() {
                    if let Some(node) =
                        request.get_header("fiber-id").and_then(|id| resolver(id))
                    {
                        reply = reply.with_affinity(node);
                    }
                }
                match result {
                    Ok(body) => reply.body = body,
                    Err(fault) => {
                        self.metrics.add(&self.metrics.faults, 1);
                        reply = reply
                            .header("fault-code", fault.code)
                            .header("fault-message", fault.message);
                    }
                }
                self.send(reply);
            }
        }
    }

    /// Inject a crash into a specific instance. The instance dies when
    /// it next touches the queue — taking (and re-queuing) a message if
    /// one is available, like a real mid-handoff failure.
    pub fn kill_instance(&self, instance_id: u64, point: FaultPoint) {
        let instances = self.instances.lock();
        if let Some(h) = instances.iter().find(|h| h.id == instance_id) {
            *h.control.fault.lock() = Some(point);
        }
    }

    /// Crash every instance on a node.
    pub fn kill_node(&self, node_id: u32, point: FaultPoint) {
        let instances = self.instances.lock();
        for h in instances.iter().filter(|h| h.node_id == node_id) {
            *h.control.fault.lock() = Some(point);
        }
    }

    /// Number of instances currently inside a handler.
    pub fn busy_instances(&self, service: &str) -> usize {
        self.instances
            .lock()
            .iter()
            .filter(|h| h.service == service && h.control.busy.load(Ordering::Relaxed))
            .count()
    }

    /// Number of live (not crashed/stopped) instances of a service.
    pub fn live_instances(&self, service: &str) -> usize {
        self.instances
            .lock()
            .iter()
            .filter(|h| h.service == service && h.control.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Queue depth of a service.
    pub fn queue_depth(&self, service: &str) -> usize {
        self.queues
            .read()
            .get(service)
            .map(|q| q.depth())
            .unwrap_or(0)
    }

    /// Total waiting messages across every service queue (the
    /// `gozer_queue_depth` gauge).
    pub fn total_queue_depth(&self) -> usize {
        self.queues.read().values().map(|q| q.depth()).sum()
    }

    /// Block until a service's queue is empty and all its in-flight
    /// messages are settled, or the timeout expires. Returns whether it
    /// drained. Wakes on the queue's idle condition variable — no
    /// polling, and no pop-to-busy race: a popped message counts as in
    /// flight until the instance settles it.
    pub fn drain(&self, service: &str, timeout: Duration) -> bool {
        self.queue(service).wait_idle(Instant::now() + timeout)
    }

    /// Replace the recovery tunables (lease TTL, redelivery budget,
    /// backoff). Takes effect from the reaper's next scan.
    pub fn set_recovery(&self, cfg: RecoveryConfig) {
        *self.recovery_cfg.write() = cfg;
    }

    /// The current recovery tunables.
    pub fn recovery(&self) -> RecoveryConfig {
        self.recovery_cfg.read().clone()
    }

    /// Recovery counters: leases reclaimed, messages dead-lettered.
    pub fn recovery_stats(&self) -> RecoveryStatsSnapshot {
        self.recovery_stats.snapshot()
    }

    /// The dead-letter store of one service's queue.
    pub fn dead_letters(&self, service: &str) -> Vec<DeadLetter> {
        self.dead.lock().get(service).cloned().unwrap_or_default()
    }

    /// Total messages quarantined across all queues (the
    /// `gozer_dead_letters_total` metric).
    pub fn dead_letter_total(&self) -> u64 {
        self.recovery_stats.dead_letters.load(Ordering::Relaxed)
    }

    /// Register a dead-letter observer, invoked from the reaper thread
    /// for every quarantined message. Observers must not register
    /// further observers re-entrantly.
    pub fn on_dead_letter(&self, f: impl Fn(&DeadLetter) + Send + Sync + 'static) {
        self.dead_observers.lock().push(Box::new(f));
    }

    /// Enqueue `msg` after `delay` (delivered by the reaper thread's
    /// next scan past the due time). Zero delay sends immediately.
    pub fn send_after(&self, msg: Message, delay: Duration) {
        if delay.is_zero() {
            self.send(msg);
        } else {
            self.delayed.lock().push((Instant::now() + delay, msg));
        }
    }

    /// Messages of a service currently leased to instances (or held by
    /// the reaper awaiting reclaim) — popped but not yet settled.
    pub fn in_flight(&self, service: &str) -> usize {
        self.queues
            .read()
            .get(service)
            .map(|q| q.leased_count())
            .unwrap_or(0)
    }

    /// Whether [`shutdown`](Self::shutdown) has begun.
    pub fn is_shutdown(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }

    /// Whether the lease-reaper thread is still running — a liveness
    /// signal for `/healthz`.
    pub fn reaper_alive(&self) -> bool {
        self.reaper
            .lock()
            .as_ref()
            .is_some_and(|h| !h.is_finished())
    }

    /// `(alive, total)` instance counts across every service — the
    /// other `/healthz` liveness signal (chaos kills mark instances
    /// dead until the supervisor respawns them).
    pub fn instance_counts(&self) -> (usize, usize) {
        let instances = self.instances.lock();
        let alive = instances
            .iter()
            .filter(|h| h.control.alive.load(Ordering::Relaxed))
            .count();
        (alive, instances.len())
    }

    /// One reaper scan: expire leases whose holder is dead or stale,
    /// re-queue reclaims past their backoff (or quarantine them over
    /// budget), and release due delayed sends.
    fn recovery_tick(self: &Arc<Cluster>) {
        let cfg = self.recovery_cfg.read().clone();
        let now = Instant::now();
        // 1. Expire leases. A dead holder (crashed thread, `alive`
        //    false, or no longer registered) expires immediately; a live
        //    one only after its heartbeat goes stale past the TTL.
        let mut expired: Vec<Lease> = Vec::new();
        {
            let instances = self.instances.lock();
            let mut leases = self.leases.lock();
            let ids: Vec<u64> = leases.keys().copied().collect();
            for id in ids {
                let holder = match leases.get(&id) {
                    Some(l) => l.instance,
                    None => continue,
                };
                let failed = match instances.iter().find(|h| h.id == holder) {
                    None => true,
                    Some(h) => {
                        !h.control.alive.load(Ordering::Relaxed)
                            || now.saturating_duration_since(*h.control.heartbeat.lock())
                                > cfg.lease_ttl
                    }
                };
                if failed {
                    if let Some(l) = leases.remove(&id) {
                        expired.push(l);
                    }
                }
            }
        }
        for lease in expired {
            if lease.msg.redeliveries >= cfg.redelivery_budget {
                self.quarantine(&lease.service, lease.msg, "redelivery-budget");
            } else {
                // The task is now waiting on the redelivery machinery,
                // not on a queue or a handler.
                self.note_phase(&lease.msg, Phase::LeaseRedelivery);
                let due = now + cfg.backoff_for(lease.msg.redeliveries);
                self.reclaims_pending.lock().push(PendingReclaim {
                    due,
                    service: lease.service,
                    msg: lease.msg,
                });
            }
        }
        // 2. Re-queue reclaims past their backoff. The broker id is
        //    preserved and `push_front` bumps the redelivery count, so
        //    idempotency keys and the budget both survive the hop.
        let ready: Vec<PendingReclaim> = {
            let mut pending = self.reclaims_pending.lock();
            let (ready, rest) = pending.drain(..).partition(|p| p.due <= now);
            *pending = rest;
            ready
        };
        for p in ready {
            self.metrics.add(&self.metrics.redelivered, 1);
            self.recovery_stats.reclaims.fetch_add(1, Ordering::Relaxed);
            self.obs.bus.emit(msg_event(
                EventKind::LeaseReclaimed {
                    service: p.msg.service.clone(),
                    operation: p.msg.operation.clone(),
                },
                &p.msg,
            ));
            self.obs.bus.emit(msg_event(
                EventKind::MessageRedelivered {
                    service: p.msg.service.clone(),
                    operation: p.msg.operation.clone(),
                },
                &p.msg,
            ));
            self.note_phase(&p.msg, Phase::QueueWait);
            let queue = self.queue(&p.service);
            queue.push_front(p.msg);
            queue.settle();
        }
        // 3. Release due delayed sends.
        let due_sends: Vec<(Instant, Message)> = {
            let mut delayed = self.delayed.lock();
            let (due, rest) = delayed.drain(..).partition(|(at, _)| *at <= now);
            *delayed = rest;
            due
        };
        for (_, m) in due_sends {
            self.send(m);
        }
        // 4. Safety net for the speculative-send gate: re-probe held
        //    messages directly, in case a commit-hook notification was
        //    lost (e.g. the hook was installed after a flush completed).
        let probe = self.durability_probe.read().clone();
        if let Some(probe) = probe {
            let ready: Vec<Message> = {
                let mut held = self.held.lock();
                if held.is_empty() {
                    return;
                }
                let (ready, rest) = held.drain(..).partition(|m| probe(m.hold_until));
                *held = rest;
                ready
            };
            for msg in ready {
                self.release_held(msg);
            }
        }
    }

    /// Handler-path recovery for fire-and-forget operations: re-queue
    /// `msg` for another attempt, or quarantine it once its redelivery
    /// budget is spent. Unlike the reaper's reclaim path this never
    /// settles the queue lease — the instance loop settles the in-flight
    /// delivery itself after the handler returns. This is how an
    /// embedder turns a persistent handler failure (e.g. a corrupt
    /// persisted continuation) into a dead letter instead of a silently
    /// dropped message that wedges its task forever.
    pub fn requeue_or_quarantine(&self, service: &str, msg: Message, reason: &str) {
        let budget = self.recovery_cfg.read().redelivery_budget;
        if msg.redeliveries >= budget {
            self.quarantine_inner(service, msg, reason, false);
        } else {
            self.metrics.add(&self.metrics.redelivered, 1);
            self.obs.bus.emit(msg_event(
                EventKind::MessageRedelivered {
                    service: msg.service.clone(),
                    operation: msg.operation.clone(),
                },
                &msg,
            ));
            // push_front bumps the redelivery count, so the budget
            // converges even when every attempt fails the same way.
            self.note_phase(&msg, Phase::QueueWait);
            self.queue(service).push_front(msg);
        }
    }

    /// Move a message to the dead-letter store, settle its queue lease,
    /// and notify observers.
    fn quarantine(&self, service: &str, msg: Message, reason: &str) {
        self.quarantine_inner(service, msg, reason, true);
    }

    /// [`quarantine`](Self::quarantine) with the lease settle optional:
    /// the reaper path owns the abandoned lease and must settle it; the
    /// handler path's lease is settled by the instance loop.
    fn quarantine_inner(&self, service: &str, msg: Message, reason: &str, settle: bool) {
        self.recovery_stats.dead_letters.fetch_add(1, Ordering::Relaxed);
        self.obs.bus.emit(msg_event(
            EventKind::MessageDeadLettered {
                service: service.to_string(),
                operation: msg.operation.clone(),
                reason: reason.to_string(),
            },
            &msg,
        ));
        let dl = DeadLetter {
            msg,
            service: service.to_string(),
            reason: reason.to_string(),
        };
        self.dead
            .lock()
            .entry(service.to_string())
            .or_default()
            .push(dl.clone());
        if settle {
            self.queue(service).settle();
        }
        let observers = self.dead_observers.lock();
        for f in observers.iter() {
            f(&dl);
        }
    }

    /// Stop all instances and close all queues.
    pub fn shutdown(&self) {
        self.closed.store(true, Ordering::Relaxed);
        // Held messages never became durable-safe to deliver; dropping
        // them here is the same outcome a crash would have produced.
        self.held.lock().clear();
        // Join the reaper before taking the instances lock: its scan
        // takes that lock too.
        if let Some(t) = self.reaper.lock().take() {
            let _ = t.join();
        }
        // Tear the transport down before taking the instances lock:
        // connection threads register instances (which takes it), and
        // remote proxy threads only exit once their connections die.
        self.transport().shutdown();
        let mut instances = self.instances.lock();
        for h in instances.iter() {
            h.control.stop.store(true, Ordering::Relaxed);
        }
        for q in self.queues.read().values() {
            q.close();
        }
        for h in instances.iter_mut() {
            if let Some(t) = h.thread.take() {
                let _ = t.join();
            }
        }
    }
}

fn instance_loop(
    ctx: ServiceCtx,
    queue: Arc<ServiceQueue>,
    handler: Arc<dyn Handler>,
    control: Arc<InstanceControl>,
) {
    let cluster = ctx.cluster.clone();
    // Announce this node to the queue so affinity-stamped messages can
    // find it; withdrawn after the loop on *every* exit path (stop,
    // fault, crash) so dead nodes never pin their messages.
    queue.register_consumer(ctx.node_id);
    loop {
        *control.heartbeat.lock() = Instant::now();
        if control.stop.load(Ordering::Relaxed) {
            break;
        }
        let Some(msg) = queue.pop_for(ctx.node_id, Duration::from_millis(50)) else {
            // Timeout, close, or interrupt: check the stop/fault flags
            // and retry.
            if control.fault.lock().is_some() {
                control.alive.store(false, Ordering::Relaxed);
                break;
            }
            continue;
        };
        // The message is leased from here: every exit path below must
        // settle exactly once — or die leaving the lease registered, in
        // which case the reaper settles it after reclaim/quarantine.
        cluster.leases.lock().insert(
            msg.id,
            Lease {
                msg: msg.clone(),
                service: ctx.service.clone(),
                instance: ctx.instance_id,
            },
        );
        let metrics = &cluster.metrics;
        cluster.note_delivered(&msg, ctx.node_id, ctx.instance_id);
        // Seeded chaos: the plan decides this delivery's fate from the
        // message's stable key alone.
        let chaos = cluster.chaos_plan();
        if let Some(plan) = &chaos {
            match plan.on_deliver(&msg) {
                FaultAction::Deliver => {}
                FaultAction::Delay(d) => {
                    cluster.emit_fault(&msg, "delay");
                    std::thread::sleep(d);
                }
                FaultAction::DropRedeliver => {
                    // The handoff is lost in transit: re-queue, stay
                    // alive (at-least-once redelivery, not a crash).
                    cluster.emit_fault(&msg, "drop");
                    metrics.add(&metrics.redelivered, 1);
                    cluster.obs.bus.emit(msg_event(
                        EventKind::MessageRedelivered {
                            service: msg.service.clone(),
                            operation: msg.operation.clone(),
                        },
                        &msg,
                    ));
                    cluster.leases.lock().remove(&msg.id);
                    cluster.note_phase(&msg, Phase::QueueWait);
                    queue.push_front(msg);
                    queue.settle();
                    continue;
                }
                FaultAction::Crash(point) => {
                    let node_wide = plan.on_node_scope(&msg);
                    cluster.emit_fault(
                        &msg,
                        match (point, node_wide) {
                            (_, true) => "node-kill",
                            (FaultPoint::BeforeProcess, _) => "crash-before",
                            (FaultPoint::AfterProcess, _) => "crash-after",
                        },
                    );
                    crash_with(&cluster, &queue, &control, msg, point, &ctx, node_wide);
                    break;
                }
            }
        }
        // Manual kill before processing: die holding the message — the
        // lease reaper detects the dead holder and re-queues it.
        if *control.fault.lock() == Some(FaultPoint::BeforeProcess) {
            cluster.obs.bus.emit(
                msg_event(EventKind::InstanceCrashed { point: "before-process".into() }, &msg)
                    .node(ctx.node_id)
                    .instance(ctx.instance_id),
            );
            control.alive.store(false, Ordering::Relaxed);
            break;
        }
        control.busy.store(true, Ordering::Relaxed);
        metrics.enter_flight();
        let started = Instant::now();
        let result = handler.handle(&ctx, &msg);
        let busy = started.elapsed().as_nanos() as u64;
        metrics.add(&metrics.busy_nanos, busy);
        metrics.add(&metrics.busy_count, 1);
        cluster.hist_busy.observe_nanos(busy);
        metrics.exit_flight();
        control.busy.store(false, Ordering::Relaxed);
        // Crash after processing but before the ack/reply (manual kill
        // or chaos): redelivered even though the handler's effects may
        // stand, exercising the at-least-once path (handlers must be
        // idempotent, which Vinz guarantees via fiber locks).
        let manual_after = *control.fault.lock() == Some(FaultPoint::AfterProcess);
        let chaos_after = chaos.as_ref().is_some_and(|p| p.on_after_process(&msg));
        if manual_after || chaos_after {
            if chaos_after {
                cluster.emit_fault(&msg, "crash-after");
            }
            let node_wide = chaos_after
                && chaos.as_ref().is_some_and(|p| p.on_node_scope(&msg));
            crash_with(
                &cluster,
                &queue,
                &control,
                msg,
                FaultPoint::AfterProcess,
                &ctx,
                node_wide,
            );
            break;
        }
        cluster.leases.lock().remove(&msg.id);
        cluster.route_reply(&msg, result);
        metrics.add(&metrics.completed, 1);
        queue.settle();
    }
    queue.deregister_consumer(ctx.node_id);
}

/// Die holding `msg`: mark this instance dead and abandon the message —
/// no re-queue, no settle. A crashed process cannot return its own
/// work; the lease reaper notices the dead holder, re-queues the
/// message (same broker id, redelivery count bumped) after backoff, or
/// quarantines it once the redelivery budget is spent.
fn crash_with(
    cluster: &Arc<Cluster>,
    _queue: &Arc<ServiceQueue>,
    control: &Arc<InstanceControl>,
    msg: Message,
    point: FaultPoint,
    ctx: &ServiceCtx,
    node_wide: bool,
) {
    cluster.obs.bus.emit(
        msg_event(
            EventKind::InstanceCrashed {
                point: match (point, node_wide) {
                    (_, true) => "node-kill".into(),
                    (FaultPoint::BeforeProcess, _) => "before-process".into(),
                    (FaultPoint::AfterProcess, _) => "after-process".into(),
                },
            },
            &msg,
        )
        .node(ctx.node_id)
        .instance(ctx.instance_id),
    );
    control.alive.store(false, Ordering::Relaxed);
    if node_wide {
        cluster.kill_node(ctx.node_id, point);
    }
}

/// The lease reaper: one background thread per cluster, scanning the
/// lease table, the reclaim backlog, and the delayed-send list. Holds
/// only a [`Weak`] cluster reference so dropping the last external
/// `Arc` (or [`Cluster::shutdown`]) terminates it.
fn reaper_loop(weak: Weak<Cluster>) {
    loop {
        let interval = {
            let Some(cluster) = weak.upgrade() else { return };
            if cluster.closed.load(Ordering::Relaxed) {
                return;
            }
            cluster.recovery_tick();
            let interval = cluster.recovery_cfg.read().scan_interval;
            interval
        };
        std::thread::sleep(interval);
    }
}

/// Build an [`Event`] correlated to a message: its broker id plus the
/// workflow ids Vinz stamps into `task-id`/`fiber-id` headers (the
/// fiber id alone implies the task via the `task/fiber` convention).
fn msg_event(kind: EventKind, msg: &Message) -> Event {
    Event::new(kind)
        .message(msg.id)
        .task_opt(msg.get_header("task-id").map(str::to_string))
        .fiber_opt(msg.get_header("fiber-id").map(str::to_string))
}

/// The task a message belongs to: its `task-id` header, else the
/// `task/fiber` prefix of its `fiber-id` header.
fn task_of(msg: &Message) -> Option<&str> {
    if let Some(t) = msg.get_header("task-id") {
        return Some(t);
    }
    let fiber = msg.get_header("fiber-id")?;
    let task = fiber.split('/').next()?;
    (!task.is_empty() && task != fiber).then_some(task)
}

/// Mirror the [`Metrics`] atomics into the registry as closure-backed
/// samples: one source of truth, two read paths.
fn register_broker_metrics(obs: &Arc<Obs>, metrics: &Arc<Metrics>) {
    let reg = &obs.registry;
    let mirror = |m: &Arc<Metrics>, f: fn(&Metrics) -> &AtomicU64| {
        let m = m.clone();
        move || f(&m).load(Ordering::Relaxed)
    };
    reg.counter_fn(
        "bluebox_messages_sent_total",
        "Messages accepted by the broker.",
        "",
        mirror(metrics, |m| &m.sent),
    );
    reg.counter_fn(
        "bluebox_messages_delivered_total",
        "Messages handed to an instance.",
        "",
        mirror(metrics, |m| &m.delivered),
    );
    reg.counter_fn(
        "bluebox_messages_redelivered_total",
        "Messages re-queued after a failed delivery.",
        "",
        mirror(metrics, |m| &m.redelivered),
    );
    reg.counter_fn(
        "bluebox_handler_completions_total",
        "Handler invocations that completed.",
        "",
        mirror(metrics, |m| &m.completed),
    );
    reg.counter_fn(
        "bluebox_handler_faults_total",
        "Handler invocations that returned a fault.",
        "",
        mirror(metrics, |m| &m.faults),
    );
    let m = metrics.clone();
    reg.gauge_fn(
        "bluebox_messages_in_flight",
        "Messages currently being processed.",
        "",
        move || m.in_flight.load(Ordering::Relaxed) as i64,
    );
    let m = metrics.clone();
    reg.gauge_fn(
        "bluebox_messages_in_flight_peak",
        "High-water mark of in-flight messages.",
        "",
        move || m.max_in_flight.load(Ordering::Relaxed) as i64,
    );
}
