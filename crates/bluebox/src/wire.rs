//! The TCP transport's wire format: length-prefixed, CRC-framed
//! messages over a byte stream.
//!
//! Every frame is `[len: u32 LE][crc: u32 LE][payload: len bytes]`,
//! where `crc` is the IEEE CRC-32 of the payload. The payload is one
//! [`WireMsg`], encoded with a small hand-rolled tag-length-value
//! scheme (message *bodies* stay opaque byte blobs — they are already
//! `gozer-serial` output on the workflow path and are passed through
//! untouched).
//!
//! Decoding is defensive by construction, because the peer is a
//! separate OS process that can die mid-write (`kill -9` leaves torn
//! frames) and the fuzz harness feeds the decoder arbitrary bytes:
//!
//! * the frame length is validated against [`MAX_FRAME_LEN`] *before*
//!   any allocation;
//! * every inner length/count is validated against the bytes actually
//!   present before any allocation;
//! * all failures are typed [`FrameError`]s — never a panic, never an
//!   oversized reservation.

use std::collections::BTreeMap;
use std::io::{Read, Write};

/// Hard upper bound on a frame's payload length. Larger claims are
/// rejected from the 4-byte prefix alone, so a corrupt or hostile
/// length can never drive an allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Upper bound on counted collections inside a payload (headers,
/// registered services, instance ids). Far above anything the protocol
/// produces; exists so a bit-flipped count cannot demand a huge table.
pub const MAX_WIRE_COUNT: u32 = 4096;

const FRAME_HEADER_LEN: usize = 8;

// ---- CRC-32 (IEEE 802.3) ----------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// IEEE CRC-32 of `data` (the polynomial Ethernet, zip, and PNG use).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---- errors -----------------------------------------------------------

/// Typed decode/IO failures of the wire layer. Every variant is a
/// *connection-fatal* condition: the reader cannot resynchronise inside
/// a byte stream whose framing it no longer trusts, so the connection
/// is torn down and the broker-side lease machinery takes over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the announced frame/field does.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes it had.
        have: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    TooLarge {
        /// The claimed payload length.
        len: u32,
    },
    /// Payload checksum mismatch (bit flip or torn write).
    BadCrc {
        /// CRC announced in the header.
        expect: u32,
        /// CRC computed over the received payload.
        got: u32,
    },
    /// Unknown message tag byte.
    BadTag(u8),
    /// A string field is not UTF-8.
    BadUtf8,
    /// A collection count exceeds [`MAX_WIRE_COUNT`].
    BadCount {
        /// The claimed element count.
        count: u32,
    },
    /// Payload bytes left over after a complete message.
    TrailingBytes {
        /// Number of undecoded bytes.
        extra: usize,
    },
    /// The stream ended cleanly between frames (peer closed).
    Eof,
    /// Socket-level failure (reset, timeout, ...).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need, have } => {
                write!(f, "truncated frame: need {need} bytes, have {have}")
            }
            FrameError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds max {MAX_FRAME_LEN}")
            }
            FrameError::BadCrc { expect, got } => {
                write!(f, "frame crc mismatch: header {expect:#010x}, payload {got:#010x}")
            }
            FrameError::BadTag(tag) => write!(f, "unknown wire message tag {tag:#04x}"),
            FrameError::BadUtf8 => write!(f, "wire string is not utf-8"),
            FrameError::BadCount { count } => {
                write!(f, "wire count {count} exceeds max {MAX_WIRE_COUNT}")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after wire message")
            }
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(kind) => write!(f, "io error: {kind:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => FrameError::Eof,
            kind => FrameError::Io(kind),
        }
    }
}

// ---- wire messages ----------------------------------------------------

/// A [`crate::Message`] as it crosses the wire: the broker-owned
/// runtime fields (`enqueued_at`, lease bookkeeping, `reply_to`) stay
/// on the broker; only what a remote worker needs — or may set on a
/// send of its own — is carried.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WirePayload {
    /// Destination service.
    pub service: String,
    /// Destination operation.
    pub operation: String,
    /// String headers.
    pub headers: BTreeMap<String, String>,
    /// Opaque body (`gozer-serial` bytes on the workflow path).
    pub body: Vec<u8>,
    /// Scheduling priority (worker-originated sends).
    pub priority: i32,
    /// Durability gate (worker-originated sends; see
    /// [`crate::Message::hold_until`]).
    pub hold_until: u64,
}

/// How a worker settles a delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SettleBody {
    /// Handler completed; the reply body.
    Ok(Vec<u8>),
    /// Handler returned a fault: `(code, message)`.
    Fault(String, String),
}

/// One protocol message. The connection lifecycle is
/// `Hello → HelloAck → Register*/Registered* → (Delivery/Settle/Send/
/// Heartbeat)* → Bye/EOF`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// Worker → broker: identify this connection.
    Hello {
        /// Worker name (diagnostics only).
        worker: String,
        /// Logical node id the worker's instances run on (affinity).
        node: u32,
    },
    /// Broker → worker: handshake accepted.
    HelloAck {
        /// Heartbeat cadence the broker expects, in milliseconds.
        heartbeat_ms: u64,
    },
    /// Worker → broker: host `instances` competing consumers of
    /// `service` on this connection.
    Register {
        /// Service name.
        service: String,
        /// Instance count.
        instances: u32,
    },
    /// Broker → worker: instance ids assigned to a `Register`.
    Registered {
        /// Service name.
        service: String,
        /// Broker-assigned instance ids.
        ids: Vec<u64>,
    },
    /// Broker → worker: one leased message to process.
    Delivery {
        /// Broker message id; doubles as the lease key the `Settle`
        /// must echo.
        lease: u64,
        /// Redelivery count (workers may use it for backoff/diagnosis).
        redeliveries: u32,
        /// The message.
        payload: WirePayload,
    },
    /// Worker → broker: the outcome of a delivery.
    Settle {
        /// The delivery's lease key.
        lease: u64,
        /// Reply body or fault.
        body: SettleBody,
    },
    /// Worker → broker: inject a fire-and-forget message into the
    /// broker's queues.
    Send {
        /// The message.
        payload: WirePayload,
    },
    /// Worker → broker: liveness. Also re-arms the lease TTL of this
    /// connection's *idle* instances (a busy instance's clock keeps
    /// running so a wedged handler still expires).
    Heartbeat {
        /// Monotonic per-connection sequence number.
        seq: u64,
    },
    /// Either side: orderly goodbye.
    Bye,
}

// ---- encoding ---------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_payload(out: &mut Vec<u8>, p: &WirePayload) {
    put_str(out, &p.service);
    put_str(out, &p.operation);
    put_u32(out, p.headers.len() as u32);
    for (k, v) in &p.headers {
        put_str(out, k);
        put_str(out, v);
    }
    put_bytes(out, &p.body);
    put_i32(out, p.priority);
    put_u64(out, p.hold_until);
}

/// Encode `msg` as a frame payload (no frame header).
pub fn encode_msg(msg: &WireMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match msg {
        WireMsg::Hello { worker, node } => {
            out.push(1);
            put_str(&mut out, worker);
            put_u32(&mut out, *node);
        }
        WireMsg::HelloAck { heartbeat_ms } => {
            out.push(2);
            put_u64(&mut out, *heartbeat_ms);
        }
        WireMsg::Register { service, instances } => {
            out.push(3);
            put_str(&mut out, service);
            put_u32(&mut out, *instances);
        }
        WireMsg::Registered { service, ids } => {
            out.push(4);
            put_str(&mut out, service);
            put_u32(&mut out, ids.len() as u32);
            for id in ids {
                put_u64(&mut out, *id);
            }
        }
        WireMsg::Delivery {
            lease,
            redeliveries,
            payload,
        } => {
            out.push(5);
            put_u64(&mut out, *lease);
            put_u32(&mut out, *redeliveries);
            put_payload(&mut out, payload);
        }
        WireMsg::Settle { lease, body } => {
            out.push(6);
            put_u64(&mut out, *lease);
            match body {
                SettleBody::Ok(bytes) => {
                    out.push(0);
                    put_bytes(&mut out, bytes);
                }
                SettleBody::Fault(code, message) => {
                    out.push(1);
                    put_str(&mut out, code);
                    put_str(&mut out, message);
                }
            }
        }
        WireMsg::Send { payload } => {
            out.push(7);
            put_payload(&mut out, payload);
        }
        WireMsg::Heartbeat { seq } => {
            out.push(8);
            put_u64(&mut out, *seq);
        }
        WireMsg::Bye => out.push(9),
    }
    out
}

/// Encode `msg` as a complete frame: header plus payload.
pub fn encode_frame(msg: &WireMsg) -> Vec<u8> {
    let payload = encode_msg(msg);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

// ---- decoding ---------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn need(&self, n: usize) -> Result<(), FrameError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(FrameError::Truncated {
                need: n,
                have,
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        self.need(n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self) -> Result<i32, FrameError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A length/count that must have at least `min_elem` bytes per
    /// element still present — the pre-allocation bound.
    fn count(&mut self, min_elem: usize) -> Result<u32, FrameError> {
        let n = self.u32()?;
        if n > MAX_WIRE_COUNT {
            return Err(FrameError::BadCount { count: n });
        }
        self.need((n as usize).saturating_mul(min_elem))?;
        Ok(n)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = self.u32()? as usize;
        // `need` runs before the allocation: a hostile length can make
        // the decode fail, never make it reserve.
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let raw = self.bytes()?;
        String::from_utf8(raw).map_err(|_| FrameError::BadUtf8)
    }

    fn payload(&mut self) -> Result<WirePayload, FrameError> {
        let service = self.str()?;
        let operation = self.str()?;
        let n = self.count(8)?; // each header ≥ two 4-byte lengths
        let mut headers = BTreeMap::new();
        for _ in 0..n {
            let k = self.str()?;
            let v = self.str()?;
            headers.insert(k, v);
        }
        let body = self.bytes()?;
        let priority = self.i32()?;
        let hold_until = self.u64()?;
        Ok(WirePayload {
            service,
            operation,
            headers,
            body,
            priority,
            hold_until,
        })
    }
}

/// Decode one frame *payload* (the bytes after the 8-byte header) into
/// a [`WireMsg`]. The whole payload must be consumed.
pub fn decode_msg(payload: &[u8]) -> Result<WireMsg, FrameError> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let msg = match c.u8()? {
        1 => WireMsg::Hello {
            worker: c.str()?,
            node: c.u32()?,
        },
        2 => WireMsg::HelloAck {
            heartbeat_ms: c.u64()?,
        },
        3 => WireMsg::Register {
            service: c.str()?,
            instances: c.u32()?,
        },
        4 => {
            let service = c.str()?;
            let n = c.count(8)?;
            let mut ids = Vec::with_capacity(n as usize);
            for _ in 0..n {
                ids.push(c.u64()?);
            }
            WireMsg::Registered { service, ids }
        }
        5 => WireMsg::Delivery {
            lease: c.u64()?,
            redeliveries: c.u32()?,
            payload: c.payload()?,
        },
        6 => {
            let lease = c.u64()?;
            let body = match c.u8()? {
                0 => SettleBody::Ok(c.bytes()?),
                1 => SettleBody::Fault(c.str()?, c.str()?),
                other => return Err(FrameError::BadTag(other)),
            };
            WireMsg::Settle { lease, body }
        }
        7 => WireMsg::Send {
            payload: c.payload()?,
        },
        8 => WireMsg::Heartbeat { seq: c.u64()? },
        9 => WireMsg::Bye,
        other => return Err(FrameError::BadTag(other)),
    };
    if c.pos != payload.len() {
        return Err(FrameError::TrailingBytes {
            extra: payload.len() - c.pos,
        });
    }
    Ok(msg)
}

/// Decode one complete frame from the front of `buf`.
///
/// Returns the message and the total bytes consumed (header included),
/// or `Truncated` when more bytes are needed — the incremental-parse
/// contract the fuzz harness and any buffered reader rely on. The
/// length bound is checked from the first 4 bytes alone, so an
/// oversized claim fails before any payload is awaited or allocated.
pub fn decode_frame(buf: &[u8]) -> Result<(WireMsg, usize), FrameError> {
    if buf.len() < FRAME_HEADER_LEN {
        // The length prefix itself may already convict the frame.
        if buf.len() >= 4 {
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
            if len > MAX_FRAME_LEN {
                return Err(FrameError::TooLarge { len });
            }
        }
        return Err(FrameError::Truncated {
            need: FRAME_HEADER_LEN,
            have: buf.len(),
        });
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { len });
    }
    let expect = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let total = FRAME_HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            need: total,
            have: buf.len(),
        });
    }
    let payload = &buf[FRAME_HEADER_LEN..total];
    let got = crc32(payload);
    if got != expect {
        return Err(FrameError::BadCrc { expect, got });
    }
    Ok((decode_msg(payload)?, total))
}

// ---- blocking stream IO -----------------------------------------------

/// An incremental frame reader that survives read timeouts.
///
/// A socket read timeout can fire *mid-frame* (a large Delivery, a
/// stalled peer). The free-standing [`read_frame`] would discard the
/// partially-read bytes in that case, desynchronising the stream: the
/// next read starts in the middle of the old frame and everything after
/// decodes as garbage. `FrameReader` instead accumulates bytes in a
/// buffer and decodes with [`decode_frame`], so a
/// `WouldBlock`/`TimedOut` error leaves the partial frame intact — the
/// caller can treat the timeout as benign and simply call
/// [`FrameReader::read_frame`] again to resume where it left off.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Read one frame, resuming any partially-buffered frame first.
    ///
    /// `Io(WouldBlock)`/`Io(TimedOut)` are resumable: buffered bytes
    /// are kept and the next call continues the same frame. Every other
    /// error is connection-fatal, exactly as with [`read_frame`].
    pub fn read_frame(&mut self, stream: &mut impl Read) -> Result<WireMsg, FrameError> {
        loop {
            let (need, have) = match decode_frame(&self.buf) {
                Ok((msg, used)) => {
                    self.buf.drain(..used);
                    return Ok(msg);
                }
                Err(FrameError::Truncated { need, have }) => (need, have),
                Err(e) => return Err(e),
            };
            let mut chunk = [0u8; 8192];
            match stream.read(&mut chunk) {
                Ok(0) if self.buf.is_empty() => return Err(FrameError::Eof),
                // Peer closed inside a frame: torn frame.
                Ok(0) => return Err(FrameError::Truncated { need, have }),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }
}

/// Read one frame from a blocking stream. `Eof` on clean close between
/// frames; a close *inside* a frame surfaces as `Eof`/`Io` too — the
/// torn-frame case the connection layer treats as peer death.
///
/// Not timeout-safe: a read timeout mid-frame loses the partial bytes.
/// Connection loops that tolerate timeouts must use [`FrameReader`].
pub fn read_frame(stream: &mut impl Read) -> Result<WireMsg, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Distinguish clean EOF (no bytes at all) from a torn header.
    let mut filled = 0;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Eof),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    need: FRAME_HEADER_LEN,
                    have: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { len });
    }
    let expect = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    let got = crc32(&payload);
    if got != expect {
        return Err(FrameError::BadCrc { expect, got });
    }
    decode_msg(&payload)
}

/// Write one frame to a blocking stream.
pub fn write_frame(stream: &mut impl Write, msg: &WireMsg) -> Result<(), FrameError> {
    let frame = encode_frame(msg);
    stream.write_all(&frame)?;
    stream.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_msgs() -> Vec<WireMsg> {
        let payload = WirePayload {
            service: "compute".into(),
            operation: "Work".into(),
            headers: [("task-id".to_string(), "task-1".to_string())]
                .into_iter()
                .collect(),
            body: vec![0, 1, 2, 255],
            priority: -1,
            hold_until: 42,
        };
        vec![
            WireMsg::Hello {
                worker: "w1".into(),
                node: 7,
            },
            WireMsg::HelloAck { heartbeat_ms: 250 },
            WireMsg::Register {
                service: "compute".into(),
                instances: 2,
            },
            WireMsg::Registered {
                service: "compute".into(),
                ids: vec![3, 4],
            },
            WireMsg::Delivery {
                lease: 99,
                redeliveries: 1,
                payload: payload.clone(),
            },
            WireMsg::Settle {
                lease: 99,
                body: SettleBody::Ok(b"result".to_vec()),
            },
            WireMsg::Settle {
                lease: 100,
                body: SettleBody::Fault("{urn:x}Bad".into(), "boom".into()),
            },
            WireMsg::Send { payload },
            WireMsg::Heartbeat { seq: 12 },
            WireMsg::Bye,
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_every_message() {
        for msg in sample_msgs() {
            let frame = encode_frame(&msg);
            let (back, used) = decode_frame(&frame).expect("decodes");
            assert_eq!(back, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn truncated_frames_ask_for_more() {
        let frame = encode_frame(&WireMsg::Heartbeat { seq: 5 });
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Err(FrameError::Truncated { need, have }) => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                }
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_payload() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        // No payload present at all: the length alone must convict.
        assert_eq!(
            decode_frame(&frame),
            Err(FrameError::TooLarge {
                len: MAX_FRAME_LEN + 1
            })
        );
    }

    #[test]
    fn bit_flips_are_caught_by_crc() {
        let frame = encode_frame(&WireMsg::Register {
            service: "compute".into(),
            instances: 2,
        });
        for bit in 0..8 {
            let mut bad = frame.clone();
            let last = bad.len() - 1;
            bad[last] ^= 1 << bit;
            match decode_frame(&bad) {
                Err(FrameError::BadCrc { .. }) => {}
                other => panic!("bit {bit}: expected BadCrc, got {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_inner_lengths_do_not_allocate() {
        // A Settle whose body claims 4 GiB: payload length check fires.
        let mut payload = vec![6u8];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(0);
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        match decode_frame(&frame) {
            Err(FrameError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn hostile_counts_rejected() {
        // A Registered with a 1M-id table in a tiny payload.
        let mut payload = vec![4u8];
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty service
        payload.extend_from_slice(&1_000_000u32.to_le_bytes());
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        match decode_frame(&frame) {
            Err(FrameError::BadCount { count: 1_000_000 }) => {}
            other => panic!("expected BadCount, got {other:?}"),
        }
    }

    #[test]
    fn bad_tag_and_trailing_bytes_are_typed() {
        let payload = vec![200u8];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert_eq!(decode_frame(&frame), Err(FrameError::BadTag(200)));

        let mut payload = encode_msg(&WireMsg::Bye);
        payload.push(0xAA);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert_eq!(
            decode_frame(&frame),
            Err(FrameError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn stream_read_write_round_trip() {
        let mut buf = Vec::new();
        for msg in sample_msgs() {
            write_frame(&mut buf, &msg).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in sample_msgs() {
            assert_eq!(read_frame(&mut cursor).unwrap(), msg);
        }
        assert_eq!(read_frame(&mut cursor), Err(FrameError::Eof));
    }

    /// Yields one byte per read and a timeout error between every
    /// byte — the worst case of a read timeout firing mid-frame.
    struct ChoppyStream {
        data: Vec<u8>,
        pos: usize,
        tick: usize,
    }

    impl Read for ChoppyStream {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            self.tick += 1;
            if self.tick % 2 == 0 {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            out[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_resumes_across_mid_frame_timeouts() {
        let msgs = sample_msgs();
        let mut data = Vec::new();
        for msg in &msgs {
            data.extend_from_slice(&encode_frame(msg));
        }
        let mut stream = ChoppyStream { data, pos: 0, tick: 0 };
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match reader.read_frame(&mut stream) {
                Ok(msg) => got.push(msg),
                Err(FrameError::Io(std::io::ErrorKind::WouldBlock)) => continue,
                Err(FrameError::Eof) => break,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert_eq!(got, msgs, "no frame may be lost or corrupted by timeouts");
    }

    #[test]
    fn frame_reader_torn_tail_is_truncated_not_garbage() {
        let frame = encode_frame(&WireMsg::Settle {
            lease: 7,
            body: SettleBody::Ok(vec![0xAB; 512]),
        });
        let mut data = encode_frame(&WireMsg::Heartbeat { seq: 1 });
        data.extend_from_slice(&frame[..frame.len() / 2]);
        let mut stream = ChoppyStream { data, pos: 0, tick: 0 };
        let mut reader = FrameReader::new();
        let first = loop {
            match reader.read_frame(&mut stream) {
                Ok(msg) => break msg,
                Err(FrameError::Io(std::io::ErrorKind::WouldBlock)) => continue,
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        };
        assert_eq!(first, WireMsg::Heartbeat { seq: 1 });
        let tail = loop {
            match reader.read_frame(&mut stream) {
                Err(FrameError::Io(std::io::ErrorKind::WouldBlock)) => continue,
                other => break other,
            }
        };
        match tail {
            Err(FrameError::Truncated { .. }) => {}
            other => panic!("expected Truncated for torn tail, got {other:?}"),
        }
    }

    #[test]
    fn torn_stream_surfaces_as_truncated_or_eof() {
        let frame = encode_frame(&WireMsg::Heartbeat { seq: 1 });
        for cut in 1..frame.len() {
            let mut cursor = std::io::Cursor::new(frame[..cut].to_vec());
            match read_frame(&mut cursor) {
                Err(FrameError::Truncated { .. }) | Err(FrameError::Eof) => {}
                other => panic!("cut {cut}: expected torn-frame error, got {other:?}"),
            }
        }
    }
}
