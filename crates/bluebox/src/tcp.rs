//! The TCP transport: real worker processes over localhost sockets.
//!
//! Architecture: the broker process keeps *all* queueing, lease, and
//! recovery state. A remote worker never owns a queue — when it
//! connects and registers, the broker spawns one local **proxy
//! instance** thread per registered slot. The proxy competes on the
//! service queue exactly like an in-process instance, but instead of
//! invoking a handler it forwards the delivery over the connection and
//! waits for the worker's settle. The payoff is that every recovery
//! mechanism built for in-process instances — the lease reaper,
//! redelivery backoff, dead-letter quarantine, `hold_until` parking —
//! covers real process death with no parallel code path: `kill -9` on
//! a worker surfaces as a dead connection, which marks its proxies
//! dead, which expires their leases.
//!
//! Exactly-once discipline (at-least-once delivery + single effect):
//!
//! * Each forwarded delivery carries a broker-unique **delivery id**
//!   (not the message id). A settle must echo it. A worker that
//!   finishes *after* the reaper reclaimed its message can therefore
//!   never settle the message's next delivery — the stale id no longer
//!   maps to anything and is counted as a duplicate settle.
//! * A proxy applies a settle only if it still owns the lease
//!   ([`Cluster::take_lease`]); a reclaim between settle arrival and
//!   application is caught there.
//! * A connection that dies mid-delivery (torn frame, `kill -9`,
//!   half-written settle) causes the proxy to *abandon* the message:
//!   no settle, no requeue. The lease expires and the reaper
//!   redelivers — exactly the contract in-process crashes follow.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::cluster::{Cluster, InstanceControl};
use crate::message::{Fault, Message};
use crate::metrics::TransportMetrics;
use crate::transport::Transport;
use crate::wire::{
    encode_frame, FrameError, FrameReader, SettleBody, WireMsg, WirePayload,
};

// ---- shared helpers ---------------------------------------------------

fn wire_payload_of(msg: &Message) -> WirePayload {
    WirePayload {
        service: msg.service.clone(),
        operation: msg.operation.clone(),
        headers: msg.headers.clone(),
        body: msg.body.clone(),
        priority: msg.priority,
        hold_until: msg.hold_until,
    }
}

fn message_from(p: WirePayload) -> Message {
    let mut msg = Message::new(&p.service, &p.operation, p.body)
        .with_priority(p.priority);
    if p.hold_until > 0 {
        msg = msg.with_hold_until(p.hold_until);
    }
    msg.headers = p.headers;
    msg
}

fn settle_result(body: SettleBody) -> Result<Vec<u8>, Fault> {
    match body {
        SettleBody::Ok(bytes) => Ok(bytes),
        SettleBody::Fault(code, message) => Err(Fault { code, message }),
    }
}

fn is_decode_error(e: &FrameError) -> bool {
    !matches!(e, FrameError::Eof | FrameError::Io(_))
}

fn is_read_timeout(e: &FrameError) -> bool {
    matches!(
        e,
        FrameError::Io(std::io::ErrorKind::WouldBlock)
            | FrameError::Io(std::io::ErrorKind::TimedOut)
    )
}

/// Deterministic reconnect backoff: exponential in `attempt` (1-based),
/// capped, plus 0–50% jitter hashed from `(seed, attempt)` so a fleet
/// of workers restarting together fans out instead of thundering.
pub fn backoff_with_jitter(
    base: Duration,
    max: Duration,
    seed: u64,
    attempt: u32,
) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    let raw = base.saturating_mul(1u32 << exp).min(max);
    // splitmix64 over (seed, attempt): stable across runs of one seed.
    let mut z = seed ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let jitter_nanos = (raw.as_nanos() as u64 / 2).checked_rem(u64::MAX).unwrap_or(0);
    let jitter = if jitter_nanos == 0 { 0 } else { z % jitter_nanos.max(1) };
    raw + Duration::from_nanos(jitter.min(raw.as_nanos() as u64 / 2))
}

// ---- broker side ------------------------------------------------------

/// Tunables of the broker's listener side.
#[derive(Debug, Clone)]
pub struct TcpBrokerConfig {
    /// Heartbeat cadence announced to workers in the handshake.
    pub heartbeat: Duration,
    /// Socket read timeout per connection: a worker that produces no
    /// frame (not even a heartbeat) for this long is declared dead.
    pub liveness_timeout: Duration,
}

impl Default for TcpBrokerConfig {
    fn default() -> TcpBrokerConfig {
        TcpBrokerConfig {
            heartbeat: Duration::from_millis(250),
            liveness_timeout: Duration::from_secs(2),
        }
    }
}

/// One accepted worker connection, shared between its reader thread
/// and the proxy instances it registered.
struct Conn {
    worker: String,
    node: u32,
    /// Writer half; a [`Mutex`] so Delivery frames from concurrent
    /// proxies never interleave mid-frame.
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
    /// Outstanding forwarded deliveries by delivery id; the reader
    /// routes Settle frames here. Entries removed on settle, conn
    /// death, reclaim, or proxy exit — a lookup miss is a stale settle.
    pending: Mutex<HashMap<u64, Sender<Result<Vec<u8>, Fault>>>>,
    /// Controls of the proxy instances registered on this connection.
    instances: Mutex<Vec<Arc<InstanceControl>>>,
    tm: Arc<TransportMetrics>,
}

impl Conn {
    fn write(&self, msg: &WireMsg) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        let frame = encode_frame(msg);
        // The guard must be dropped before `mark_dead`, which re-locks
        // `self.stream` to shut the socket down — holding it across the
        // error arm would self-deadlock on the first failed write.
        let res = {
            let mut stream = self.stream.lock();
            stream.write_all(&frame).and_then(|_| stream.flush())
        };
        match res {
            Ok(()) => {
                self.tm.frames_sent.fetch_add(1, Ordering::Relaxed);
                self.tm
                    .bytes_sent
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.mark_dead();
                false
            }
        }
    }

    /// Declare the connection dead (idempotent): wake every waiting
    /// proxy (dropping their settle senders), mark every registered
    /// instance not-alive so the reaper expires their leases, and
    /// close the socket.
    fn mark_dead(&self) {
        if !self.dead.swap(true, Ordering::SeqCst) {
            self.tm.worker_disconnects.fetch_add(1, Ordering::Relaxed);
        }
        self.pending.lock().clear();
        for control in self.instances.lock().iter() {
            control.alive.store(false, Ordering::Relaxed);
        }
        let _ = self.stream.lock().shutdown(Shutdown::Both);
    }
}

/// The broker's TCP listener: accepts worker connections and installs
/// itself as the cluster's [`Transport`]. Services the embedder spawns
/// directly (e.g. the Vinz workflow service) still run as in-process
/// threads; only capacity *registered over a connection* is remote.
pub struct TcpBroker {
    cluster: Weak<Cluster>,
    addr: SocketAddr,
    cfg: TcpBrokerConfig,
    stop: AtomicBool,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    conns: Mutex<Vec<Arc<Conn>>>,
    next_delivery: AtomicU64,
    tmetrics: Arc<TransportMetrics>,
}

impl TcpBroker {
    /// Bind `addr` (use port 0 for an ephemeral port), start accepting
    /// workers, and install the broker as `cluster`'s transport.
    pub fn start(
        cluster: &Arc<Cluster>,
        addr: &str,
        cfg: TcpBrokerConfig,
    ) -> std::io::Result<Arc<TcpBroker>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let broker = Arc::new(TcpBroker {
            cluster: Arc::downgrade(cluster),
            addr,
            cfg,
            stop: AtomicBool::new(false),
            accept_thread: Mutex::new(None),
            conn_threads: Mutex::new(Vec::new()),
            conns: Mutex::new(Vec::new()),
            next_delivery: AtomicU64::new(1),
            tmetrics: Arc::new(TransportMetrics::default()),
        });
        cluster.set_transport(broker.clone());
        let accept_broker = broker.clone();
        let thread = std::thread::Builder::new()
            .name("bb-tcp-accept".into())
            .spawn(move || accept_loop(accept_broker, listener))
            .expect("spawn tcp accept thread");
        *broker.accept_thread.lock() = Some(thread);
        Ok(broker)
    }

    /// The bound listen address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Transport-layer counters (framing, connection churn, settles).
    pub fn transport_metrics(&self) -> Arc<TransportMetrics> {
        self.tmetrics.clone()
    }

    /// Worker connections currently alive.
    pub fn live_connections(&self) -> usize {
        self.conns
            .lock()
            .iter()
            .filter(|c| !c.dead.load(Ordering::Relaxed))
            .count()
    }

    /// Names of the workers currently connected (health reporting).
    pub fn connected_workers(&self) -> Vec<String> {
        self.conns
            .lock()
            .iter()
            .filter(|c| !c.dead.load(Ordering::Relaxed))
            .map(|c| c.worker.clone())
            .collect()
    }

    fn closing(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
            || self.cluster.upgrade().map_or(true, |c| c.is_shutdown())
    }
}

impl Transport for TcpBroker {
    fn name(&self) -> &str {
        "tcp"
    }

    fn spawn_instances(
        &self,
        cluster: &Arc<Cluster>,
        service: &str,
        node_id: u32,
        count: usize,
    ) -> Vec<u64> {
        // Direct spawns stay local: the broker process hosts the
        // embedder's own services; workers add capacity by registering.
        cluster.spawn_local_instances(service, node_id, count)
    }

    fn alive(&self) -> bool {
        !self.stop.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.lock().take() {
            let _ = t.join();
        }
        // Kill every connection (wakes readers and waiting proxies).
        for conn in self.conns.lock().iter() {
            conn.mark_dead();
        }
        let threads: Vec<JoinHandle<()>> = self.conn_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(broker: Arc<TcpBroker>, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if broker.closing() {
                    return;
                }
                continue;
            }
        };
        if broker.closing() {
            return;
        }
        let conn_broker = broker.clone();
        let thread = std::thread::Builder::new()
            .name("bb-tcp-conn".into())
            .spawn(move || conn_loop(conn_broker, stream))
            .expect("spawn tcp conn thread");
        // Reap completed connection threads on each accept so a
        // long-lived broker with churning workers does not accumulate
        // dead JoinHandles without bound.
        let mut threads = broker.conn_threads.lock();
        threads.retain(|t| !t.is_finished());
        threads.push(thread);
    }
}

/// One worker connection: handshake, then a frame-dispatch loop until
/// the connection dies or says goodbye.
fn conn_loop(broker: Arc<TcpBroker>, mut stream: TcpStream) {
    let tm = broker.tmetrics.clone();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(broker.cfg.liveness_timeout));
    // Timeout-safe framing: a read timeout mid-frame (large Delivery,
    // stalled worker) must not desynchronise the byte stream.
    let mut reader = FrameReader::new();
    // Handshake: Hello in, HelloAck out. Anything else is not a worker.
    let (worker, node) = loop {
        match reader.read_frame(&mut stream) {
            Ok(WireMsg::Hello { worker, node }) => {
                tm.frames_received.fetch_add(1, Ordering::Relaxed);
                break (worker, node);
            }
            Err(e) if is_read_timeout(&e) => {
                return; // silent peer: not a worker, drop it
            }
            Ok(_) => {
                tm.decode_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(e) => {
                if is_decode_error(&e) {
                    tm.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
    };
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let conn = Arc::new(Conn {
        worker,
        node,
        stream: Mutex::new(writer),
        dead: AtomicBool::new(false),
        pending: Mutex::new(HashMap::new()),
        instances: Mutex::new(Vec::new()),
        tm: tm.clone(),
    });
    if !conn.write(&WireMsg::HelloAck {
        heartbeat_ms: broker.cfg.heartbeat.as_millis() as u64,
    }) {
        return;
    }
    tm.worker_connects.fetch_add(1, Ordering::Relaxed);
    broker.conns.lock().push(conn.clone());
    // Dispatch until death.
    loop {
        if broker.closing() || conn.dead.load(Ordering::Relaxed) {
            break;
        }
        let msg = match reader.read_frame(&mut stream) {
            Ok(msg) => {
                tm.frames_received.fetch_add(1, Ordering::Relaxed);
                msg
            }
            Err(e) if is_read_timeout(&e) => {
                // No frame for a whole liveness window — with workers
                // heartbeating at a fraction of it, the peer is gone or
                // wedged. Treat as dead (a SIGSTOPped or hung worker
                // must not hold leases forever).
                break;
            }
            Err(e) => {
                if is_decode_error(&e) {
                    tm.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
                break;
            }
        };
        match msg {
            WireMsg::Register { service, instances } => {
                let Some(cluster) = broker.cluster.upgrade() else { break };
                let n = instances.min(256) as usize;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    let proxy_broker = broker.clone();
                    let proxy_conn = conn.clone();
                    let proxy_cluster = cluster.clone();
                    let proxy_service = service.clone();
                    let id = cluster.register_remote_instance(
                        &service,
                        node,
                        |id, control| {
                            conn.instances.lock().push(control.clone());
                            std::thread::Builder::new()
                                .name(format!("bb-proxy-{proxy_service}-{id}"))
                                .spawn(move || {
                                    remote_instance_loop(
                                        proxy_cluster,
                                        proxy_broker,
                                        proxy_conn,
                                        proxy_service,
                                        id,
                                        control,
                                    )
                                })
                                .expect("spawn remote proxy thread")
                        },
                    );
                    ids.push(id);
                }
                if !conn.write(&WireMsg::Registered { service, ids }) {
                    break;
                }
            }
            WireMsg::Settle { lease, body } => {
                let slot = conn.pending.lock().remove(&lease);
                match slot {
                    Some(tx) => {
                        let _ = tx.send(settle_result(body));
                    }
                    None => {
                        // Stale: the lease was reclaimed (and possibly
                        // redelivered under a fresh delivery id) or the
                        // proxy gave up. Dropping it here is what keeps
                        // one delivery from taking effect twice.
                        tm.duplicate_settles.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            WireMsg::Send { payload } => {
                let Some(cluster) = broker.cluster.upgrade() else { break };
                cluster.send(message_from(payload));
            }
            WireMsg::Heartbeat { .. } => {
                tm.heartbeats.fetch_add(1, Ordering::Relaxed);
                // A heartbeat vouches for the *process*, not for
                // progress on any one delivery: only idle instances get
                // their lease clocks re-armed, so a wedged handler
                // still expires on TTL.
                let now = Instant::now();
                for control in conn.instances.lock().iter() {
                    if !control.busy.load(Ordering::Relaxed) {
                        *control.heartbeat.lock() = now;
                    }
                }
            }
            WireMsg::Bye => break,
            // A worker must never send broker-to-worker messages;
            // framing is intact but the protocol is not. Drop it.
            WireMsg::Hello { .. }
            | WireMsg::HelloAck { .. }
            | WireMsg::Registered { .. }
            | WireMsg::Delivery { .. } => {
                tm.decode_errors.fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    conn.mark_dead();
    broker.conns.lock().retain(|c| !Arc::ptr_eq(c, &conn));
}

/// A proxy instance: competes on the service queue on behalf of one
/// remote worker slot, forwarding deliveries and applying settles.
fn remote_instance_loop(
    cluster: Arc<Cluster>,
    broker: Arc<TcpBroker>,
    conn: Arc<Conn>,
    service: String,
    instance_id: u64,
    control: Arc<InstanceControl>,
) {
    let queue = cluster.service_queue(&service);
    let node_id = conn.node;
    queue.register_consumer(node_id);
    loop {
        if control.stop.load(Ordering::Relaxed)
            || conn.dead.load(Ordering::Relaxed)
            || cluster.is_shutdown()
        {
            break;
        }
        let Some(msg) = queue.pop_for(node_id, Duration::from_millis(50)) else {
            continue;
        };
        // Leased from here. Every exit path either settles exactly once
        // (lease taken first) or abandons the message with the lease
        // registered for the reaper — never both.
        cluster.insert_lease(&msg, &service, instance_id);
        cluster.note_delivered(&msg, node_id, instance_id);
        let delivery_id = broker.next_delivery.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        conn.pending.lock().insert(delivery_id, tx);
        control.busy.store(true, Ordering::Relaxed);
        let forwarded = conn.write(&WireMsg::Delivery {
            lease: delivery_id,
            redeliveries: msg.redeliveries,
            payload: wire_payload_of(&msg),
        });
        if forwarded {
            broker
                .tmetrics
                .remote_deliveries
                .fetch_add(1, Ordering::Relaxed);
        }
        let outcome = if !forwarded {
            None
        } else {
            loop {
                match rx.recv_timeout(Duration::from_millis(25)) {
                    Ok(result) => break Some(result),
                    Err(RecvTimeoutError::Disconnected) => break None,
                    Err(RecvTimeoutError::Timeout) => {
                        if conn.dead.load(Ordering::Relaxed)
                            || control.stop.load(Ordering::Relaxed)
                            || cluster.is_shutdown()
                        {
                            break None;
                        }
                        if !cluster.lease_held(msg.id) {
                            // The reaper reclaimed the message out from
                            // under the (slow) worker; the redelivery
                            // is someone else's now.
                            break None;
                        }
                    }
                }
            }
        };
        control.busy.store(false, Ordering::Relaxed);
        conn.pending.lock().remove(&delivery_id);
        match outcome {
            Some(result) => {
                if cluster.take_lease(msg.id) {
                    broker
                        .tmetrics
                        .remote_settles
                        .fetch_add(1, Ordering::Relaxed);
                    cluster.route_reply(&msg, result);
                    cluster.metrics.add(&cluster.metrics.completed, 1);
                    queue.settle();
                } else {
                    // Settled after reclaim: result discarded, the
                    // reaper already returned the queue lease.
                    broker
                        .tmetrics
                        .duplicate_settles
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                if conn.dead.load(Ordering::Relaxed)
                    || control.stop.load(Ordering::Relaxed)
                    || cluster.is_shutdown()
                {
                    // Worker gone mid-delivery (torn frame, kill -9):
                    // abandon. The registered lease expires and the
                    // reaper redelivers or quarantines — a crashed
                    // process cannot return its own work.
                    control.alive.store(false, Ordering::Relaxed);
                    break;
                }
                // Lease reclaimed but the connection is healthy: keep
                // serving. A late settle for `delivery_id` no longer
                // resolves and is counted as a duplicate.
                continue;
            }
        }
    }
    queue.deregister_consumer(node_id);
}

// ---- worker side ------------------------------------------------------

/// What a remote worker's handler receives per delivery.
pub struct RemoteDelivery {
    /// Destination service (as registered).
    pub service: String,
    /// Destination operation.
    pub operation: String,
    /// Message headers.
    pub headers: BTreeMap<String, String>,
    /// Opaque body.
    pub body: Vec<u8>,
    /// How many times the broker has re-queued this message.
    pub redeliveries: u32,
}

/// A remote worker's request handler: the worker-process analogue of
/// [`crate::Handler`]. One handler serves every registered service.
pub trait RemoteHandler: Send + Sync {
    /// Process one delivery; the reply body or a fault.
    fn handle(&self, ctx: &WorkerCtx, delivery: &RemoteDelivery) -> Result<Vec<u8>, Fault>;
}

impl<F> RemoteHandler for F
where
    F: Fn(&WorkerCtx, &RemoteDelivery) -> Result<Vec<u8>, Fault> + Send + Sync,
{
    fn handle(&self, ctx: &WorkerCtx, delivery: &RemoteDelivery) -> Result<Vec<u8>, Fault> {
        self(ctx, delivery)
    }
}

struct WorkerSession {
    stream: Mutex<TcpStream>,
    dead: AtomicBool,
}

impl WorkerSession {
    fn write(&self, msg: &WireMsg) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        let frame = encode_frame(msg);
        // Guard dropped before `kill`, which re-locks `self.stream`.
        let res = {
            let mut stream = self.stream.lock();
            stream.write_all(&frame).and_then(|_| stream.flush())
        };
        if res.is_err() {
            self.kill();
            return false;
        }
        true
    }

    fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
        let _ = self.stream.lock().shutdown(Shutdown::Both);
    }
}

/// Handler context on the worker side: fire-and-forget sends back into
/// the broker, plus fault-injection hooks the chaos harnesses use to
/// produce *real* torn frames and connection drops.
pub struct WorkerCtx {
    session: Arc<WorkerSession>,
}

impl WorkerCtx {
    /// Inject a fire-and-forget message into the broker's queues.
    pub fn send(&self, service: &str, operation: &str, body: Vec<u8>) {
        self.session.write(&WireMsg::Send {
            payload: WirePayload {
                service: service.to_string(),
                operation: operation.to_string(),
                headers: BTreeMap::new(),
                body,
                priority: 0,
                hold_until: 0,
            },
        });
    }

    /// Chaos hook: drop this worker's connection right now, as a
    /// network partition or peer reset would. The worker's reconnect
    /// loop takes over.
    pub fn drop_connection(&self) {
        self.session.kill();
    }

    /// Chaos hook: write half a frame, then die — the exact byte
    /// pattern a `kill -9` mid-write leaves on the broker's socket.
    /// The broker must treat it as a connection death (lease expiry),
    /// never block on it or apply a partial settle.
    pub fn write_torn_frame(&self) {
        let frame = encode_frame(&WireMsg::Heartbeat { seq: u64::MAX });
        let torn = &frame[..frame.len() / 2];
        {
            let mut stream = self.session.stream.lock();
            let _ = stream.write_all(torn);
            let _ = stream.flush();
        }
        self.session.kill();
    }
}

/// Worker-side counters, shared with the [`TcpWorker`] handle.
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Sessions that completed the handshake.
    pub connects: AtomicU64,
    /// Handshakes after the first (i.e. successful reconnects).
    pub reconnects: AtomicU64,
    /// Deliveries received.
    pub deliveries: AtomicU64,
    /// Settles successfully written back.
    pub settles: AtomicU64,
    /// Failed connection attempts.
    pub connect_failures: AtomicU64,
}

/// Configuration of a [`TcpWorker`].
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Broker address (`host:port`).
    pub broker: String,
    /// Worker name (diagnostics).
    pub name: String,
    /// Logical node id for affinity routing.
    pub node: u32,
    /// `(service, instance_count)` slots to register.
    pub services: Vec<(String, u32)>,
    /// Jitter seed for reconnect backoff (derive from the worker's
    /// identity so a restarted fleet spreads out deterministically).
    pub seed: u64,
    /// Reconnect backoff floor.
    pub backoff_base: Duration,
    /// Reconnect backoff cap.
    pub backoff_max: Duration,
    /// Give up after this many *consecutive* failed connect attempts;
    /// 0 retries forever.
    pub max_attempts: u32,
}

impl WorkerConfig {
    /// A worker serving `instances` slots of `service` at `broker`.
    pub fn new(broker: impl Into<String>, service: &str, instances: u32) -> WorkerConfig {
        WorkerConfig {
            broker: broker.into(),
            name: "worker".into(),
            node: 100,
            services: vec![(service.to_string(), instances)],
            seed: 0,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_secs(1),
            max_attempts: 0,
        }
    }
}

enum SessionEnd {
    /// Broker said Bye or the stop flag was raised: do not reconnect.
    Finished,
    /// Connection lost: reconnect.
    Lost,
}

/// A remote worker: connects to a [`TcpBroker`], registers service
/// slots, processes deliveries with a [`RemoteHandler`], heartbeats,
/// and reconnects with exponential backoff + jitter when the
/// connection drops. Runs in-thread (tests, benches) or as the whole
/// of a worker process (the `gozer-worker` binary).
pub struct TcpWorker {
    stop: Arc<AtomicBool>,
    stats: Arc<WorkerStats>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl TcpWorker {
    /// Run the worker on a background thread; stop it with
    /// [`TcpWorker::stop`].
    pub fn spawn(config: WorkerConfig, handler: Arc<dyn RemoteHandler>) -> TcpWorker {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(WorkerStats::default());
        let run_stop = stop.clone();
        let run_stats = stats.clone();
        let thread = std::thread::Builder::new()
            .name(format!("bb-worker-{}", config.name))
            .spawn(move || worker_loop(config, handler, run_stop, run_stats))
            .expect("spawn tcp worker thread");
        TcpWorker {
            stop,
            stats,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// Run the worker on the calling thread until the broker says Bye,
    /// the attempt budget is spent, or the process dies. This is the
    /// `gozer-worker` binary's main loop.
    pub fn run(config: WorkerConfig, handler: Arc<dyn RemoteHandler>) {
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(WorkerStats::default());
        worker_loop(config, handler, stop, stats);
    }

    /// Worker-side counters.
    pub fn stats(&self) -> &Arc<WorkerStats> {
        &self.stats
    }

    /// Signal the worker to stop and join its thread.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

fn worker_loop(
    config: WorkerConfig,
    handler: Arc<dyn RemoteHandler>,
    stop: Arc<AtomicBool>,
    stats: Arc<WorkerStats>,
) {
    let mut failures = 0u32;
    let mut sessions = 0u64;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match run_session(&config, &handler, &stop, &stats, sessions > 0) {
            Ok(SessionEnd::Finished) => return,
            Ok(SessionEnd::Lost) => {
                sessions += 1;
                failures = 0;
            }
            Err(_) => {
                stats.connect_failures.fetch_add(1, Ordering::Relaxed);
                failures += 1;
                if config.max_attempts != 0 && failures >= config.max_attempts {
                    return;
                }
            }
        }
        // Back off before the next attempt; sleep in slices so a stop
        // request is honored promptly.
        let mut left = backoff_with_jitter(
            config.backoff_base,
            config.backoff_max,
            config.seed,
            failures.max(1),
        );
        while !left.is_zero() {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let slice = left.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            left = left.saturating_sub(slice);
        }
    }
}

fn run_session(
    config: &WorkerConfig,
    handler: &Arc<dyn RemoteHandler>,
    stop: &Arc<AtomicBool>,
    stats: &Arc<WorkerStats>,
    is_reconnect: bool,
) -> Result<SessionEnd, FrameError> {
    let mut stream = TcpStream::connect(&config.broker).map_err(FrameError::from)?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut writer_stream = stream.try_clone().map_err(FrameError::from)?;
    write_frame(
        &mut writer_stream,
        &WireMsg::Hello {
            worker: config.name.clone(),
            node: config.node,
        },
    )?;
    // Timeout-safe framing: the 100ms read timeout routinely fires
    // mid-frame under load; partial bytes must be preserved across
    // ticks or the stream desynchronises.
    let mut reader = FrameReader::new();
    // Await HelloAck (tolerating read-timeout ticks).
    let heartbeat_ms = loop {
        match reader.read_frame(&mut stream) {
            Ok(WireMsg::HelloAck { heartbeat_ms }) => break heartbeat_ms,
            Err(e) if is_read_timeout(&e) => {
                if stop.load(Ordering::Relaxed) {
                    return Ok(SessionEnd::Finished);
                }
            }
            Ok(_) => return Err(FrameError::BadTag(0)),
            Err(e) => return Err(e),
        }
    };
    stats.connects.fetch_add(1, Ordering::Relaxed);
    if is_reconnect {
        stats.reconnects.fetch_add(1, Ordering::Relaxed);
    }
    let session = Arc::new(WorkerSession {
        stream: Mutex::new(writer_stream),
        dead: AtomicBool::new(false),
    });
    for (service, instances) in &config.services {
        if !session.write(&WireMsg::Register {
            service: service.clone(),
            instances: *instances,
        }) {
            return Ok(SessionEnd::Lost);
        }
    }
    // Heartbeat thread: vouches for this process at the cadence the
    // broker asked for.
    let hb_session = session.clone();
    let hb_stop = stop.clone();
    let hb_interval = Duration::from_millis(heartbeat_ms.clamp(20, 10_000));
    let heartbeat_thread = std::thread::Builder::new()
        .name("bb-worker-hb".into())
        .spawn(move || {
            let mut seq = 0u64;
            while !hb_session.dead.load(Ordering::Relaxed) && !hb_stop.load(Ordering::Relaxed)
            {
                std::thread::sleep(hb_interval);
                seq += 1;
                if !hb_session.write(&WireMsg::Heartbeat { seq }) {
                    return;
                }
            }
        })
        .expect("spawn worker heartbeat thread");
    // Dispatch deliveries until the connection ends.
    let end = loop {
        if stop.load(Ordering::Relaxed) {
            session.write(&WireMsg::Bye);
            break SessionEnd::Finished;
        }
        if session.dead.load(Ordering::Relaxed) {
            break SessionEnd::Lost;
        }
        match reader.read_frame(&mut stream) {
            Ok(WireMsg::Delivery {
                lease,
                redeliveries,
                payload,
            }) => {
                stats.deliveries.fetch_add(1, Ordering::Relaxed);
                let delivery = RemoteDelivery {
                    service: payload.service,
                    operation: payload.operation,
                    headers: payload.headers,
                    body: payload.body,
                    redeliveries,
                };
                let task_session = session.clone();
                let task_handler = handler.clone();
                let task_stats = stats.clone();
                // One thread per in-flight delivery; concurrency is
                // bounded broker-side by the registered instance count
                // (each proxy forwards one delivery at a time).
                let _ = std::thread::Builder::new()
                    .name("bb-worker-task".into())
                    .spawn(move || {
                        let ctx = WorkerCtx {
                            session: task_session.clone(),
                        };
                        let result = task_handler.handle(&ctx, &delivery);
                        let body = match result {
                            Ok(bytes) => SettleBody::Ok(bytes),
                            Err(fault) => SettleBody::Fault(fault.code, fault.message),
                        };
                        if task_session.write(&WireMsg::Settle { lease, body }) {
                            task_stats.settles.fetch_add(1, Ordering::Relaxed);
                        }
                    });
            }
            Ok(WireMsg::Registered { .. }) | Ok(WireMsg::Heartbeat { .. }) => {}
            Ok(WireMsg::Bye) => break SessionEnd::Finished,
            Ok(_) => break SessionEnd::Lost,
            Err(e) if is_read_timeout(&e) => continue,
            Err(_) => break SessionEnd::Lost,
        }
    };
    session.kill();
    let _ = heartbeat_thread.join();
    Ok(end)
}

fn write_frame(stream: &mut TcpStream, msg: &WireMsg) -> Result<(), FrameError> {
    crate::wire::write_frame(stream, msg)
}

/// Resolve `addr` to a [`SocketAddr`] (first match).
pub fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no address"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::RecoveryConfig;

    fn fast_recovery() -> RecoveryConfig {
        RecoveryConfig {
            lease_ttl: Duration::from_millis(400),
            scan_interval: Duration::from_millis(5),
            redelivery_budget: 8,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(20),
        }
    }

    #[test]
    fn remote_worker_round_trip() {
        let cluster = Cluster::new();
        cluster.set_recovery(fast_recovery());
        let broker =
            TcpBroker::start(&cluster, "127.0.0.1:0", TcpBrokerConfig::default()).unwrap();
        assert_eq!(cluster.transport().name(), "tcp");
        let handler = Arc::new(
            |_ctx: &WorkerCtx, d: &RemoteDelivery| -> Result<Vec<u8>, Fault> {
                let mut reply = d.body.clone();
                reply.reverse();
                Ok(reply)
            },
        );
        let worker = TcpWorker::spawn(
            WorkerConfig::new(broker.addr().to_string(), "rev", 2),
            handler,
        );
        for i in 0..20u8 {
            let reply = cluster
                .call(
                    Message::new("rev", "Rev", vec![i, i + 1, i + 2]),
                    Duration::from_secs(5),
                )
                .unwrap();
            assert_eq!(reply, vec![i + 2, i + 1, i]);
        }
        let tm = broker.transport_metrics().snapshot();
        assert!(tm.remote_deliveries >= 20);
        assert_eq!(tm.remote_settles, tm.remote_deliveries);
        assert_eq!(tm.duplicate_settles, 0);
        worker.stop();
        cluster.shutdown();
    }

    #[test]
    fn worker_fault_routes_back() {
        let cluster = Cluster::new();
        cluster.set_recovery(fast_recovery());
        let broker =
            TcpBroker::start(&cluster, "127.0.0.1:0", TcpBrokerConfig::default()).unwrap();
        let handler = Arc::new(
            |_ctx: &WorkerCtx, _d: &RemoteDelivery| -> Result<Vec<u8>, Fault> {
                Err(Fault::new("{urn:w}Boom", "nope"))
            },
        );
        let worker = TcpWorker::spawn(
            WorkerConfig::new(broker.addr().to_string(), "boom", 1),
            handler,
        );
        let err = cluster
            .call(Message::new("boom", "Go", vec![]), Duration::from_secs(5))
            .unwrap_err();
        match err {
            crate::CallError::Fault(f) => assert_eq!(f.code, "{urn:w}Boom"),
            other => panic!("expected fault, got {other:?}"),
        }
        worker.stop();
        cluster.shutdown();
    }

    #[test]
    fn dead_connection_surfaces_as_lease_expiry() {
        let cluster = Cluster::new();
        cluster.set_recovery(fast_recovery());
        let broker =
            TcpBroker::start(&cluster, "127.0.0.1:0", TcpBrokerConfig::default()).unwrap();
        // First delivery tears the connection mid-write; the reconnected
        // session must complete the redelivery.
        let torn = Arc::new(AtomicBool::new(false));
        let handler_torn = torn.clone();
        let handler = Arc::new(
            move |ctx: &WorkerCtx, d: &RemoteDelivery| -> Result<Vec<u8>, Fault> {
                if !handler_torn.swap(true, Ordering::SeqCst) {
                    ctx.write_torn_frame();
                    // The settle below is written to a dead socket and
                    // must vanish without effect.
                }
                Ok(d.body.clone())
            },
        );
        let worker = TcpWorker::spawn(
            WorkerConfig::new(broker.addr().to_string(), "echo", 1),
            handler,
        );
        let reply = cluster
            .call(Message::new("echo", "Echo", b"alive".to_vec()), Duration::from_secs(10))
            .unwrap();
        assert_eq!(reply, b"alive");
        let stats = cluster.recovery_stats();
        assert!(stats.reclaims >= 1, "lease expiry must drive the retry");
        let tm = broker.transport_metrics().snapshot();
        assert!(tm.worker_disconnects >= 1);
        worker.stop();
        cluster.shutdown();
    }

    /// Run `f` on a helper thread and panic if it has not finished
    /// within `limit` — turns a deadlock into a test failure instead of
    /// a hung suite.
    fn assert_finishes_within(limit: Duration, f: impl FnOnce() + Send + 'static) {
        let done = Arc::new(AtomicBool::new(false));
        let thread_done = done.clone();
        let t = std::thread::spawn(move || {
            f();
            thread_done.store(true, Ordering::SeqCst);
        });
        let deadline = Instant::now() + limit;
        while !done.load(Ordering::SeqCst) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(done.load(Ordering::SeqCst), "deadlocked: did not finish in {limit:?}");
        t.join().unwrap();
    }

    /// A write can only fail with the stream mutex held; `mark_dead`
    /// re-locks that mutex to shut the socket down. Regression test for
    /// the recursive-lock deadlock: the first broker-side write failure
    /// after a worker `kill -9` must return, not wedge the proxy.
    #[test]
    fn broker_write_failure_marks_dead_without_deadlock() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        drop(accepted); // peer dies: writes will eventually fail
        let conn = Arc::new(Conn {
            worker: "t".into(),
            node: 0,
            stream: Mutex::new(client),
            dead: AtomicBool::new(false),
            pending: Mutex::new(HashMap::new()),
            instances: Mutex::new(Vec::new()),
            tm: Arc::new(TransportMetrics::default()),
        });
        let write_conn = conn.clone();
        assert_finishes_within(Duration::from_secs(10), move || {
            // Large frames defeat socket buffering so the dead peer
            // surfaces as a write error within a few attempts.
            let big = WireMsg::Settle {
                lease: 1,
                body: SettleBody::Ok(vec![0u8; 1 << 20]),
            };
            for _ in 0..64 {
                if !write_conn.write(&big) {
                    return;
                }
            }
            panic!("writes to a dead peer never failed");
        });
        assert!(conn.dead.load(Ordering::Relaxed));
    }

    /// Same recursive-lock shape on the worker side: a failed
    /// settle/heartbeat write calls `kill`, which re-locks the stream.
    #[test]
    fn worker_write_failure_kills_session_without_deadlock() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        drop(accepted);
        let session = Arc::new(WorkerSession {
            stream: Mutex::new(client),
            dead: AtomicBool::new(false),
        });
        let write_session = session.clone();
        assert_finishes_within(Duration::from_secs(10), move || {
            let big = WireMsg::Settle {
                lease: 1,
                body: SettleBody::Ok(vec![0u8; 1 << 20]),
            };
            for _ in 0..64 {
                if !write_session.write(&big) {
                    return;
                }
            }
            panic!("writes to a dead peer never failed");
        });
        assert!(session.dead.load(Ordering::Relaxed));
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let base = Duration::from_millis(10);
        let max = Duration::from_secs(1);
        let a = backoff_with_jitter(base, max, 7, 3);
        let b = backoff_with_jitter(base, max, 7, 3);
        assert_eq!(a, b, "same seed+attempt must agree");
        assert!(a >= Duration::from_millis(40) && a <= Duration::from_millis(60));
        let capped = backoff_with_jitter(base, max, 7, 30);
        assert!(capped <= max + max / 2);
        let other_seed = backoff_with_jitter(base, max, 8, 3);
        // Not a hard guarantee for every pair, but these seeds differ.
        assert_ne!(a, other_seed);
    }
}
