//! Cluster-wide counters used by the benchmark harnesses (§3.2, §5).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters; cheap enough to leave always-on.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Messages accepted by the broker.
    pub sent: AtomicU64,
    /// Messages handed to an instance.
    pub delivered: AtomicU64,
    /// Messages re-queued after a failed delivery.
    pub redelivered: AtomicU64,
    /// Handler invocations that completed (reply routed or none needed).
    pub completed: AtomicU64,
    /// Handler invocations that returned a fault.
    pub faults: AtomicU64,
    /// Total time spent inside handlers.
    pub busy_nanos: AtomicU64,
    /// Total message queue-wait time (enqueue → delivery).
    pub wait_nanos: AtomicU64,
    /// Time instances spent blocked inside *synchronous* nested service
    /// calls — the wasted "request slot" time of §3.2.
    pub sync_block_nanos: AtomicU64,
    /// Messages currently being processed.
    pub in_flight: AtomicU64,
    /// High-water mark of `in_flight`.
    pub max_in_flight: AtomicU64,
}

impl Metrics {
    pub(crate) fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn enter_flight(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn exit_flight(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Point-in-time copy for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            redelivered: self.redelivered.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            wait_nanos: self.wait_nanos.load(Ordering::Relaxed),
            sync_block_nanos: self.sync_block_nanos.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
        }
    }
}

/// A copied-out view of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`Metrics::sent`].
    pub sent: u64,
    /// See [`Metrics::delivered`].
    pub delivered: u64,
    /// See [`Metrics::redelivered`].
    pub redelivered: u64,
    /// See [`Metrics::completed`].
    pub completed: u64,
    /// See [`Metrics::faults`].
    pub faults: u64,
    /// See [`Metrics::busy_nanos`].
    pub busy_nanos: u64,
    /// See [`Metrics::wait_nanos`].
    pub wait_nanos: u64,
    /// See [`Metrics::sync_block_nanos`].
    pub sync_block_nanos: u64,
    /// See [`Metrics::max_in_flight`].
    pub max_in_flight: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_tracking() {
        let m = Metrics::default();
        m.enter_flight();
        m.enter_flight();
        m.exit_flight();
        m.enter_flight();
        let s = m.snapshot();
        assert_eq!(s.max_in_flight, 2);
    }
}
