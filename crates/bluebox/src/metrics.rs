//! Cluster-wide counters used by the benchmark harnesses (§3.2, §5).
//!
//! Each latency sum (`busy_nanos`, `wait_nanos`, `sync_block_nanos`)
//! carries a paired observation count, so a mean is computable from any
//! [`MetricsSnapshot`] — and two snapshots [`diff`](MetricsSnapshot::diff)
//! into an interval view. The same atomics are mirrored into the
//! cluster's [`gozer_obs::MetricsRegistry`] as closure-backed samples,
//! so the text exporter and these counters can never disagree.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Monotonic counters; cheap enough to leave always-on.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Messages accepted by the broker.
    pub sent: AtomicU64,
    /// Messages handed to an instance.
    pub delivered: AtomicU64,
    /// Messages re-queued after a failed delivery.
    pub redelivered: AtomicU64,
    /// Handler invocations that completed (reply routed or none needed).
    pub completed: AtomicU64,
    /// Handler invocations that returned a fault.
    pub faults: AtomicU64,
    /// Total time spent inside handlers.
    pub busy_nanos: AtomicU64,
    /// Number of handler invocations contributing to `busy_nanos`.
    pub busy_count: AtomicU64,
    /// Total message queue-wait time (enqueue → delivery).
    pub wait_nanos: AtomicU64,
    /// Number of deliveries contributing to `wait_nanos`.
    pub wait_count: AtomicU64,
    /// Time instances spent blocked inside *synchronous* nested service
    /// calls — the wasted "request slot" time of §3.2.
    pub sync_block_nanos: AtomicU64,
    /// Number of synchronous calls contributing to `sync_block_nanos`.
    pub sync_block_count: AtomicU64,
    /// Messages currently being processed.
    pub in_flight: AtomicU64,
    /// High-water mark of `in_flight`.
    pub max_in_flight: AtomicU64,
}

impl Metrics {
    pub(crate) fn add(&self, counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }

    pub(crate) fn enter_flight(&self) {
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    pub(crate) fn exit_flight(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Mean queue wait per delivery, or `None` before any delivery.
    pub fn mean_wait(&self) -> Option<Duration> {
        self.snapshot().mean_wait()
    }

    /// Mean handler busy time, or `None` before any invocation.
    pub fn mean_busy(&self) -> Option<Duration> {
        self.snapshot().mean_busy()
    }

    /// Mean synchronous-call block time, or `None` before any call.
    pub fn mean_sync_block(&self) -> Option<Duration> {
        self.snapshot().mean_sync_block()
    }

    /// Point-in-time copy for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sent: self.sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            redelivered: self.redelivered.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            busy_nanos: self.busy_nanos.load(Ordering::Relaxed),
            busy_count: self.busy_count.load(Ordering::Relaxed),
            wait_nanos: self.wait_nanos.load(Ordering::Relaxed),
            wait_count: self.wait_count.load(Ordering::Relaxed),
            sync_block_nanos: self.sync_block_nanos.load(Ordering::Relaxed),
            sync_block_count: self.sync_block_count.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
        }
    }
}

/// A copied-out view of [`Metrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`Metrics::sent`].
    pub sent: u64,
    /// See [`Metrics::delivered`].
    pub delivered: u64,
    /// See [`Metrics::redelivered`].
    pub redelivered: u64,
    /// See [`Metrics::completed`].
    pub completed: u64,
    /// See [`Metrics::faults`].
    pub faults: u64,
    /// See [`Metrics::busy_nanos`].
    pub busy_nanos: u64,
    /// See [`Metrics::busy_count`].
    pub busy_count: u64,
    /// See [`Metrics::wait_nanos`].
    pub wait_nanos: u64,
    /// See [`Metrics::wait_count`].
    pub wait_count: u64,
    /// See [`Metrics::sync_block_nanos`].
    pub sync_block_nanos: u64,
    /// See [`Metrics::sync_block_count`].
    pub sync_block_count: u64,
    /// See [`Metrics::max_in_flight`].
    pub max_in_flight: u64,
}

impl MetricsSnapshot {
    fn mean_of(nanos: u64, count: u64) -> Option<Duration> {
        if count == 0 {
            None
        } else {
            Some(Duration::from_nanos(nanos / count))
        }
    }

    /// Mean queue wait per delivery, or `None` with zero deliveries.
    pub fn mean_wait(&self) -> Option<Duration> {
        Self::mean_of(self.wait_nanos, self.wait_count)
    }

    /// Mean handler busy time, or `None` with zero invocations.
    pub fn mean_busy(&self) -> Option<Duration> {
        Self::mean_of(self.busy_nanos, self.busy_count)
    }

    /// Mean synchronous-call block time, or `None` with zero calls.
    pub fn mean_sync_block(&self) -> Option<Duration> {
        Self::mean_of(self.sync_block_nanos, self.sync_block_count)
    }

    /// This snapshot minus an `earlier` one (saturating): counters and
    /// latency pairs become interval deltas. `max_in_flight` keeps the
    /// later high-water mark (it is not a counter).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            sent: self.sent.saturating_sub(earlier.sent),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            redelivered: self.redelivered.saturating_sub(earlier.redelivered),
            completed: self.completed.saturating_sub(earlier.completed),
            faults: self.faults.saturating_sub(earlier.faults),
            busy_nanos: self.busy_nanos.saturating_sub(earlier.busy_nanos),
            busy_count: self.busy_count.saturating_sub(earlier.busy_count),
            wait_nanos: self.wait_nanos.saturating_sub(earlier.wait_nanos),
            wait_count: self.wait_count.saturating_sub(earlier.wait_count),
            sync_block_nanos: self.sync_block_nanos.saturating_sub(earlier.sync_block_nanos),
            sync_block_count: self.sync_block_count.saturating_sub(earlier.sync_block_count),
            max_in_flight: self.max_in_flight,
        }
    }
}

/// Counters of the TCP transport layer (see [`crate::tcp`]): framing
/// traffic, connection churn, and the settle disambiguation outcomes
/// the exactly-once tests assert on. Kept separate from [`Metrics`] —
/// the in-process transport has nothing to report, and embedders
/// snapshot the broker counters by value.
#[derive(Debug, Default)]
pub struct TransportMetrics {
    /// Frames written to sockets.
    pub frames_sent: AtomicU64,
    /// Frames successfully decoded off sockets.
    pub frames_received: AtomicU64,
    /// Bytes written to sockets (frame headers included).
    pub bytes_sent: AtomicU64,
    /// Frames that failed to decode (bad CRC, bad tag, oversized,
    /// torn) — each one is connection-fatal.
    pub decode_errors: AtomicU64,
    /// Worker connections accepted (handshake completed).
    pub worker_connects: AtomicU64,
    /// Worker connections lost or closed.
    pub worker_disconnects: AtomicU64,
    /// Deliveries forwarded to remote workers.
    pub remote_deliveries: AtomicU64,
    /// Settles applied (the proxy still owned the lease).
    pub remote_settles: AtomicU64,
    /// Settles discarded because the lease was already reclaimed or
    /// the delivery superseded — the double-effect guard firing.
    pub duplicate_settles: AtomicU64,
    /// Heartbeat frames received from workers.
    pub heartbeats: AtomicU64,
}

impl TransportMetrics {
    /// Point-in-time copy for reporting.
    pub fn snapshot(&self) -> TransportMetricsSnapshot {
        TransportMetricsSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            worker_connects: self.worker_connects.load(Ordering::Relaxed),
            worker_disconnects: self.worker_disconnects.load(Ordering::Relaxed),
            remote_deliveries: self.remote_deliveries.load(Ordering::Relaxed),
            remote_settles: self.remote_settles.load(Ordering::Relaxed),
            duplicate_settles: self.duplicate_settles.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
        }
    }
}

/// A copied-out view of [`TransportMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportMetricsSnapshot {
    /// See [`TransportMetrics::frames_sent`].
    pub frames_sent: u64,
    /// See [`TransportMetrics::frames_received`].
    pub frames_received: u64,
    /// See [`TransportMetrics::bytes_sent`].
    pub bytes_sent: u64,
    /// See [`TransportMetrics::decode_errors`].
    pub decode_errors: u64,
    /// See [`TransportMetrics::worker_connects`].
    pub worker_connects: u64,
    /// See [`TransportMetrics::worker_disconnects`].
    pub worker_disconnects: u64,
    /// See [`TransportMetrics::remote_deliveries`].
    pub remote_deliveries: u64,
    /// See [`TransportMetrics::remote_settles`].
    pub remote_settles: u64,
    /// See [`TransportMetrics::duplicate_settles`].
    pub duplicate_settles: u64,
    /// See [`TransportMetrics::heartbeats`].
    pub heartbeats: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_tracking() {
        let m = Metrics::default();
        m.enter_flight();
        m.enter_flight();
        m.exit_flight();
        m.enter_flight();
        let s = m.snapshot();
        assert_eq!(s.max_in_flight, 2);
    }

    #[test]
    fn means_need_counts() {
        let m = Metrics::default();
        assert_eq!(m.mean_wait(), None);
        m.add(&m.wait_nanos, 3_000);
        m.add(&m.wait_count, 2);
        assert_eq!(m.mean_wait(), Some(Duration::from_nanos(1_500)));
    }

    #[test]
    fn snapshot_diff_isolates_interval() {
        let m = Metrics::default();
        m.add(&m.busy_nanos, 10_000);
        m.add(&m.busy_count, 1);
        let before = m.snapshot();
        m.add(&m.busy_nanos, 2_000);
        m.add(&m.busy_count, 1);
        m.add(&m.busy_nanos, 4_000);
        m.add(&m.busy_count, 1);
        let delta = m.snapshot().diff(&before);
        assert_eq!(delta.busy_count, 2);
        assert_eq!(delta.mean_busy(), Some(Duration::from_nanos(3_000)));
    }
}
