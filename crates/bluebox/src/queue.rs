//! A per-service message queue with pluggable scheduling policy and
//! blocking competing-consumer receive.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::message::Message;

/// How the next message is chosen when multiple are queued.
///
/// The production system is FCFS with priorities ("task scheduling is
/// first-come-first-serve, which has been shown to be suboptimal in the
/// presence of deadlines", §5); `Edf` is the deadline-aware policy the
/// §5 scheduling experiment compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Strict arrival order.
    #[default]
    Fcfs,
    /// Highest priority first, FCFS within a priority.
    Priority,
    /// Earliest deadline first (no deadline = last), FCFS among equals.
    Edf,
}

struct QueueState {
    messages: VecDeque<(u64, Message)>,
    next_seq: u64,
    closed: bool,
    /// Messages handed to a consumer by [`ServiceQueue::pop`] whose
    /// processing has not yet been settled. Incremented under the queue
    /// lock at pop time, so `messages.is_empty() && leased == 0` is a
    /// race-free "nothing in flight" predicate (the old
    /// depth-then-busy check could observe the gap between a pop and
    /// the consumer marking itself busy).
    leased: usize,
    /// Bumped by [`ServiceQueue::interrupt`]; blocked pops return early
    /// when they observe a new epoch so consumers can re-check control
    /// flags without waiting out their timeout.
    interrupt_epoch: u64,
}

/// A service queue.
pub struct ServiceQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    idle_cond: Condvar,
    policy: Policy,
}

impl ServiceQueue {
    /// Queue with the given policy.
    pub fn new(policy: Policy) -> ServiceQueue {
        ServiceQueue {
            state: Mutex::new(QueueState {
                messages: VecDeque::new(),
                next_seq: 0,
                closed: false,
                leased: 0,
                interrupt_epoch: 0,
            }),
            cond: Condvar::new(),
            idle_cond: Condvar::new(),
            policy,
        }
    }

    /// Enqueue.
    pub fn push(&self, msg: Message) {
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.messages.push_back((seq, msg));
        drop(st);
        self.cond.notify_one();
    }

    /// Re-enqueue a message after a failed delivery, preserving arrival
    /// fairness as well as possible (front of queue).
    pub fn push_front(&self, mut msg: Message) {
        msg.redeliveries += 1;
        let mut st = self.state.lock();
        st.messages.push_front((0, msg));
        drop(st);
        self.cond.notify_one();
    }

    /// Enqueue displaced `slots` positions ahead of the back of the
    /// queue — a deterministic FCFS-order violation used by the chaos
    /// layer to simulate broker reordering.
    pub fn push_displaced(&self, msg: Message, slots: usize) {
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        let pos = st.messages.len().saturating_sub(slots);
        st.messages.insert(pos, (seq, msg));
        drop(st);
        self.cond.notify_one();
    }

    /// Blocking receive with timeout; `None` on timeout, close, or
    /// [`interrupt`](Self::interrupt). A returned message is *leased*:
    /// the consumer must call [`settle`](Self::settle) once it has
    /// finished with it (processed, crashed, or re-queued), or
    /// [`wait_idle`](Self::wait_idle) will never report idle.
    pub fn pop(&self, timeout: Duration) -> Option<Message> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        let epoch = st.interrupt_epoch;
        loop {
            if let Some(idx) = self.select(&st.messages) {
                let (_, msg) = st.messages.remove(idx).expect("index valid");
                st.leased += 1;
                return Some(msg);
            }
            if st.closed || st.interrupt_epoch != epoch {
                return None;
            }
            if self.cond.wait_until(&mut st, deadline).timed_out() {
                return None;
            }
        }
    }

    /// Release the lease taken by [`pop`](Self::pop); wakes
    /// [`wait_idle`](Self::wait_idle) waiters when the queue quiesces.
    pub fn settle(&self) {
        let mut st = self.state.lock();
        st.leased = st.leased.saturating_sub(1);
        if st.leased == 0 && st.messages.is_empty() {
            drop(st);
            self.idle_cond.notify_all();
        }
    }

    /// Wake all blocked pops without closing the queue, so consumers
    /// re-check their control flags (stop/kill) immediately instead of
    /// waiting out the pop timeout.
    pub fn interrupt(&self) {
        self.state.lock().interrupt_epoch += 1;
        self.cond.notify_all();
    }

    /// Block until the queue is empty *and* every leased message has
    /// been settled, or `deadline` passes. Returns whether the queue is
    /// idle.
    pub fn wait_idle(&self, deadline: Instant) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.messages.is_empty() && st.leased == 0 {
                return true;
            }
            if self.idle_cond.wait_until(&mut st, deadline).timed_out() {
                return st.messages.is_empty() && st.leased == 0;
            }
        }
    }

    /// Non-blocking receive. Does *not* lease (intended for tests and
    /// single-threaded draining, not competing consumers).
    pub fn try_pop(&self) -> Option<Message> {
        let mut st = self.state.lock();
        let idx = self.select(&st.messages)?;
        st.messages.remove(idx).map(|(_, m)| m)
    }

    fn select(&self, messages: &VecDeque<(u64, Message)>) -> Option<usize> {
        if messages.is_empty() {
            return None;
        }
        match self.policy {
            Policy::Fcfs => Some(0),
            Policy::Priority => {
                let mut best = 0;
                for (i, (seq, m)) in messages.iter().enumerate() {
                    let (bseq, bm) = &messages[best];
                    if m.priority > bm.priority || (m.priority == bm.priority && seq < bseq) {
                        best = i;
                    }
                }
                Some(best)
            }
            Policy::Edf => {
                let key = |m: &Message| m.deadline;
                let mut best = 0;
                for (i, (seq, m)) in messages.iter().enumerate() {
                    let (bseq, bm) = &messages[best];
                    let earlier = match (key(m), key(bm)) {
                        (Some(a), Some(b)) => a < b,
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => seq < bseq,
                    };
                    if earlier {
                        best = i;
                    }
                }
                Some(best)
            }
        }
    }

    /// Number of waiting messages.
    pub fn depth(&self) -> usize {
        self.state.lock().messages.len()
    }

    /// Number of popped-but-unsettled messages (outstanding leases).
    pub fn leased_count(&self) -> usize {
        self.state.lock().leased
    }

    /// Close: wake all receivers; subsequent pops drain then return
    /// `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(op: &str, prio: i32) -> Message {
        Message::new("s", op, vec![]).with_priority(prio)
    }

    #[test]
    fn fcfs_order() {
        let q = ServiceQueue::new(Policy::Fcfs);
        q.push(msg("a", 0));
        q.push(msg("b", 9));
        q.push(msg("c", 5));
        let order: Vec<String> = (0..3)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().operation)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn priority_order() {
        let q = ServiceQueue::new(Policy::Priority);
        q.push(msg("low", 0));
        q.push(msg("high", 9));
        q.push(msg("mid", 5));
        q.push(msg("high2", 9));
        let order: Vec<String> = (0..4)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().operation)
            .collect();
        assert_eq!(order, vec!["high", "high2", "mid", "low"]);
    }

    #[test]
    fn edf_order() {
        let q = ServiceQueue::new(Policy::Edf);
        let now = Instant::now();
        q.push(msg("nodeadline", 0));
        q.push(msg("late", 0).with_deadline(now + Duration::from_secs(10)));
        q.push(msg("soon", 0).with_deadline(now + Duration::from_secs(1)));
        let order: Vec<String> = (0..3)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().operation)
            .collect();
        assert_eq!(order, vec!["soon", "late", "nodeadline"]);
    }

    #[test]
    fn pop_times_out() {
        let q = ServiceQueue::new(Policy::Fcfs);
        assert!(q.pop(Duration::from_millis(20)).is_none());
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = std::sync::Arc::new(ServiceQueue::new(Policy::Fcfs));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(msg("x", 0));
        assert_eq!(h.join().unwrap().unwrap().operation, "x");
    }

    #[test]
    fn redelivery_goes_first_and_counts() {
        let q = ServiceQueue::new(Policy::Fcfs);
        q.push(msg("a", 0));
        let failed = msg("failed", 0);
        q.push_front(failed);
        let first = q.pop(Duration::from_millis(10)).unwrap();
        assert_eq!(first.operation, "failed");
        assert_eq!(first.redeliveries, 1);
    }

    #[test]
    fn wait_idle_waits_for_settle_not_just_empty() {
        let q = std::sync::Arc::new(ServiceQueue::new(Policy::Fcfs));
        q.push(msg("x", 0));
        let m = q.pop(Duration::from_millis(10)).unwrap();
        assert_eq!(m.operation, "x");
        // Queue is empty but the message is still leased.
        assert_eq!(q.depth(), 0);
        assert!(!q.wait_idle(Instant::now() + Duration::from_millis(30)));
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            q2.wait_idle(Instant::now() + Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        q.settle();
        assert!(h.join().unwrap());
    }

    #[test]
    fn interrupt_wakes_blocked_pop() {
        let q = std::sync::Arc::new(ServiceQueue::new(Policy::Fcfs));
        let q2 = q.clone();
        let started = Instant::now();
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.interrupt();
        assert!(h.join().unwrap().is_none());
        assert!(started.elapsed() < Duration::from_secs(5));
        // The queue still works afterwards.
        q.push(msg("y", 0));
        assert_eq!(q.pop(Duration::from_millis(10)).unwrap().operation, "y");
    }

    #[test]
    fn push_displaced_jumps_fcfs_order() {
        let q = ServiceQueue::new(Policy::Fcfs);
        q.push(msg("a", 0));
        q.push(msg("b", 0));
        q.push_displaced(msg("late", 0), 2);
        let order: Vec<String> = (0..3)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().operation)
            .collect();
        assert_eq!(order, vec!["late", "a", "b"]);
    }

    #[test]
    fn close_wakes_waiters() {
        let q = std::sync::Arc::new(ServiceQueue::new(Policy::Fcfs));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap().is_none());
    }
}
