//! A per-service message queue with pluggable scheduling policy,
//! blocking competing-consumer receive, and affinity-aware delivery.
//!
//! Messages live in one ordered index keyed by `(policy rank, arrival)`,
//! so the next message under any policy is the *first* map entry —
//! O(log n) per push/pop instead of the old O(n) best-match scan — and
//! FCFS-within-priority falls out of the arrival component of the key.
//!
//! Affinity (paper §4.2): a message may carry a *placement hint* naming
//! the node whose fiber cache most likely holds its continuation. The
//! queue then prefers a consumer on that node: other consumers skip the
//! message unless the affine node is dead (no registered consumers) or
//! behind (its affine backlog exceeds a configurable slack), in which
//! case delivery degrades to plain load balancing. Skipped messages stay
//! in order, so affinity never reorders work destined for the same node.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::message::Message;

/// How the next message is chosen when multiple are queued.
///
/// The production system is FCFS with priorities ("task scheduling is
/// first-come-first-serve, which has been shown to be suboptimal in the
/// presence of deadlines", §5); `Edf` is the deadline-aware policy the
/// §5 scheduling experiment compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Strict arrival order.
    #[default]
    Fcfs,
    /// Highest priority first, FCFS within a priority.
    Priority,
    /// Earliest deadline first (no deadline = last), FCFS among equals.
    Edf,
}

/// Default steal slack: how many waiting affine messages a node may
/// accumulate before other nodes start taking them.
pub const DEFAULT_AFFINITY_SLACK: usize = 2;

/// Ordered-index key: policy rank first, arrival order within a rank.
/// Arrival keys are strided so displaced (re-ordered) inserts can claim
/// gaps without renumbering.
type SelKey = (i64, i64);

const ARRIVAL_STRIDE: i64 = 1 << 10;

struct QueueState {
    messages: BTreeMap<SelKey, Message>,
    /// Arrival key for the next normal push (grows by the stride).
    next_seq: i64,
    /// Arrival key for the next front-of-class push (shrinks).
    front_seq: i64,
    closed: bool,
    /// Messages handed to a consumer by [`ServiceQueue::pop`] whose
    /// processing has not yet been settled. Incremented under the queue
    /// lock at pop time, so `messages.is_empty() && leased == 0` is a
    /// race-free "nothing in flight" predicate (the old
    /// depth-then-busy check could observe the gap between a pop and
    /// the consumer marking itself busy).
    leased: usize,
    /// Bumped by [`ServiceQueue::interrupt`]; blocked pops return early
    /// when they observe a new epoch so consumers can re-check control
    /// flags without waiting out their timeout.
    interrupt_epoch: u64,
    /// Registered consumer count per node id; a node with no entries is
    /// *dead* for affinity purposes and its messages are free to take.
    consumers: HashMap<u32, usize>,
    /// Waiting (not yet popped) messages per affinity node — the
    /// backlog the slack rule compares against.
    affine_depth: HashMap<u32, usize>,
}

impl QueueState {
    fn note_queued(&mut self, m: &Message) {
        if let Some(a) = m.affinity {
            *self.affine_depth.entry(a).or_insert(0) += 1;
        }
    }

    fn note_dequeued(&mut self, m: &Message) {
        if let Some(a) = m.affinity {
            if let Some(d) = self.affine_depth.get_mut(&a) {
                *d = d.saturating_sub(1);
                if *d == 0 {
                    self.affine_depth.remove(&a);
                }
            }
        }
    }
}

/// A service queue.
pub struct ServiceQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    idle_cond: Condvar,
    policy: Policy,
    /// Reference instant for EDF deadline ranking.
    epoch: Instant,
    affinity_slack: usize,
    /// Deliveries of affinity-stamped messages to their affine node.
    affinity_hits: AtomicU64,
    /// Deliveries of affinity-stamped messages elsewhere (steal or dead
    /// node fallback).
    affinity_misses: AtomicU64,
}

impl ServiceQueue {
    /// Queue with the given policy and the default affinity slack.
    pub fn new(policy: Policy) -> ServiceQueue {
        ServiceQueue::with_affinity_slack(policy, DEFAULT_AFFINITY_SLACK)
    }

    /// Queue with an explicit affinity steal slack. Slack 0 disables
    /// affinity preference entirely (every consumer takes the head).
    pub fn with_affinity_slack(policy: Policy, affinity_slack: usize) -> ServiceQueue {
        ServiceQueue {
            state: Mutex::new(QueueState {
                messages: BTreeMap::new(),
                next_seq: 0,
                front_seq: -ARRIVAL_STRIDE,
                closed: false,
                leased: 0,
                interrupt_epoch: 0,
                consumers: HashMap::new(),
                affine_depth: HashMap::new(),
            }),
            cond: Condvar::new(),
            idle_cond: Condvar::new(),
            policy,
            epoch: Instant::now(),
            affinity_slack,
            affinity_hits: AtomicU64::new(0),
            affinity_misses: AtomicU64::new(0),
        }
    }

    /// Policy rank of a message: the primary sort key of the ordered
    /// index. Smaller ranks deliver first.
    fn rank(&self, m: &Message) -> i64 {
        match self.policy {
            Policy::Fcfs => 0,
            Policy::Priority => -(m.priority as i64),
            Policy::Edf => m
                .deadline
                .map(|d| {
                    d.saturating_duration_since(self.epoch)
                        .as_nanos()
                        .min((i64::MAX - 1) as u128) as i64
                })
                .unwrap_or(i64::MAX),
        }
    }

    /// Enqueue.
    pub fn push(&self, msg: Message) {
        let rank = self.rank(&msg);
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += ARRIVAL_STRIDE;
        st.note_queued(&msg);
        st.messages.insert((rank, seq), msg);
        drop(st);
        // notify_all, not notify_one: with affinity in play the woken
        // consumer may skip the new message, and it must not swallow the
        // wakeup meant for the affine node's consumer.
        self.cond.notify_all();
    }

    /// Re-enqueue a message after a failed delivery, preserving arrival
    /// fairness as well as possible (front of its rank class).
    pub fn push_front(&self, mut msg: Message) {
        msg.redeliveries += 1;
        let rank = self.rank(&msg);
        let mut st = self.state.lock();
        let seq = st.front_seq;
        st.front_seq -= ARRIVAL_STRIDE;
        st.note_queued(&msg);
        st.messages.insert((rank, seq), msg);
        drop(st);
        self.cond.notify_all();
    }

    /// Enqueue displaced `slots` positions ahead of the back of the
    /// queue — a deterministic FCFS-order violation used by the chaos
    /// layer to simulate broker reordering.
    pub fn push_displaced(&self, msg: Message, slots: usize) {
        let rank = self.rank(&msg);
        let mut st = self.state.lock();
        // The entry currently `slots` from the back is the one the
        // displaced message should overtake; claim an arrival key just
        // ahead of it (the stride leaves gaps for exactly this).
        let succ = if slots == 0 {
            None
        } else {
            st.messages
                .iter()
                .rev()
                .nth(slots - 1)
                .or_else(|| st.messages.iter().next())
                .map(|(&k, _)| k)
        };
        let seq = match succ {
            Some((_, succ_seq)) => {
                let mut candidate = succ_seq - 1;
                while st.messages.contains_key(&(rank, candidate)) {
                    candidate -= 1;
                }
                candidate
            }
            None => {
                let seq = st.next_seq;
                st.next_seq += ARRIVAL_STRIDE;
                seq
            }
        };
        st.note_queued(&msg);
        st.messages.insert((rank, seq), msg);
        drop(st);
        self.cond.notify_all();
    }

    /// Register a consumer running on `node` (affinity target). Call
    /// [`deregister_consumer`](Self::deregister_consumer) when it stops,
    /// or the node will keep claiming its affine messages forever.
    pub fn register_consumer(&self, node: u32) {
        let mut st = self.state.lock();
        *st.consumers.entry(node).or_insert(0) += 1;
    }

    /// Deregister a consumer of `node`; once the count reaches zero the
    /// node is dead for affinity purposes and its messages are released
    /// to everyone.
    pub fn deregister_consumer(&self, node: u32) {
        let mut st = self.state.lock();
        if let Some(c) = st.consumers.get_mut(&node) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                st.consumers.remove(&node);
            }
        }
        drop(st);
        // Messages that were reserved for this node are now up for grabs.
        self.cond.notify_all();
    }

    /// Select and remove the first deliverable message for `consumer`
    /// under the affinity rules. Runs under the queue lock; the scan
    /// skips at most `slack` waiting messages per live affine node, so
    /// it stays shallow even on deep queues.
    fn take(&self, st: &mut QueueState, consumer: Option<u32>) -> Option<Message> {
        let mut chosen: Option<(SelKey, bool)> = None;
        for (&key, m) in st.messages.iter() {
            let Some(affine) = m.affinity else {
                chosen = Some((key, false));
                break;
            };
            if consumer == Some(affine) {
                chosen = Some((key, true));
                break;
            }
            let node_live = st.consumers.contains_key(&affine);
            let backlog = st.affine_depth.get(&affine).copied().unwrap_or(0);
            if !node_live || self.affinity_slack == 0 || backlog > self.affinity_slack {
                // Dead node, affinity disabled, or the affine node has
                // fallen behind its slack: steal to keep load balanced.
                chosen = Some((key, false));
                break;
            }
            // Leave it for the affine node's consumers.
        }
        let (key, hit) = chosen?;
        let m = st.messages.remove(&key).expect("chosen key present");
        st.note_dequeued(&m);
        if m.affinity.is_some() {
            if hit {
                self.affinity_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.affinity_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some(m)
    }

    /// Blocking receive with timeout; `None` on timeout, close, or
    /// [`interrupt`](Self::interrupt). A returned message is *leased*:
    /// the consumer must call [`settle`](Self::settle) once it has
    /// finished with it (processed, crashed, or re-queued), or
    /// [`wait_idle`](Self::wait_idle) will never report idle.
    pub fn pop(&self, timeout: Duration) -> Option<Message> {
        self.pop_as(None, timeout)
    }

    /// [`pop`](Self::pop) for a consumer running on `node`: messages
    /// affine to `node` are preferred, messages affine to *other live*
    /// nodes are skipped while those nodes keep up.
    pub fn pop_for(&self, node: u32, timeout: Duration) -> Option<Message> {
        self.pop_as(Some(node), timeout)
    }

    fn pop_as(&self, consumer: Option<u32>, timeout: Duration) -> Option<Message> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        let epoch = st.interrupt_epoch;
        loop {
            if let Some(msg) = self.take(&mut st, consumer) {
                st.leased += 1;
                return Some(msg);
            }
            if st.closed || st.interrupt_epoch != epoch {
                return None;
            }
            if self.cond.wait_until(&mut st, deadline).timed_out() {
                return None;
            }
        }
    }

    /// Release the lease taken by [`pop`](Self::pop); wakes
    /// [`wait_idle`](Self::wait_idle) waiters when the queue quiesces.
    pub fn settle(&self) {
        let mut st = self.state.lock();
        st.leased = st.leased.saturating_sub(1);
        if st.leased == 0 && st.messages.is_empty() {
            drop(st);
            self.idle_cond.notify_all();
        }
    }

    /// Wake all blocked pops without closing the queue, so consumers
    /// re-check their control flags (stop/kill) immediately instead of
    /// waiting out the pop timeout.
    pub fn interrupt(&self) {
        self.state.lock().interrupt_epoch += 1;
        self.cond.notify_all();
    }

    /// Block until the queue is empty *and* every leased message has
    /// been settled, or `deadline` passes. Returns whether the queue is
    /// idle.
    pub fn wait_idle(&self, deadline: Instant) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.messages.is_empty() && st.leased == 0 {
                return true;
            }
            if self.idle_cond.wait_until(&mut st, deadline).timed_out() {
                return st.messages.is_empty() && st.leased == 0;
            }
        }
    }

    /// Non-blocking receive. Does *not* lease (intended for tests and
    /// single-threaded draining, not competing consumers).
    pub fn try_pop(&self) -> Option<Message> {
        let mut st = self.state.lock();
        self.take(&mut st, None)
    }

    /// Number of waiting messages.
    pub fn depth(&self) -> usize {
        self.state.lock().messages.len()
    }

    /// Number of popped-but-unsettled messages (outstanding leases).
    pub fn leased_count(&self) -> usize {
        self.state.lock().leased
    }

    /// Deliveries of affinity-stamped messages to their affine node vs
    /// elsewhere, as `(hits, misses)`.
    pub fn affinity_counts(&self) -> (u64, u64) {
        (
            self.affinity_hits.load(Ordering::Relaxed),
            self.affinity_misses.load(Ordering::Relaxed),
        )
    }

    /// Close: wake all receivers; subsequent pops drain then return
    /// `None`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(op: &str, prio: i32) -> Message {
        Message::new("s", op, vec![]).with_priority(prio)
    }

    #[test]
    fn fcfs_order() {
        let q = ServiceQueue::new(Policy::Fcfs);
        q.push(msg("a", 0));
        q.push(msg("b", 9));
        q.push(msg("c", 5));
        let order: Vec<String> = (0..3)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().operation)
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn priority_order() {
        let q = ServiceQueue::new(Policy::Priority);
        q.push(msg("low", 0));
        q.push(msg("high", 9));
        q.push(msg("mid", 5));
        q.push(msg("high2", 9));
        let order: Vec<String> = (0..4)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().operation)
            .collect();
        assert_eq!(order, vec!["high", "high2", "mid", "low"]);
    }

    #[test]
    fn edf_order() {
        let q = ServiceQueue::new(Policy::Edf);
        let now = Instant::now();
        q.push(msg("nodeadline", 0));
        q.push(msg("late", 0).with_deadline(now + Duration::from_secs(10)));
        q.push(msg("soon", 0).with_deadline(now + Duration::from_secs(1)));
        let order: Vec<String> = (0..3)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().operation)
            .collect();
        assert_eq!(order, vec!["soon", "late", "nodeadline"]);
    }

    #[test]
    fn deep_priority_queue_keeps_fcfs_within_priority() {
        // Exercises the ordered index well past any small-queue special
        // case: interleaved priorities, strict FCFS inside each.
        let q = ServiceQueue::new(Policy::Priority);
        for i in 0..500 {
            q.push(msg(&format!("m{}-p{}", i, i % 5), (i % 5) as i32));
        }
        let mut last_prio = i32::MAX;
        let mut last_index_in_prio = -1i64;
        for _ in 0..500 {
            let m = q.pop(Duration::from_millis(10)).unwrap();
            assert!(m.priority <= last_prio, "priority must not increase");
            let idx: i64 = m.operation[1..m.operation.find('-').unwrap()]
                .parse()
                .unwrap();
            if m.priority == last_prio {
                assert!(idx > last_index_in_prio, "FCFS within priority violated");
            }
            last_prio = m.priority;
            last_index_in_prio = idx;
        }
    }

    #[test]
    fn pop_times_out() {
        let q = ServiceQueue::new(Policy::Fcfs);
        assert!(q.pop(Duration::from_millis(20)).is_none());
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = std::sync::Arc::new(ServiceQueue::new(Policy::Fcfs));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(msg("x", 0));
        assert_eq!(h.join().unwrap().unwrap().operation, "x");
    }

    #[test]
    fn redelivery_goes_first_and_counts() {
        let q = ServiceQueue::new(Policy::Fcfs);
        q.push(msg("a", 0));
        let failed = msg("failed", 0);
        q.push_front(failed);
        let first = q.pop(Duration::from_millis(10)).unwrap();
        assert_eq!(first.operation, "failed");
        assert_eq!(first.redeliveries, 1);
    }

    #[test]
    fn wait_idle_waits_for_settle_not_just_empty() {
        let q = std::sync::Arc::new(ServiceQueue::new(Policy::Fcfs));
        q.push(msg("x", 0));
        let m = q.pop(Duration::from_millis(10)).unwrap();
        assert_eq!(m.operation, "x");
        // Queue is empty but the message is still leased.
        assert_eq!(q.depth(), 0);
        assert!(!q.wait_idle(Instant::now() + Duration::from_millis(30)));
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            q2.wait_idle(Instant::now() + Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(20));
        q.settle();
        assert!(h.join().unwrap());
    }

    #[test]
    fn interrupt_wakes_blocked_pop() {
        let q = std::sync::Arc::new(ServiceQueue::new(Policy::Fcfs));
        let q2 = q.clone();
        let started = Instant::now();
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.interrupt();
        assert!(h.join().unwrap().is_none());
        assert!(started.elapsed() < Duration::from_secs(5));
        // The queue still works afterwards.
        q.push(msg("y", 0));
        assert_eq!(q.pop(Duration::from_millis(10)).unwrap().operation, "y");
    }

    #[test]
    fn push_displaced_jumps_fcfs_order() {
        let q = ServiceQueue::new(Policy::Fcfs);
        q.push(msg("a", 0));
        q.push(msg("b", 0));
        q.push_displaced(msg("late", 0), 2);
        let order: Vec<String> = (0..3)
            .map(|_| q.pop(Duration::from_millis(10)).unwrap().operation)
            .collect();
        assert_eq!(order, vec!["late", "a", "b"]);
    }

    #[test]
    fn close_wakes_waiters() {
        let q = std::sync::Arc::new(ServiceQueue::new(Policy::Fcfs));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap().is_none());
    }

    // ---- affinity -------------------------------------------------------

    #[test]
    fn affine_consumer_gets_its_message_first() {
        let q = ServiceQueue::new(Policy::Fcfs);
        q.register_consumer(1);
        q.register_consumer(2);
        q.push(msg("for-2", 0).with_affinity(2));
        q.push(msg("anyone", 0));
        // Node 1 skips node 2's message (node 2 is live and within slack)
        // and takes the unstamped one behind it.
        assert_eq!(
            q.pop_for(1, Duration::from_millis(10)).unwrap().operation,
            "anyone"
        );
        assert_eq!(
            q.pop_for(2, Duration::from_millis(10)).unwrap().operation,
            "for-2"
        );
        assert_eq!(q.affinity_counts(), (1, 0));
    }

    #[test]
    fn dead_node_messages_are_released() {
        let q = ServiceQueue::new(Policy::Fcfs);
        q.register_consumer(1);
        q.register_consumer(2);
        q.push(msg("for-2", 0).with_affinity(2));
        q.deregister_consumer(2);
        // Node 2 died: node 1 must take the message (graceful fallback).
        assert_eq!(
            q.pop_for(1, Duration::from_millis(10)).unwrap().operation,
            "for-2"
        );
        assert_eq!(q.affinity_counts(), (0, 1));
    }

    #[test]
    fn backlogged_affine_node_gets_stolen_from() {
        let slack = 2;
        let q = ServiceQueue::with_affinity_slack(Policy::Fcfs, slack);
        q.register_consumer(1);
        q.register_consumer(2);
        for i in 0..4 {
            q.push(msg(&format!("m{i}"), 0).with_affinity(2));
        }
        // Backlog (4) exceeds slack (2): node 1 steals the head instead
        // of idling while node 2 churns through all four.
        assert_eq!(
            q.pop_for(1, Duration::from_millis(10)).unwrap().operation,
            "m0"
        );
        // Backlog is now 3, still over slack: another steal is allowed.
        assert_eq!(
            q.pop_for(1, Duration::from_millis(10)).unwrap().operation,
            "m1"
        );
        // Backlog 2 = slack: node 1 now leaves the rest for node 2.
        assert!(q.pop_for(1, Duration::from_millis(10)).is_none());
        assert_eq!(
            q.pop_for(2, Duration::from_millis(10)).unwrap().operation,
            "m2"
        );
        let (hits, misses) = q.affinity_counts();
        assert_eq!((hits, misses), (1, 2));
    }

    #[test]
    fn skipped_affine_message_does_not_block_waiting_affine_consumer() {
        let q = std::sync::Arc::new(ServiceQueue::new(Policy::Fcfs));
        q.register_consumer(1);
        q.register_consumer(2);
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop_for(2, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        // The push must wake node 2's consumer even if node 1's is also
        // blocked (notify_all semantics).
        let q1 = q.clone();
        let h1 = std::thread::spawn(move || q1.pop_for(1, Duration::from_millis(200)));
        q.push(msg("for-2", 0).with_affinity(2));
        assert_eq!(h.join().unwrap().unwrap().operation, "for-2");
        assert!(h1.join().unwrap().is_none(), "node 1 must not take it");
    }

    #[test]
    fn plain_pop_ignores_affinity_when_no_nodes_registered() {
        // Embedders that never register consumers see exactly the old
        // behavior, affinity stamps or not.
        let q = ServiceQueue::new(Policy::Fcfs);
        q.push(msg("a", 0).with_affinity(7));
        assert_eq!(q.pop(Duration::from_millis(10)).unwrap().operation, "a");
    }
}
