//! Lease-based failure detection and dead-letter quarantine.
//!
//! Every message an instance pops is recorded in a cluster-wide lease
//! table; instances heartbeat on every queue interaction. A background
//! reaper thread (one per cluster) watches the table: when a lease's
//! holder dies — or stops heartbeating for longer than the lease TTL —
//! the message is *reclaimed*: re-queued at the front with its
//! redelivery count bumped, after an exponential backoff derived from
//! that count. A message that exhausts its redelivery budget is not
//! re-queued again; it moves to the per-queue dead-letter store, where
//! registered observers (the Vinz supervisor) can translate it into a
//! terminal task failure.
//!
//! This replaces the old crash behaviour, where a dying instance pushed
//! its message back itself: a real crashed process cannot do that, and
//! the paper's §3.1 survivability claim rests on the *broker* noticing
//! the failure. The queue lease stays held during the whole detection +
//! backoff window, so `drain`/`wait_idle` still mean "nothing left in
//! flight".

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::message::Message;

/// Tunables for the lease reaper. Installed per cluster via
/// [`crate::Cluster::set_recovery`]; the defaults suit the test suites
/// (sub-second detection, generous budget).
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// How long a live instance may go without heartbeating before its
    /// leases are considered expired. Dead instances (crashed threads)
    /// are detected immediately, independent of this bound; the TTL
    /// only catches wedged-but-alive holders, so it defaults high.
    pub lease_ttl: Duration,
    /// Reaper scan cadence: the detection latency floor.
    pub scan_interval: Duration,
    /// Redeliveries allowed before a message is dead-lettered.
    pub redelivery_budget: u32,
    /// Base of the exponential reclaim backoff (doubled per
    /// redelivery already on the message).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for RecoveryConfig {
    fn default() -> RecoveryConfig {
        RecoveryConfig {
            lease_ttl: Duration::from_secs(30),
            scan_interval: Duration::from_millis(5),
            redelivery_budget: 16,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(250),
        }
    }
}

impl RecoveryConfig {
    /// Exponential backoff before the `n`-th redelivery, capped at
    /// [`backoff_max`](RecoveryConfig::backoff_max).
    pub fn backoff_for(&self, redeliveries: u32) -> Duration {
        let factor = 1u32.checked_shl(redeliveries.min(16)).unwrap_or(u32::MAX);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max)
    }
}

/// One outstanding lease: a message popped by an instance and not yet
/// settled. Keyed by broker message id in the cluster's lease table.
pub(crate) struct Lease {
    /// The leased message, kept so a crashed holder's copy can be
    /// re-queued verbatim (same broker id — idempotency keys survive).
    pub msg: Message,
    /// Destination service (names the queue to reclaim into).
    pub service: String,
    /// Holding instance.
    pub instance: u64,
}

/// A reclaimed message sitting out its backoff before re-queueing. The
/// queue lease stays held the whole time.
pub(crate) struct PendingReclaim {
    pub due: Instant,
    pub service: String,
    pub msg: Message,
}

/// A quarantined message: it exhausted its redelivery budget and will
/// never be delivered again.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The message, redelivery count included.
    pub msg: Message,
    /// The service whose queue it was quarantined from.
    pub service: String,
    /// Why it was quarantined.
    pub reason: String,
}

/// Monotonic recovery counters, mirrored into the metrics registry as
/// `bluebox_lease_reclaims_total` / `gozer_dead_letters_total`.
#[derive(Debug, Default)]
pub struct RecoveryStats {
    /// Leases reclaimed from dead or stale holders.
    pub reclaims: AtomicU64,
    /// Messages moved to the dead-letter store.
    pub dead_letters: AtomicU64,
}

impl RecoveryStats {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> RecoveryStatsSnapshot {
        RecoveryStatsSnapshot {
            reclaims: self.reclaims.load(Ordering::Relaxed),
            dead_letters: self.dead_letters.load(Ordering::Relaxed),
        }
    }
}

/// A copied-out view of [`RecoveryStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStatsSnapshot {
    /// See [`RecoveryStats::reclaims`].
    pub reclaims: u64,
    /// See [`RecoveryStats::dead_letters`].
    pub dead_letters: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = RecoveryConfig {
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(100),
            ..RecoveryConfig::default()
        };
        assert_eq!(cfg.backoff_for(0), Duration::from_millis(2));
        assert_eq!(cfg.backoff_for(1), Duration::from_millis(4));
        assert_eq!(cfg.backoff_for(3), Duration::from_millis(16));
        assert_eq!(cfg.backoff_for(10), Duration::from_millis(100));
        // No overflow at absurd counts.
        assert_eq!(cfg.backoff_for(u32::MAX), Duration::from_millis(100));
    }
}
