//! Messages and faults.

use std::collections::BTreeMap;
use std::time::Instant;

/// Where a service's reply (if any) should go.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyTo {
    /// Fire-and-forget: replies are dropped.
    Nowhere,
    /// A synchronous caller is blocked on this correlation id.
    Caller {
        /// Correlation id of the pending call.
        correlation: u64,
    },
    /// Deliver the reply as a *new request* to any instance of a service
    /// — the mechanism behind `ResumeFromCall` (§3.2): the response goes
    /// back to the message queue, not to the sending instance.
    Service {
        /// Target service.
        service: String,
        /// Target operation.
        operation: String,
        /// Correlation id copied into the reply's headers.
        correlation: u64,
    },
}

/// A queued message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Broker-assigned id.
    pub id: u64,
    /// Destination service.
    pub service: String,
    /// Destination operation.
    pub operation: String,
    /// String headers (correlation ids, fiber ids, ...).
    pub headers: BTreeMap<String, String>,
    /// Opaque payload (the embedder's serialized value).
    pub body: Vec<u8>,
    /// Larger is more urgent. `AwakeFiber` messages are sent low-priority
    /// per §5.
    pub priority: i32,
    /// Soft deadline used by the EDF scheduling policy (§5 future work).
    pub deadline: Option<Instant>,
    /// Where the handler's reply goes.
    pub reply_to: ReplyTo,
    /// Placement hint: the node whose fiber cache most likely holds this
    /// message's continuation (the node that last saved it). The queue
    /// *prefers* delivering to a consumer on this node but never requires
    /// it — see `ServiceQueue` for the slack/steal rules — so routing
    /// degrades to plain load balancing when the node is dead or behind.
    pub affinity: Option<u32>,
    /// Time the message entered the queue.
    pub enqueued_at: Instant,
    /// Number of times this delivery was re-queued after instance
    /// failure.
    pub redeliveries: u32,
    /// Speculative-persistence gate: the store watermark that must be
    /// durable before this message may be delivered (0 = no gate). Set
    /// by senders whose causally-preceding save got a deferred
    /// [`DurabilityTicket`]; the cluster parks the message until the
    /// commit watermark passes it.
    pub hold_until: u64,
    /// How long the message sat parked behind its `hold_until` gate, in
    /// nanoseconds; stamped by the broker on release. Queue-wait
    /// accounting subtracts it, so durability holds and genuine queue
    /// time are attributed to separate latency phases. Zero when the
    /// message never parked (synchronous stores).
    pub held_nanos: u64,
}

impl Message {
    /// Build a message; the broker assigns `id` and `enqueued_at` on
    /// send.
    pub fn new(service: &str, operation: &str, body: Vec<u8>) -> Message {
        Message {
            id: 0,
            service: service.to_string(),
            operation: operation.to_string(),
            headers: BTreeMap::new(),
            body,
            priority: 0,
            deadline: None,
            reply_to: ReplyTo::Nowhere,
            affinity: None,
            enqueued_at: Instant::now(),
            redeliveries: 0,
            hold_until: 0,
            held_nanos: 0,
        }
    }

    /// Builder: set the affinity placement hint.
    pub fn with_affinity(mut self, node: u32) -> Message {
        self.affinity = Some(node);
        self
    }

    /// Builder: gate delivery on a store watermark (speculative
    /// persistence — see the `hold_until` field).
    pub fn with_hold_until(mut self, watermark: u64) -> Message {
        self.hold_until = watermark;
        self
    }

    /// Builder: set a header.
    pub fn header(mut self, k: &str, v: impl Into<String>) -> Message {
        self.headers.insert(k.to_string(), v.into());
        self
    }

    /// Builder: set priority.
    pub fn with_priority(mut self, p: i32) -> Message {
        self.priority = p;
        self
    }

    /// Builder: set a deadline.
    pub fn with_deadline(mut self, d: Instant) -> Message {
        self.deadline = Some(d);
        self
    }

    /// Header accessor.
    pub fn get_header(&self, k: &str) -> Option<&str> {
        self.headers.get(k).map(String::as_str)
    }
}

/// A service fault: a QName-style code plus a message, which Vinz turns
/// into a Gozer condition (§3.7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// Designator, conventionally `{namespace}Code`.
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl Fault {
    /// Build a fault.
    pub fn new(code: &str, message: impl Into<String>) -> Fault {
        Fault {
            code: code.to_string(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let m = Message::new("svc", "Op", vec![1, 2])
            .header("k", "v")
            .with_priority(3);
        assert_eq!(m.get_header("k"), Some("v"));
        assert_eq!(m.priority, 3);
        assert_eq!(m.body, vec![1, 2]);
        assert_eq!(m.reply_to, ReplyTo::Nowhere);
    }

    #[test]
    fn fault_display() {
        let f = Fault::new("{urn:s}Connect", "refused");
        assert_eq!(f.to_string(), "{urn:s}Connect: refused");
    }
}
