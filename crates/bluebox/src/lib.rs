#![warn(missing_docs)]

//! # bluebox
//!
//! A faithful in-process simulation of the (proprietary) BlueBox
//! environment the Gozer platform runs on (paper §1): "a distributed,
//! message-passing cluster based on a service-oriented architecture.
//! Service instances communicate by placing XML messages on a message
//! queue which distributes the messages to available nodes."
//!
//! What the simulation preserves — the properties Vinz actually depends
//! on:
//!
//! * **Competing-consumer load balancing**: any live instance of a
//!   service may receive any message for it (which is why the fiber
//!   cache of §4.2 is "only somewhat effective").
//! * **At-least-once delivery**: instance failure before the ack
//!   re-queues the message; survivability (§3.2) falls out.
//! * **Priorities and pluggable scheduling** (FCFS / priority / EDF) for
//!   the §5 scheduling experiment.
//! * **Request slots**: an instance processes one message at a time, so
//!   a synchronous nested call wastes its slot — the motivation for
//!   non-blocking requests in §3.2.
//! * **Interface documents**: services publish WSDL-like descriptions
//!   that `deflink` (§3.3) fetches and compiles stubs from.
//!
//! Nodes are threads instead of machines; everything else is real
//! concurrent code, not discrete-event simulation.
//!
//! ```
//! use bluebox::{Cluster, Message};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let cluster = Cluster::new();
//! cluster.register_service("echo", None, Arc::new(
//!     |_ctx: &bluebox::ServiceCtx, msg: &Message| Ok(msg.body.clone())
//! ));
//! cluster.spawn_instances("echo", 0, 2);
//! let reply = cluster
//!     .call(Message::new("echo", "Echo", b"hi".to_vec()), Duration::from_secs(1))
//!     .unwrap();
//! assert_eq!(reply, b"hi");
//! cluster.shutdown();
//! ```

pub mod chaos;
pub mod cluster;
pub mod message;
pub mod metrics;
pub mod queue;
pub mod recovery;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use chaos::{
    ChaosConfig, ChaosPlan, ChaosRng, ChaosStats, ChaosStatsSnapshot, FaultAction, FaultPoint,
};
pub use cluster::{CallError, Cluster, CrashPoint, Handler, ServiceCtx};
pub use message::{Fault, Message, ReplyTo};
pub use metrics::{Metrics, MetricsSnapshot, TransportMetrics, TransportMetricsSnapshot};
pub use queue::{Policy, ServiceQueue};
pub use recovery::{DeadLetter, RecoveryConfig, RecoveryStats, RecoveryStatsSnapshot};
pub use tcp::{
    RemoteDelivery, RemoteHandler, TcpBroker, TcpBrokerConfig, TcpWorker, WorkerConfig,
    WorkerCtx, WorkerStats,
};
pub use transport::{InProcessTransport, Transport};
pub use wire::{FrameError, SettleBody, WireMsg, WirePayload, MAX_FRAME_LEN};
