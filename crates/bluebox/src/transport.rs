//! The transport seam: how service instances attach to the broker.
//!
//! [`Cluster`] routes every message through in-memory [`ServiceQueue`]s
//! regardless of where the consuming instance's *code* runs. What a
//! [`Transport`] decides is the instance side of the contract: when the
//! embedder asks for `count` instances of a service, the transport
//! either spawns them as threads in this process (the deterministic
//! fast path every chaos/recovery suite runs on) or represents remote
//! OS processes with local proxy instances that forward deliveries over
//! a socket (see [`crate::tcp::TcpBroker`]).
//!
//! The trait's observation hooks (`on_send` / `on_deliver` /
//! `on_reply`) fire on the broker's hot paths. They default to no-ops
//! so the in-process transport adds nothing to the paths the
//! deterministic suites time and assert on.

use std::sync::Arc;

use crate::cluster::Cluster;
use crate::message::Message;

/// Where and how service instances run. Installed on a [`Cluster`] via
/// [`Cluster::set_transport`]; the default is [`InProcessTransport`].
pub trait Transport: Send + Sync {
    /// Short transport name for health reports ("in-process", "tcp").
    fn name(&self) -> &str;

    /// Provide `count` instances of `service` on `node_id`, returning
    /// their broker instance ids.
    fn spawn_instances(
        &self,
        cluster: &Arc<Cluster>,
        service: &str,
        node_id: u32,
        count: usize,
    ) -> Vec<u64>;

    /// Liveness signal for health endpoints: is the transport still
    /// able to move messages (listener up, not shut down)?
    fn alive(&self) -> bool {
        true
    }

    /// Observation hook: a message was accepted by the broker (id
    /// assigned, before queueing/parking).
    fn on_send(&self, _msg: &Message) {}

    /// Observation hook: a message was handed to an instance.
    fn on_deliver(&self, _msg: &Message) {}

    /// Observation hook: a handler result was routed back.
    fn on_reply(&self, _msg: &Message) {}

    /// Tear down transport resources (listeners, connections, proxy
    /// threads). Called by [`Cluster::shutdown`] before instance
    /// threads are joined; must be idempotent.
    fn shutdown(&self) {}
}

/// The default transport: instances are threads inside this process,
/// driven by [`Cluster::spawn_local_instances`]. Deterministic-chaos
/// suites depend on this path staying exactly as it was before the
/// transport seam existed — it delegates and adds nothing.
pub struct InProcessTransport;

impl Transport for InProcessTransport {
    fn name(&self) -> &str {
        "in-process"
    }

    fn spawn_instances(
        &self,
        cluster: &Arc<Cluster>,
        service: &str,
        node_id: u32,
        count: usize,
    ) -> Vec<u64> {
        cluster.spawn_local_instances(service, node_id, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_transport_is_in_process() {
        let cluster = Cluster::new();
        assert_eq!(cluster.transport().name(), "in-process");
        assert!(cluster.transport().alive());
        cluster.register_service(
            "echo",
            None,
            Arc::new(|_: &crate::ServiceCtx, m: &Message| Ok(m.body.clone())),
        );
        // spawn_instances goes through the trait now; behavior holds.
        let ids = cluster.spawn_instances("echo", 0, 2);
        assert_eq!(ids.len(), 2);
        let reply = cluster
            .call(
                Message::new("echo", "Echo", b"hi".to_vec()),
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(reply, b"hi");
        cluster.shutdown();
    }
}
