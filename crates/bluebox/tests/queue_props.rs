//! Property tests for the service queue's scheduling policies: every
//! policy must deliver exactly the pushed multiset of messages, in the
//! order its discipline defines.

use std::time::{Duration, Instant};

use bluebox::{Message, Policy, ServiceQueue};
use proptest::prelude::*;

fn drain(q: &ServiceQueue) -> Vec<Message> {
    let mut out = Vec::new();
    while let Some(m) = q.try_pop() {
        out.push(m);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fcfs_preserves_arrival_order(ops in proptest::collection::vec(0u32..1000, 1..40)) {
        let q = ServiceQueue::new(Policy::Fcfs);
        for (i, _) in ops.iter().enumerate() {
            q.push(Message::new("s", &format!("m{i}"), vec![]));
        }
        let out = drain(&q);
        prop_assert_eq!(out.len(), ops.len());
        for (i, m) in out.iter().enumerate() {
            let expected = format!("m{i}");
            prop_assert_eq!(m.operation.as_str(), expected.as_str());
        }
    }

    #[test]
    fn priority_never_inverts(prios in proptest::collection::vec(-5i32..5, 1..40)) {
        let q = ServiceQueue::new(Policy::Priority);
        for (i, &p) in prios.iter().enumerate() {
            q.push(Message::new("s", &format!("m{i}"), vec![]).with_priority(p));
        }
        let out = drain(&q);
        prop_assert_eq!(out.len(), prios.len());
        // Non-increasing priority sequence.
        for w in out.windows(2) {
            prop_assert!(w[0].priority >= w[1].priority);
        }
        // FCFS within a priority level.
        for p in -5i32..5 {
            let idxs: Vec<usize> = out
                .iter()
                .filter(|m| m.priority == p)
                .map(|m| m.operation[1..].parse::<usize>().unwrap())
                .collect();
            let mut sorted = idxs.clone();
            sorted.sort_unstable();
            prop_assert_eq!(idxs, sorted, "priority {} not FCFS within level", p);
        }
    }

    #[test]
    fn edf_orders_by_deadline(offsets in proptest::collection::vec(proptest::option::of(1u64..10_000), 1..40)) {
        let q = ServiceQueue::new(Policy::Edf);
        let base = Instant::now() + Duration::from_secs(3600);
        for (i, off) in offsets.iter().enumerate() {
            let mut m = Message::new("s", &format!("m{i}"), vec![]);
            if let Some(ms) = off {
                m = m.with_deadline(base + Duration::from_millis(*ms));
            }
            q.push(m);
        }
        let out = drain(&q);
        prop_assert_eq!(out.len(), offsets.len());
        // All deadline-carrying messages come before deadline-free ones,
        // in non-decreasing deadline order.
        let first_none = out.iter().position(|m| m.deadline.is_none());
        if let Some(cut) = first_none {
            prop_assert!(out[cut..].iter().all(|m| m.deadline.is_none()));
        }
        for w in out.windows(2) {
            if let (Some(a), Some(b)) = (w[0].deadline, w[1].deadline) {
                prop_assert!(a <= b);
            }
        }
    }

    #[test]
    fn nothing_lost_or_duplicated_under_any_policy(
        n in 1usize..60,
        policy_idx in 0usize..3,
    ) {
        let policy = [Policy::Fcfs, Policy::Priority, Policy::Edf][policy_idx];
        let q = ServiceQueue::new(policy);
        for i in 0..n {
            q.push(Message::new("s", &format!("m{i}"), vec![]).with_priority((i % 3) as i32));
        }
        let mut names: Vec<String> = drain(&q).into_iter().map(|m| m.operation).collect();
        names.sort();
        let mut expected: Vec<String> = (0..n).map(|i| format!("m{i}")).collect();
        expected.sort();
        prop_assert_eq!(names, expected);
    }
}

#[test]
fn concurrent_producers_consumers_preserve_messages() {
    use std::sync::Arc;
    let q = Arc::new(ServiceQueue::new(Policy::Fcfs));
    let producers: Vec<_> = (0..4)
        .map(|t| {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..250 {
                    q.push(Message::new("s", &format!("p{t}-{i}"), vec![]));
                }
            })
        })
        .collect();
    let consumed = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let consumers: Vec<_> = (0..4)
        .map(|_| {
            let q = q.clone();
            let consumed = consumed.clone();
            std::thread::spawn(move || loop {
                match q.pop(Duration::from_millis(100)) {
                    Some(m) => consumed.lock().push(m.operation),
                    None => break,
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    for c in consumers {
        c.join().unwrap();
    }
    let mut got = consumed.lock().clone();
    got.sort();
    let mut expected: Vec<String> = (0..4)
        .flat_map(|t| (0..250).map(move |i| format!("p{t}-{i}")))
        .collect();
    expected.sort();
    assert_eq!(got, expected);
}
