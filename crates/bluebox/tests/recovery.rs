//! Integration tests for the lease-based recovery layer: a crashed
//! instance abandons its message; the reaper notices the dead holder,
//! reclaims the lease, and re-queues the message for survivors — or
//! quarantines it once the redelivery budget runs out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bluebox::{ChaosConfig, ChaosPlan, Cluster, CrashPoint, Message, RecoveryConfig, ServiceCtx};

#[test]
fn reaper_reclaims_lease_without_any_survivor_present() {
    // The old crash path had the dying instance push its message back
    // itself. Now the *broker* must notice: kill the only instance,
    // then spawn the survivor and watch the reclaim counter.
    let cluster = Cluster::new();
    let processed = Arc::new(AtomicU64::new(0));
    let p2 = processed.clone();
    cluster.register_service(
        "leased",
        None,
        Arc::new(move |_: &ServiceCtx, _: &Message| {
            p2.fetch_add(1, Ordering::SeqCst);
            Ok(vec![])
        }),
    );
    let ids = cluster.spawn_instances("leased", 0, 1);
    cluster.kill_instance(ids[0], CrashPoint::BeforeProcess);
    cluster.send(Message::new("leased", "Op", vec![]));
    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.live_instances("leased") > 0 {
        assert!(Instant::now() < deadline, "doomed instance never crashed");
        std::thread::sleep(Duration::from_millis(2));
    }
    // No survivor yet: the message sits leased (not lost, not settled).
    cluster.spawn_instances("leased", 1, 1);
    assert!(cluster.drain("leased", Duration::from_secs(10)));
    assert_eq!(processed.load(Ordering::SeqCst), 1);
    let stats = cluster.recovery_stats();
    assert!(stats.reclaims >= 1, "reaper must have reclaimed the lease");
    assert_eq!(stats.dead_letters, 0);
    cluster.shutdown();
}

#[test]
fn poison_message_dead_letters_after_redelivery_budget() {
    let cluster = Cluster::new();
    cluster.set_recovery(RecoveryConfig {
        redelivery_budget: 3,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        ..RecoveryConfig::default()
    });
    // Every delivery of "Poison" crashes its instance before the
    // handler runs; other operations are untouched.
    cluster.set_chaos(ChaosPlan::new(ChaosConfig::poison(7, "Poison")));
    let healthy = Arc::new(AtomicU64::new(0));
    let h2 = healthy.clone();
    cluster.register_service(
        "victim",
        None,
        Arc::new(move |_: &ServiceCtx, _: &Message| {
            h2.fetch_add(1, Ordering::SeqCst);
            Ok(vec![])
        }),
    );
    cluster.spawn_instances("victim", 0, 2);
    cluster.send(Message::new("victim", "Poison", vec![]));
    cluster.send(Message::new("victim", "Fine", vec![]));

    // Keep the service staffed while chaos eats instances, until the
    // poison message lands in quarantine.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut next_node = 1u32;
    while cluster.dead_letter_total() == 0 {
        assert!(Instant::now() < deadline, "message never dead-lettered");
        if cluster.live_instances("victim") == 0 {
            cluster.spawn_instances("victim", next_node, 2);
            next_node += 1;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cluster.drain("victim", Duration::from_secs(10)));
    let dead = cluster.dead_letters("victim");
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].msg.operation, "Poison");
    assert_eq!(dead[0].reason, "redelivery-budget");
    assert!(dead[0].msg.redeliveries >= 3, "budget was spent first");
    assert_eq!(healthy.load(Ordering::SeqCst), 1, "the healthy message got through");
    // The counter is mirrored into the metrics registry under the
    // paper-facing name.
    let text = cluster.obs().registry.render_text();
    assert!(
        text.contains("gozer_dead_letters_total"),
        "metrics export must carry the dead-letter counter:\n{text}"
    );
    cluster.shutdown();
}

#[test]
fn dead_letter_observers_fire_on_quarantine() {
    let cluster = Cluster::new();
    cluster.set_recovery(RecoveryConfig {
        redelivery_budget: 0,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(2),
        ..RecoveryConfig::default()
    });
    let seen: Arc<parking_lot::Mutex<Vec<(String, String)>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let s2 = seen.clone();
    cluster.on_dead_letter(move |dl| {
        s2.lock().push((dl.service.clone(), dl.msg.operation.clone()));
    });
    cluster.register_service(
        "oneshot",
        None,
        Arc::new(|_: &ServiceCtx, _: &Message| Ok(vec![])),
    );
    // Budget zero: the very first reclaim quarantines instead.
    let ids = cluster.spawn_instances("oneshot", 0, 1);
    cluster.kill_instance(ids[0], CrashPoint::BeforeProcess);
    cluster.send(Message::new("oneshot", "Doomed", vec![]));
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.dead_letter_total() == 0 {
        assert!(Instant::now() < deadline, "never quarantined");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cluster.drain("oneshot", Duration::from_secs(5)), "quarantine settles the lease");
    assert_eq!(seen.lock().as_slice(), &[("oneshot".to_string(), "Doomed".to_string())]);
    cluster.shutdown();
}

#[test]
fn send_after_delays_delivery() {
    let cluster = Cluster::new();
    let delivered_at: Arc<parking_lot::Mutex<Option<Instant>>> = Arc::new(parking_lot::Mutex::new(None));
    let d2 = delivered_at.clone();
    cluster.register_service(
        "later",
        None,
        Arc::new(move |_: &ServiceCtx, _: &Message| {
            *d2.lock() = Some(Instant::now());
            Ok(vec![])
        }),
    );
    cluster.spawn_instances("later", 0, 1);
    let start = Instant::now();
    cluster.send_after(Message::new("later", "Op", vec![]), Duration::from_millis(50));
    let deadline = Instant::now() + Duration::from_secs(5);
    while delivered_at.lock().is_none() {
        assert!(Instant::now() < deadline, "delayed send never arrived");
        std::thread::sleep(Duration::from_millis(2));
    }
    let at = delivered_at.lock().unwrap();
    assert!(
        at.duration_since(start) >= Duration::from_millis(45),
        "delivery should respect the delay, got {:?}",
        at.duration_since(start)
    );
    cluster.shutdown();
}

#[test]
fn reclaimed_message_keeps_id_and_bumps_redeliveries() {
    let cluster = Cluster::new();
    let seen: Arc<parking_lot::Mutex<Vec<(u64, u32)>>> = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let s2 = seen.clone();
    cluster.register_service(
        "idem",
        None,
        Arc::new(move |_: &ServiceCtx, msg: &Message| {
            s2.lock().push((msg.id, msg.redeliveries));
            Ok(vec![])
        }),
    );
    let ids = cluster.spawn_instances("idem", 0, 1);
    cluster.kill_instance(ids[0], CrashPoint::AfterProcess);
    cluster.send(Message::new("idem", "Op", vec![]));
    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.live_instances("idem") > 0 {
        assert!(Instant::now() < deadline, "instance never crashed");
        std::thread::sleep(Duration::from_millis(2));
    }
    cluster.spawn_instances("idem", 1, 1);
    assert!(cluster.drain("idem", Duration::from_secs(10)));
    let got = seen.lock();
    assert_eq!(got.len(), 2, "at-least-once: processed, crashed on ack, reclaimed");
    assert_eq!(got[0].0, got[1].0, "broker id (the idempotency key) survives reclaim");
    assert_eq!(got[0].1, 0);
    assert!(got[1].1 >= 1, "redelivery mark set on the reclaimed copy");
    cluster.shutdown();
}
