//! Integration tests for the simulated cluster: load balancing,
//! request/reply, service-routed replies, failure injection, metrics.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bluebox::{CallError, Cluster, CrashPoint, Fault, Message, ServiceCtx};
use parking_lot::Mutex;

#[test]
fn sync_call_round_trips() {
    let cluster = Cluster::new();
    cluster.register_service(
        "upper",
        None,
        Arc::new(|_: &ServiceCtx, msg: &Message| {
            Ok(String::from_utf8_lossy(&msg.body).to_uppercase().into_bytes())
        }),
    );
    cluster.spawn_instances("upper", 0, 1);
    let reply = cluster
        .call(Message::new("upper", "Up", b"abc".to_vec()), Duration::from_secs(2))
        .unwrap();
    assert_eq!(reply, b"ABC");
    cluster.shutdown();
}

#[test]
fn faults_propagate_to_callers() {
    let cluster = Cluster::new();
    cluster.register_service(
        "flaky",
        None,
        Arc::new(|_: &ServiceCtx, _: &Message| -> Result<Vec<u8>, Fault> {
            Err(Fault::new("{urn:svc}Connect", "connection refused"))
        }),
    );
    cluster.spawn_instances("flaky", 0, 1);
    let err = cluster
        .call(Message::new("flaky", "Op", vec![]), Duration::from_secs(2))
        .unwrap_err();
    match err {
        CallError::Fault(f) => assert_eq!(f.code, "{urn:svc}Connect"),
        other => panic!("expected fault, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn call_to_unstaffed_service_times_out() {
    let cluster = Cluster::new();
    let err = cluster
        .call(Message::new("nobody", "Op", vec![]), Duration::from_millis(100))
        .unwrap_err();
    assert_eq!(err, CallError::Timeout);
    cluster.shutdown();
}

#[test]
fn load_balances_across_instances() {
    let cluster = Cluster::new();
    let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let seen2 = seen.clone();
    cluster.register_service(
        "work",
        None,
        Arc::new(move |ctx: &ServiceCtx, _: &Message| {
            seen2.lock().insert(ctx.instance_id);
            std::thread::sleep(Duration::from_millis(5));
            Ok(vec![])
        }),
    );
    cluster.spawn_instances("work", 0, 4);
    for _ in 0..40 {
        cluster.send(Message::new("work", "Do", vec![]));
    }
    assert!(cluster.drain("work", Duration::from_secs(10)));
    assert!(
        seen.lock().len() >= 3,
        "work should spread across instances, saw {:?}",
        seen.lock()
    );
    cluster.shutdown();
}

#[test]
fn service_routed_reply_reaches_other_service() {
    // A -> B with reply routed to A's "Resume" operation (ResumeFromCall).
    let cluster = Cluster::new();
    let resumed: Arc<Mutex<Vec<(String, Vec<u8>)>>> = Arc::new(Mutex::new(Vec::new()));
    let resumed2 = resumed.clone();
    cluster.register_service(
        "a",
        None,
        Arc::new(move |_: &ServiceCtx, msg: &Message| {
            if msg.operation == "Resume" {
                resumed2.lock().push((
                    msg.get_header("correlation").unwrap_or("").to_string(),
                    msg.body.clone(),
                ));
            }
            Ok(vec![])
        }),
    );
    cluster.register_service(
        "b",
        None,
        Arc::new(|_: &ServiceCtx, msg: &Message| Ok([msg.body.as_slice(), b"!"].concat())),
    );
    cluster.spawn_instances("a", 0, 1);
    cluster.spawn_instances("b", 0, 1);
    let corr = cluster.send_with_service_reply(
        Message::new("b", "Shout", b"hey".to_vec()),
        "a",
        "Resume",
    );
    assert!(cluster.drain("b", Duration::from_secs(5)));
    assert!(cluster.drain("a", Duration::from_secs(5)));
    let got = resumed.lock();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, corr.to_string());
    assert_eq!(got[0].1, b"hey!");
    cluster.shutdown();
}

#[test]
fn crash_before_process_redelivers_to_survivor() {
    let cluster = Cluster::new();
    let processed = Arc::new(AtomicU64::new(0));
    let p2 = processed.clone();
    cluster.register_service(
        "resilient",
        None,
        Arc::new(move |_: &ServiceCtx, _: &Message| {
            p2.fetch_add(1, Ordering::SeqCst);
            Ok(vec![])
        }),
    );
    // Spawn ONLY a doomed instance first so the redelivery is
    // deterministic: it must take the first message and crash.
    let ids = cluster.spawn_instances("resilient", 0, 1);
    cluster.kill_instance(ids[0], CrashPoint::BeforeProcess);
    for _ in 0..10 {
        cluster.send(Message::new("resilient", "Op", vec![]));
    }
    // Wait for the doomed instance to die.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while cluster.live_instances("resilient") > 0 {
        assert!(std::time::Instant::now() < deadline, "instance never crashed");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(processed.load(Ordering::SeqCst), 0, "doomed instance processed nothing");
    // Survivor picks everything up, including the re-queued delivery.
    cluster.spawn_instances("resilient", 1, 1);
    assert!(cluster.drain("resilient", Duration::from_secs(10)));
    assert_eq!(processed.load(Ordering::SeqCst), 10, "all messages processed");
    let snap = cluster.metrics.snapshot();
    assert!(snap.redelivered >= 1, "the doomed delivery was redelivered");
    cluster.shutdown();
}

#[test]
fn crash_after_process_causes_duplicate_processing() {
    // At-least-once: a crash after processing but before the ack makes
    // the handler run twice — which is why Vinz fiber handlers are
    // guarded by locks and persisted state.
    let cluster = Cluster::new();
    let processed = Arc::new(AtomicU64::new(0));
    let p2 = processed.clone();
    cluster.register_service(
        "dup",
        None,
        Arc::new(move |_: &ServiceCtx, _: &Message| {
            p2.fetch_add(1, Ordering::SeqCst);
            Ok(vec![])
        }),
    );
    let ids = cluster.spawn_instances("dup", 0, 2);
    cluster.kill_instance(ids[0], CrashPoint::AfterProcess);
    cluster.send(Message::new("dup", "Op", vec![]));
    assert!(cluster.drain("dup", Duration::from_secs(10)));
    // Processed once by the doomed instance + once after redelivery, OR
    // just once if the healthy instance won the race.
    let n = processed.load(Ordering::SeqCst);
    assert!(n == 1 || n == 2, "got {n}");
    cluster.shutdown();
}

#[test]
fn after_process_redelivery_is_idempotent_when_keyed_by_message_id() {
    // The discipline Vinz's fiber handlers follow, distilled: an
    // AfterProcess crash means the work happened but the ack didn't, so
    // the broker *must* redeliver — and a handler that keys its effect
    // by message id applies it exactly once anyway.
    let cluster = Cluster::new();
    let invocations = Arc::new(AtomicU64::new(0));
    let effects: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let redelivered_seen = Arc::new(AtomicU64::new(0));
    let (inv, eff, red) = (invocations.clone(), effects.clone(), redelivered_seen.clone());
    cluster.register_service(
        "ledger",
        None,
        Arc::new(move |_: &ServiceCtx, msg: &Message| {
            inv.fetch_add(1, Ordering::SeqCst);
            if msg.redeliveries > 0 {
                red.fetch_add(1, Ordering::SeqCst);
            }
            // The idempotency key: redelivery re-presents the same
            // broker id, so the effect set ignores the second pass.
            eff.lock().insert(msg.id);
            Ok(vec![])
        }),
    );
    // Only the doomed instance exists at first, so it must take the
    // message, process it, and crash before acknowledging.
    let ids = cluster.spawn_instances("ledger", 0, 1);
    cluster.kill_instance(ids[0], CrashPoint::AfterProcess);
    cluster.send(Message::new("ledger", "Credit", vec![]));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while cluster.live_instances("ledger") > 0 {
        assert!(std::time::Instant::now() < deadline, "instance never crashed");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Survivor receives the redelivery of the already-processed message.
    cluster.spawn_instances("ledger", 1, 1);
    assert!(cluster.drain("ledger", Duration::from_secs(10)));
    assert_eq!(
        invocations.load(Ordering::SeqCst),
        2,
        "handler must observe the at-least-once duplicate"
    );
    assert_eq!(
        redelivered_seen.load(Ordering::SeqCst),
        1,
        "second delivery must carry the redelivery mark"
    );
    assert_eq!(
        effects.lock().len(),
        1,
        "effect keyed by message id applies exactly once"
    );
    cluster.shutdown();
}

#[test]
fn nested_sync_call_occupies_slot() {
    // One instance of "outer" making a blocking nested call can't take
    // other work meanwhile (the §3.2 waste).
    let cluster = Cluster::new();
    cluster.register_service(
        "inner",
        None,
        Arc::new(|_: &ServiceCtx, _: &Message| {
            std::thread::sleep(Duration::from_millis(60));
            Ok(vec![])
        }),
    );
    cluster.register_service(
        "outer",
        None,
        Arc::new(|ctx: &ServiceCtx, _: &Message| {
            ctx.cluster
                .call(Message::new("inner", "Slow", vec![]), Duration::from_secs(5))
                .map_err(|e| Fault::new("nested", e.to_string()))?;
            Ok(vec![])
        }),
    );
    cluster.spawn_instances("inner", 0, 1);
    cluster.spawn_instances("outer", 0, 1);
    cluster.send(Message::new("outer", "Op", vec![]));
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(cluster.busy_instances("outer"), 1, "slot held while blocked");
    assert!(cluster.drain("outer", Duration::from_secs(5)));
    let snap = cluster.metrics.snapshot();
    assert!(
        snap.sync_block_nanos > Duration::from_millis(40).as_nanos() as u64,
        "blocked time recorded: {}ns",
        snap.sync_block_nanos
    );
    cluster.shutdown();
}

#[test]
fn metrics_count_throughput() {
    let cluster = Cluster::new();
    cluster.register_service(
        "m",
        None,
        Arc::new(|_: &ServiceCtx, _: &Message| Ok(vec![])),
    );
    cluster.spawn_instances("m", 0, 2);
    for _ in 0..25 {
        cluster.send(Message::new("m", "Op", vec![]));
    }
    assert!(cluster.drain("m", Duration::from_secs(10)));
    let snap = cluster.metrics.snapshot();
    assert_eq!(snap.sent, 25);
    assert_eq!(snap.completed, 25);
    assert!(snap.max_in_flight >= 1);
    cluster.shutdown();
}

#[test]
fn wsdl_registry_serves_descriptions() {
    use gozer_xml::ServiceDescription;
    let cluster = Cluster::new();
    let desc = ServiceDescription::new("SecurityManager", "urn:security-manager-service")
        .operation("ListSessions", "Lists sessions.", &[("FilterParams", "string")]);
    cluster.register_service(
        "SecurityManager",
        Some(desc.clone()),
        Arc::new(|_: &ServiceCtx, _: &Message| Ok(vec![])),
    );
    assert_eq!(cluster.wsdl("SecurityManager"), Some(desc));
    assert_eq!(cluster.wsdl("Nope"), None);
    cluster.shutdown();
}

#[test]
fn hold_until_parks_messages_until_watermark_commits() {
    let cluster = Cluster::new();
    let delivered = Arc::new(AtomicU64::new(0));
    let seen = delivered.clone();
    cluster.register_service(
        "gated",
        None,
        Arc::new(move |_: &ServiceCtx, _: &Message| {
            seen.fetch_add(1, Ordering::SeqCst);
            Ok(vec![])
        }),
    );
    cluster.spawn_instances("gated", 0, 1);

    // Probe: only watermarks <= the advancing commit point are durable.
    let committed = Arc::new(AtomicU64::new(0));
    let probe_point = committed.clone();
    cluster.set_durability_probe(move |w| probe_point.load(Ordering::SeqCst) >= w);

    // Ungated messages flow immediately.
    cluster.send(Message::new("gated", "Op", vec![]));
    assert!(cluster.drain("gated", Duration::from_secs(2)));
    assert_eq!(delivered.load(Ordering::SeqCst), 1);

    // A gated message parks until note_durable passes its watermark.
    cluster.send(Message::new("gated", "Op", vec![]).with_hold_until(7));
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(delivered.load(Ordering::SeqCst), 1, "must be held");
    assert_eq!(cluster.held_count(), 1);

    cluster.note_durable(3); // not far enough
    assert_eq!(cluster.held_count(), 1);
    committed.store(7, Ordering::SeqCst);
    cluster.note_durable(7);
    assert_eq!(cluster.held_count(), 0);
    assert!(cluster.drain("gated", Duration::from_secs(2)));
    assert_eq!(delivered.load(Ordering::SeqCst), 2);
    cluster.shutdown();
}

#[test]
fn reaper_releases_held_messages_as_safety_net() {
    let cluster = Cluster::new();
    let delivered = Arc::new(AtomicU64::new(0));
    let seen = delivered.clone();
    cluster.register_service(
        "gated2",
        None,
        Arc::new(move |_: &ServiceCtx, _: &Message| {
            seen.fetch_add(1, Ordering::SeqCst);
            Ok(vec![])
        }),
    );
    cluster.spawn_instances("gated2", 0, 1);
    let committed = Arc::new(AtomicU64::new(0));
    let probe_point = committed.clone();
    cluster.set_durability_probe(move |w| probe_point.load(Ordering::SeqCst) >= w);

    cluster.send(Message::new("gated2", "Op", vec![]).with_hold_until(1));
    assert_eq!(cluster.held_count(), 1);
    // Advance the commit point but "lose" the hook notification: the
    // reaper's periodic re-probe must still release the message.
    committed.store(1, Ordering::SeqCst);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while delivered.load(Ordering::SeqCst) == 0 {
        assert!(std::time::Instant::now() < deadline, "reaper never released");
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.shutdown();
}
