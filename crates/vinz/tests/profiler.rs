//! Profiler determinism under chaos, plus the flight-recorder contract.
//!
//! The profiler's counts must reflect the *workflow*, not the fault
//! schedule: chaos strikes only at message boundaries and every
//! redelivery is deduplicated by the phase guards before the VM is
//! entered, so two runs of the same seed must execute the exact same
//! opcodes and enter the exact same function frames. Timing (nanos)
//! naturally varies; counts must not.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

use bluebox::Cluster;
use gozer_lang::Value;
use gozer_obs::flight::dump_is_complete;
use vinz::testing::{
    chaos_seeds, install_flight_panic_hook, repro_command, run_workflow_under_chaos,
    run_workflow_under_chaos_flight, ChaosConfig, ChaosRun,
};
use vinz::WorkflowService;

/// Fork-free workflow: one suspension (sleep) and plenty of frame
/// entries. With no for-each, per-seed opcode totals are
/// schedule-independent — each fiber segment runs exactly once no
/// matter how messages are dropped, delayed, duplicated, or reordered.
const SEQ_WF: &str = "
(defun step-a (n) (if (< n 1) 0 (+ 1 (step-a (- n 1)))))
(defun step-b (n) (progn (sleep-millis 5) (* (step-a n) 2)))
(defun main (n) (+ (step-b n) (step-a n)))
";

/// Forking workflow with a *named* child function. The parent's resume
/// loop is schedule-dependent (how many children have finished per
/// wake varies), so opcode totals are not comparable — but each named
/// function body still runs exactly once per logical call, so per-defun
/// call counts are.
const FORK_WF: &str = "
(defun square (i) (* i i))
(defun main (n)
  (apply #'+ (for-each (i in (range n)) (square i))))
";

fn calls_by_name(run: &ChaosRun) -> BTreeMap<String, u64> {
    run.profile
        .functions
        .iter()
        .map(|(name, f)| (name.clone(), f.calls))
        .collect()
}

fn assert_serialize_cost_sampled(run: &ChaosRun) -> Result<(), String> {
    let s = &run.profile.serial;
    if s.serialize_count == 0 {
        return Err(format!(
            "seed {}: no continuation serialize-cost sample recorded",
            run.seed
        ));
    }
    match s.min_serialize_nanos {
        Some(n) if n > 0 => Ok(()),
        other => Err(format!(
            "seed {}: min serialize cost must be nonzero, got {other:?}",
            run.seed
        )),
    }
}

fn fail_sweep(test: &str, failures: Vec<String>) {
    if failures.is_empty() {
        return;
    }
    let repros: Vec<String> = failures
        .iter()
        .filter_map(|f| f.split(':').next())
        .filter_map(|s| s.strip_prefix("seed "))
        .filter_map(|s| s.trim().parse::<u64>().ok())
        .map(|seed| format!("    {}", repro_command("-p vinz --test profiler", test, seed)))
        .collect();
    panic!(
        "{} seed(s) failed:\n  {}\n  replay with:\n{}",
        failures.len(),
        failures.join("\n  "),
        repros.join("\n")
    );
}

/// Satellite: 16-seed sweep, two runs per seed, identical opcode counts
/// and function call counts — and every run records a nonzero
/// serialize-cost sample for its persisted continuations.
#[test]
fn profile_counts_are_schedule_independent_per_seed() {
    let mut failures = Vec::new();
    for &seed in &chaos_seeds(16) {
        let run = |attempt: u32| -> Result<ChaosRun, String> {
            let r = run_workflow_under_chaos(
                SEQ_WF,
                "main",
                vec![Value::Int(8)],
                ChaosConfig::turbulence(seed),
            )
            .map_err(|e| format!("seed {seed}: attempt {attempt}: {e}"))?;
            if r.value != Value::Int(24) {
                return Err(format!(
                    "seed {seed}: attempt {attempt}: wrong result {:?}",
                    r.value
                ));
            }
            Ok(r)
        };
        let (a, b) = match (run(1), run(2)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                failures.push(e);
                continue;
            }
        };
        if a.profile.opcodes != b.profile.opcodes {
            failures.push(format!(
                "seed {seed}: opcode counts differ across runs:\n    run1: {:?}\n    run2: {:?}",
                a.profile.opcodes, b.profile.opcodes
            ));
        }
        let (calls_a, calls_b) = (calls_by_name(&a), calls_by_name(&b));
        if calls_a != calls_b {
            failures.push(format!(
                "seed {seed}: function call counts differ across runs:\n    \
                 run1: {calls_a:?}\n    run2: {calls_b:?}"
            ));
        }
        // The workflow's shape pins the counts exactly — per task.
        // Turbulence can duplicate the client's Start itself, which
        // legitimately launches a second identical task (the same one
        // in both runs; the fault schedule keys on message content), so
        // scale by the number of main entries: step-a(8) runs from both
        // main and step-b → 2 × 9 recursive frames per task.
        let tasks = calls_a.get("main").copied().unwrap_or(0);
        if tasks == 0 {
            failures.push(format!("seed {seed}: no main frame profiled"));
        }
        for (name, per_task) in [("step-a", 18u64), ("step-b", 1)] {
            if calls_a.get(name) != Some(&(per_task * tasks)) {
                failures.push(format!(
                    "seed {seed}: expected {per_task}×{tasks} calls of {name}, got {:?}",
                    calls_a.get(name)
                ));
            }
        }
        for r in [&a, &b] {
            if let Err(e) = assert_serialize_cost_sampled(r) {
                failures.push(e);
            }
        }
    }
    fail_sweep("profile_counts_are_schedule_independent_per_seed", failures);
}

/// Forking workflows can't promise opcode-total equality (the parent's
/// wake-loop length is schedule-dependent), but named-function call
/// counts still must match across runs of one seed — and survive the
/// crash-heavy preset, where recovery replays from persisted
/// continuations without re-entering completed frames.
#[test]
fn fork_join_call_counts_stable_across_runs() {
    let mut failures = Vec::new();
    for &seed in &chaos_seeds(8) {
        let run = || {
            run_workflow_under_chaos(
                FORK_WF,
                "main",
                vec![Value::Int(6)],
                ChaosConfig::survivability(seed),
            )
        };
        let (a, b) = match (run(), run()) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                failures.push(e);
                continue;
            }
        };
        let (calls_a, calls_b) = (calls_by_name(&a), calls_by_name(&b));
        for name in ["square", "main"] {
            if calls_a.get(name) != calls_b.get(name) {
                failures.push(format!(
                    "seed {seed}: {name} call count differs: {:?} vs {:?}",
                    calls_a.get(name),
                    calls_b.get(name)
                ));
            }
        }
        // One square frame per forked child, regardless of faults.
        if calls_a.get("square") != Some(&6) {
            failures.push(format!(
                "seed {seed}: expected 6 calls of square, got {:?}",
                calls_a.get("square")
            ));
        }
        for r in [&a, &b] {
            if let Err(e) = assert_serialize_cost_sampled(r) {
                failures.push(e);
            }
        }
    }
    fail_sweep("fork_join_call_counts_stable_across_runs", failures);
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gozer-flight-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Acceptance criterion: a deliberately failing seed leaves a complete
/// flight dump behind — one from the task-failure path inside
/// `drive_fiber`, one from the harness's contract-violation path, each
/// with events, timelines, metrics, and the profile.
#[test]
fn failing_seed_leaves_complete_flight_dumps() {
    let base = scratch_dir("fail");
    let err = run_workflow_under_chaos_flight(
        "(defun main () (error \"deliberate failure\"))",
        "main",
        vec![],
        ChaosConfig::off(1),
        Some(base.clone()),
    )
    .expect_err("the workflow must fail");
    assert!(
        err.contains("flight dump: "),
        "violation message should point at the dump: {err}"
    );
    let dumps: Vec<PathBuf> = std::fs::read_dir(&base)
        .expect("flight base directory exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert!(
        dumps.len() >= 2,
        "expected task-failure and violation dumps, found {dumps:?}"
    );
    for dump in &dumps {
        assert!(
            dump_is_complete(dump, true),
            "incomplete flight dump at {}",
            dump.display()
        );
    }
    let labels: Vec<String> = dumps
        .iter()
        .filter_map(|d| d.file_name().map(|n| n.to_string_lossy().into_owned()))
        .collect();
    assert!(labels.iter().any(|l| l.contains("failed")), "{labels:?}");
    assert!(labels.iter().any(|l| l.contains("chaos-seed-1")), "{labels:?}");
    let _ = std::fs::remove_dir_all(&base);
}

/// The panic hook dumps the black box for every armed deployment, then
/// defers to the previous hook (so the panic still reports normally).
#[test]
fn panic_hook_records_flight_dump() {
    let base = scratch_dir("panic");
    let cluster = Cluster::new();
    let wf = WorkflowService::builder(&cluster, "workflow")
        .source("(defun main () 1)")
        .instances(0, 1)
        .profiling(true)
        .deploy()
        .unwrap();
    let obs = wf.obs();
    obs.set_tracing(true);
    let v = wf.call("main", vec![], Duration::from_secs(30)).unwrap();
    assert_eq!(v, Value::Int(1));

    obs.flight().arm(&base);
    install_flight_panic_hook(&obs);
    let _ = std::panic::catch_unwind(|| panic!("deliberate panic for the flight recorder"));
    obs.flight().disarm();

    let dump = obs
        .flight()
        .last_dump()
        .expect("panic hook recorded a dump");
    assert!(dump_is_complete(&dump, true), "{}", dump.display());
    let reason = std::fs::read_to_string(dump.join("reason.txt")).unwrap();
    assert!(
        reason.contains("deliberate panic for the flight recorder"),
        "reason.txt should carry the panic message: {reason}"
    );
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}
