//! End-to-end distributed workflow tests: the full paper pipeline of
//! Start → RunFiber → fork → yield → persist → AwakeFiber → resume,
//! across multiple simulated nodes.

use std::sync::Arc;
use std::time::Duration;

use bluebox::Cluster;
use gozer_lang::Value;
use vinz::{TaskStatus, VinzConfig, WorkflowService};

fn deploy(cluster: &Arc<Cluster>, source: &str) -> WorkflowService {
    deploy_cfg(cluster, source, VinzConfig::default())
}

fn deploy_cfg(cluster: &Arc<Cluster>, source: &str, config: VinzConfig) -> WorkflowService {
    // Two nodes, two instances each: enough for cross-node migration.
    WorkflowService::builder(cluster, "wf")
        .source(source)
        .config(config)
        .instances(0, 2)
        .instances(1, 2)
        .deploy()
        .unwrap()
}

const TIMEOUT: Duration = Duration::from_secs(60);

#[test]
fn dist_sum_squares_matches_listing_1() {
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun dist-sum-squares (numbers)
           (apply #'+
                  (for-each (number in numbers)
                    (* number number))))",
    );
    let numbers: Vec<Value> = (1..=10).map(Value::Int).collect();
    let result = wf
        .call("dist-sum-squares", vec![Value::list(numbers)], TIMEOUT)
        .unwrap();
    assert_eq!(result, Value::Int(385));
    // 1 root fiber + 10 children.
    let rec = wf.obs().tracker().all().pop().unwrap();
    assert_eq!(rec.fibers_created, 11);
    cluster.shutdown();
}

#[test]
fn spawn_limit_bounds_outstanding_children() {
    let cluster = Cluster::new();
    let mut config = VinzConfig::default();
    config.spawn_limit = 3;
    let wf = deploy_cfg(
        &cluster,
        "(defun main (n)
           (for-each (i in (range n)) (* i 10)))",
        config,
    );
    let result = wf.call("main", vec![Value::Int(5)], TIMEOUT).unwrap();
    assert_eq!(
        result,
        Value::list((0..5).map(|i| Value::Int(i * 10)).collect())
    );
    cluster.shutdown();
}

#[test]
fn nested_for_each() {
    // "This type of distribution may be nested to an arbitrary depth"
    // (§3.1).
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main ()
           (for-each (i in (range 3))
             (apply #'+ (for-each (j in (range 3)) (* i j)))))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    // i=0: 0, i=1: 0+1+2=3, i=2: 0+2+4=6
    assert_eq!(
        result,
        Value::list(vec![Value::Int(0), Value::Int(3), Value::Int(6)])
    );
    cluster.shutdown();
}

#[test]
fn parallel_macro_runs_forms_in_fibers() {
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main ()
           (parallel (+ 1 1) (* 2 2) (- 9 1)))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(
        result,
        Value::list(vec![Value::Int(2), Value::Int(4), Value::Int(8)])
    );
    cluster.shutdown();
}

#[test]
fn fork_and_exec_with_join_process() {
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun worker (x) (* x 100))
         (defun main ()
           (let ((pid (fork-and-exec #'worker :argument 7)))
             (join-process pid)))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(result, Value::Int(700));
    cluster.shutdown();
}

#[test]
fn task_variables_share_state_across_fibers() {
    // Listing 4: a global exit flag visible to every fiber of the task.
    // With -1 first and a spawn limit of 1 the children run serially, so
    // every child after the -1 sees the flag and returns nil. The -1
    // child itself returns t (the value of the setf), as in the paper's
    // listing.
    let cluster = Cluster::new();
    let mut config = VinzConfig::default();
    config.spawn_limit = 1;
    let wf = deploy_cfg(
        &cluster,
        "(deftaskvar exit-flag \"When this becomes true, stop.\")
         (defun dist-sum-squares (numbers)
           (for-each (number in numbers)
             (unless ^exit-flag^
               (if (= -1 number)
                   (setf ^exit-flag^ t)
                   (* number number)))))",
        config,
    );
    let mut numbers = vec![Value::Int(-1)];
    numbers.extend((1..=4).map(Value::Int));
    let result = wf
        .call("dist-sum-squares", vec![Value::list(numbers)], TIMEOUT)
        .unwrap();
    assert_eq!(
        result,
        Value::list(vec![
            Value::Bool(true),
            Value::Nil,
            Value::Nil,
            Value::Nil,
            Value::Nil
        ])
    );
    cluster.shutdown();
}

#[test]
fn terminate_stops_a_running_task() {
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        // A workflow that would spin forever across yields.
        "(defun main ()
           (let ((acc 0))
             (dotimes (i 1000000)
               (setq acc (+ acc (first (for-each (x in (list i)) x)))))
             acc))",
    );
    let task = wf.start("main", vec![], None).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    wf.terminate(&task);
    let rec = wf.wait(&task, TIMEOUT).expect("terminates promptly");
    assert!(matches!(rec.status, TaskStatus::Terminated(_)));
    cluster.shutdown();
}

#[test]
fn unhandled_error_fails_the_task() {
    let cluster = Cluster::new();
    let wf = deploy(&cluster, "(defun main () (error \"workflow exploded\"))");
    let task = wf.start("main", vec![], None).unwrap();
    let rec = wf.wait(&task, TIMEOUT).unwrap();
    match rec.status {
        TaskStatus::Failed(c) => assert!(c.message().contains("workflow exploded")),
        other => panic!("expected failure, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn break_action_terminates_only_the_fiber() {
    // break: the fiber returns nil to its parent; other fibers are
    // unaffected (§3.7).
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main ()
           (for-each (i in (list 1 2 3))
             (if (= i 2) (break-fiber) (* i 10))))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(
        result,
        Value::list(vec![Value::Int(10), Value::Nil, Value::Int(30)])
    );
    cluster.shutdown();
}

#[test]
fn terminate_action_kills_the_whole_task() {
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main ()
           (for-each (i in (list 1 2 3))
             (if (= i 2) (terminate-task \"fatal input\") (* i 10))))",
    );
    let task = wf.start("main", vec![], None).unwrap();
    let rec = wf.wait(&task, TIMEOUT).unwrap();
    assert!(matches!(rec.status, TaskStatus::Terminated(_)));
    cluster.shutdown();
}

#[test]
fn multiple_tasks_run_concurrently() {
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main (base)
           (apply #'+ (for-each (i in (range 4)) (+ base i))))",
    );
    let tasks: Vec<String> = (0..5)
        .map(|k| wf.start("main", vec![Value::Int(k * 100)], None).unwrap())
        .collect();
    for (k, task) in tasks.iter().enumerate() {
        let rec = wf.wait(task, TIMEOUT).unwrap();
        let expected = (0..4).map(|i| k as i64 * 100 + i).sum::<i64>();
        assert_eq!(rec.status, TaskStatus::Completed(Value::Int(expected)));
    }
    cluster.shutdown();
}

#[test]
fn fibers_run_on_multiple_nodes() {
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main ()
           (for-each (i in (range 16)) (progn (sleep-millis 3) (* i i))))",
    );
    let obs = wf.obs();
    obs.set_tracing(true);
    wf.call("main", vec![], TIMEOUT).unwrap();
    let nodes: std::collections::HashSet<u32> = obs
        .trace_view()
        .events()
        .iter()
        .filter(|e| matches!(e.kind, vinz::TraceKind::RunFiber))
        .map(|e| e.node)
        .collect();
    assert!(
        nodes.len() >= 2,
        "fibers should be load-balanced across nodes, saw {nodes:?}"
    );
    cluster.shutdown();
}

#[test]
fn workflow_survives_instance_failure() {
    // §3.2: "the failure of any instance will result in only minimal
    // delays as other instances automatically compensate."
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main ()
           (apply #'+ (for-each (i in (range 12)) (* i i))))",
    );
    let task = wf.start("main", vec![], None).unwrap();
    // Crash node 0 (both instances) almost immediately.
    std::thread::sleep(Duration::from_millis(20));
    cluster.kill_node(0, bluebox::CrashPoint::BeforeProcess);
    let rec = wf.wait(&task, TIMEOUT).expect("task survives the crash");
    assert_eq!(
        rec.status,
        TaskStatus::Completed(Value::Int((0..12).map(|i| i * i).sum()))
    );
    cluster.shutdown();
}

#[test]
fn local_futures_inside_distributed_fibers() {
    // chunked for-each: distributed chunks, local futures within each
    // chunk (§3.5).
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main (n)
           (apply #'+ (for-each (i in (range n) :chunk-size 4) (* i i))))",
    );
    let result = wf.call("main", vec![Value::Int(10)], TIMEOUT).unwrap();
    assert_eq!(result, Value::Int((0..10).map(|i| i * i).sum()));
    cluster.shutdown();
}

#[test]
fn run_and_status_api() {
    let cluster = Cluster::new();
    let wf = deploy(&cluster, "(defun main () :done)");
    let rec = wf.run("main", vec![], TIMEOUT).unwrap();
    assert_eq!(rec.status, TaskStatus::Completed(Value::keyword("done")));
    assert!(wf.status(&rec.id).unwrap().is_final());
    cluster.shutdown();
}

#[test]
fn figure1_event_sequence_is_ordered() {
    // The Figure 1 lifetime: events must appear in causal order for a
    // single-fiber workflow with one suspension.
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main ()
           (let ((pid (fork-and-exec (lambda () 5))))
             (+ 1 (join-process pid))))",
    );
    let obs = wf.obs();
    obs.set_tracing(true);
    let v = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(v, Value::Int(6));
    let events = obs.trace_view().events();
    let root = "task-1/f0";
    let pos = |pred: &dyn Fn(&vinz::TraceKind) -> bool| {
        events
            .iter()
            .position(|e| e.fiber == root && pred(&e.kind))
    };
    use vinz::TraceKind;
    let start = pos(&|k| matches!(k, TraceKind::Start)).expect("Start");
    let run = pos(&|k| matches!(k, TraceKind::RunFiber)).expect("RunFiber");
    let fork = pos(&|k| matches!(k, TraceKind::Fork(_))).expect("Fork");
    let yielded = pos(&|k| matches!(k, TraceKind::Yield(_))).expect("Yield");
    let resumed = pos(&|k| matches!(k, TraceKind::Resume(_))).expect("Resume");
    let done = pos(&|k| matches!(k, TraceKind::FiberDone)).expect("FiberDone");
    let task_done = pos(&|k| matches!(k, TraceKind::TaskDone(_))).expect("TaskDone");
    assert!(start < run, "Start before RunFiber");
    assert!(run < fork, "RunFiber before Fork");
    assert!(fork < yielded, "Fork before the join Yield");
    assert!(yielded < resumed, "Yield before Resume");
    assert!(resumed < done, "Resume before FiberDone");
    assert!(done <= task_done, "FiberDone before TaskDone");
    cluster.shutdown();
}

#[test]
fn persistence_metrics_account_for_suspensions() {
    let cluster = Cluster::new();
    let wf = deploy(
        &cluster,
        "(defun main () (for-each (i in (range 4)) i))",
    );
    wf.call("main", vec![], TIMEOUT).unwrap();
    use std::sync::atomic::Ordering;
    let obs = wf.obs();
    let m = obs.counters();
    // Persists: 1 initial (root) + 4 children initial + 4 parent
    // suspensions (one per child yield) = 9.
    assert_eq!(m.persist_count.load(Ordering::Relaxed), 9);
    assert!(m.persist_bytes.load(Ordering::Relaxed) > 0);
    // Resumes: 4 awakes.
    assert_eq!(m.resumes.load(Ordering::Relaxed), 4);
    // RunFiber executions: 1 root + 4 children.
    assert_eq!(m.fibers_run.load(Ordering::Relaxed), 5);
    cluster.shutdown();
}
