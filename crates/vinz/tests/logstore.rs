//! LogStore crash-recovery suite: the log-structured backend must give
//! back exactly the durable prefix of history after any crash shape —
//! torn tail appends, half-written group-commit batches, kills between
//! segment rotations — and a workflow deployed on it must be
//! indistinguishable (same results, same opcode counts) from one on the
//! always-durable in-memory store, under the same chaos schedule.

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::path::PathBuf;
use std::sync::Arc;

use gozer_lang::Value;
use vinz::testing::{
    chaos_seeds, repro_command, run_workflow_under_chaos_store, ChaosConfig, ChaosRun,
};
use vinz::{LogStore, StateStore, VinzConfig};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gozer-logstore-it-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// Path of partition `p`'s segment `seg` (mirrors the store's layout).
fn seg_path(dir: &std::path::Path, p: u32, seg: u64) -> PathBuf {
    dir.join(format!("p{p}")).join(format!("seg-{seg:010}.log"))
}

/// Highest-numbered segment file in partition `p`.
fn tail_segment(dir: &std::path::Path, p: u32) -> PathBuf {
    let mut segs: Vec<u64> = std::fs::read_dir(dir.join(format!("p{p}")))
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            name.strip_prefix("seg-")?
                .strip_suffix(".log")?
                .parse()
                .ok()
        })
        .collect();
    segs.sort_unstable();
    seg_path(dir, p, *segs.last().expect("partition has segments"))
}

/// Crash shape 1: the machine dies mid-append, leaving a frame whose
/// bytes stop short. Recovery must truncate exactly the damaged suffix
/// and keep everything before it.
#[test]
fn torn_tail_keeps_durable_prefix() {
    let dir = temp_dir("torn");
    {
        let store = LogStore::builder(&dir).partitions(1).build().unwrap();
        store.put("fiber/a", b"first save").unwrap();
        store.put("fiber/b", b"second save").unwrap();
        store.flush().unwrap();
        store.simulate_crash();
    }
    // Tear the last record: chop bytes off the tail segment's end.
    let tail = tail_segment(&dir, 0);
    let len = std::fs::metadata(&tail).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&tail)
        .unwrap()
        .set_len(len - 4)
        .unwrap();

    let store = LogStore::builder(&dir).partitions(1).build().unwrap();
    // fiber/a's record is intact; fiber/b's was torn and is gone — the
    // durable prefix, nothing more, nothing less.
    assert_eq!(store.get("fiber/a").unwrap(), Some(b"first save".to_vec()));
    assert_eq!(store.get("fiber/b").unwrap(), None);
    // The store is fully writable after truncating the tear.
    store.put("fiber/b", b"rewritten").unwrap();
    store.flush().unwrap();
    assert_eq!(store.get("fiber/b").unwrap(), Some(b"rewritten".to_vec()));
    let _ = std::fs::remove_dir_all(dir);
}

/// Crash shape 2: a group-commit batch is one framed record, so a crash
/// that tears it must roll back the *whole* batch — recovery may never
/// surface the meta key without its data key or vice versa.
#[test]
fn partial_group_commit_batch_is_all_or_nothing() {
    let dir = temp_dir("partial-batch");
    {
        let store = LogStore::builder(&dir).partitions(1).build().unwrap();
        store
            .put_batch(&[("fiber/1", b"base snapshot"), ("fiber-v/1", b"v1")])
            .unwrap();
        store.flush().unwrap();
        store
            .put_batch(&[("fiber-d/1/0", b"delta zero"), ("fiber-v/1", b"v2")])
            .unwrap();
        store.flush().unwrap();
        store.simulate_crash();
    }
    // Tear into the second batch's record (both batches share the one
    // partition segment; the tear lands inside the last frame).
    let tail = tail_segment(&dir, 0);
    let len = std::fs::metadata(&tail).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&tail)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let store = LogStore::builder(&dir).partitions(1).build().unwrap();
    // Batch 1 survives whole.
    assert_eq!(
        store.get("fiber/1").unwrap(),
        Some(b"base snapshot".to_vec())
    );
    // Batch 2 vanishes whole: no delta, and the meta key rolled back to
    // batch 1's value — never a v2 meta naming an unwritten delta.
    assert_eq!(store.get("fiber-d/1/0").unwrap(), None);
    assert_eq!(store.get("fiber-v/1").unwrap(), Some(b"v1".to_vec()));
    let _ = std::fs::remove_dir_all(dir);
}

/// Crash shape 3: death between segment rotations. Tiny segments force
/// a rotation on nearly every record; the crash leaves a freshly
/// created tail segment holding only its magic (and, in the worst
/// case, a half-written magic). Recovery must stitch the full history
/// back together from the many small segments.
#[test]
fn kill_between_segment_rotations_recovers_all_segments() {
    let dir = temp_dir("rotation");
    let payload = vec![7u8; 100];
    {
        // 64-byte segments: every ~100-byte record rotates first.
        let store = LogStore::builder(&dir)
            .partitions(1)
            .segment_bytes(64)
            .build()
            .unwrap();
        for i in 0..12 {
            store.put(&format!("fiber/{i}"), &payload).unwrap();
        }
        store.flush().unwrap();
        store.simulate_crash();
    }
    // The crash happened just after a rotation created the next
    // segment: an empty file with only the magic, plus one where the
    // magic itself was half-written.
    let seg_dir = dir.join("p0");
    let next = 1 + std::fs::read_dir(&seg_dir)
        .unwrap()
        .filter_map(|e| {
            e.unwrap()
                .file_name()
                .to_string_lossy()
                .strip_prefix("seg-")?
                .strip_suffix(".log")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .unwrap();
    std::fs::write(seg_path(&dir, 0, next), b"GZLOG1\0\0").unwrap();
    std::fs::write(seg_path(&dir, 0, next + 1), b"GZL").unwrap();

    let store = LogStore::builder(&dir)
        .partitions(1)
        .segment_bytes(64)
        .build()
        .unwrap();
    for i in 0..12 {
        assert_eq!(
            store.get(&format!("fiber/{i}")).unwrap(),
            Some(payload.clone()),
            "fiber/{i} lost across rotation crash"
        );
    }
    // And the store keeps rotating happily after recovery.
    for i in 12..20 {
        store.put(&format!("fiber/{i}"), &payload).unwrap();
    }
    store.flush().unwrap();
    assert_eq!(store.get("fiber/19").unwrap(), Some(payload));
    let _ = std::fs::remove_dir_all(dir);
}

/// Mirror of the store's stable FNV-1a key → partition mapping (a
/// documented format property: a key's partition never changes).
fn partition_of(key: &str, nparts: u32) -> u32 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % nparts as u64) as u32
}

/// Crash shape 4: group commit fsyncs partitions one at a time, so a
/// power cut can durably land a *later* batch (in an already-synced
/// partition) while an earlier one is lost. The survivor may embed
/// state read speculatively from the lost write, so recovery must roll
/// back to the contiguous seq prefix — and scrub the rolled-back
/// records from disk, or fresh writes reusing their seqs would let the
/// next recovery resurrect them.
#[test]
fn torn_cross_partition_group_rolls_back_to_contiguous_prefix() {
    let dir = temp_dir("torn-group");
    let ka = (0..)
        .map(|i| format!("a/{i}"))
        .find(|k| partition_of(k, 2) == 0)
        .unwrap();
    let kb = (0..)
        .map(|i| format!("b/{i}"))
        .find(|k| partition_of(k, 2) == 1)
        .unwrap();
    {
        let store = LogStore::builder(&dir).partitions(2).build().unwrap();
        store.put(&ka, b"earlier write, lost in the cut").unwrap();
        store.flush().unwrap();
        store.put(&kb, b"later write, synced first").unwrap();
        store.flush().unwrap();
        store.simulate_crash();
    }
    // The power cut: partition 0's pages never reached the platter.
    // Wind its segment back to bare magic, erasing the earlier batch
    // while the later one survives in partition 1.
    let p0 = tail_segment(&dir, 0);
    OpenOptions::new()
        .write(true)
        .open(&p0)
        .unwrap()
        .set_len(8)
        .unwrap();

    let store = LogStore::builder(&dir).partitions(2).build().unwrap();
    assert_eq!(store.get(&ka).unwrap(), None);
    assert_eq!(
        store.get(&kb).unwrap(),
        None,
        "batch past the seq gap must roll back with it"
    );
    // New writes reuse the rolled-back seqs; that must be safe because
    // the zombie records were scrubbed from disk.
    store.put(&ka, b"rewritten").unwrap();
    store.flush().unwrap();
    drop(store);

    let store = LogStore::builder(&dir).partitions(2).build().unwrap();
    assert_eq!(store.get(&ka).unwrap(), Some(b"rewritten".to_vec()));
    assert_eq!(
        store.get(&kb).unwrap(),
        None,
        "rolled-back record resurrected by seq reuse"
    );
    let _ = std::fs::remove_dir_all(dir);
}

// ---- full-vs-log chaos equivalence ------------------------------------

fn calls_by_name(run: &ChaosRun) -> BTreeMap<String, u64> {
    run.profile
        .functions
        .iter()
        .map(|(name, f)| (name.clone(), f.calls))
        .collect()
}

fn fail_sweep(test: &str, failures: Vec<String>) {
    if failures.is_empty() {
        return;
    }
    let repros: Vec<String> = failures
        .iter()
        .filter_map(|f| f.split(':').next())
        .filter_map(|s| s.strip_prefix("seed "))
        .filter_map(|s| s.trim().parse::<u64>().ok())
        .map(|seed| {
            format!(
                "    {}",
                repro_command("-p vinz --test logstore", test, seed)
            )
        })
        .collect();
    panic!(
        "{} seed(s) failed:\n  {}\n  replay with:\n{}",
        failures.len(),
        failures.join("\n  "),
        repros.join("\n")
    );
}

/// Same shape as the delta-equivalence sweep (PR 5): three frames deep,
/// three sequential fork+joins in the leaf, all resumes deduplicated —
/// per-seed opcode totals are schedule-independent, so the two backends
/// must agree exactly.
const DEEP_SEQ_WF: &str = "
(defun triple (n) (* n 3))
(defun leaf (n)
  (+ (join-process (fork-and-exec #'triple :argument n))
     (join-process (fork-and-exec #'triple :argument n))
     (join-process (fork-and-exec #'triple :argument n))))
(defun mid (n) (+ 1 (leaf n)))
(defun main (n) (+ (mid n) 1))
";

/// 16 seeds under the turbulence preset: a deployment persisting to a
/// LogStore — group commit, speculative resume, held messages, the
/// whole protocol — must produce the same value and execute the same
/// opcodes as one on the default MemStore, seed for seed.
#[test]
fn log_store_is_opcode_identical_to_mem_store_sixteen_seeds() {
    let mut failures = Vec::new();
    let mut log_dirs = Vec::new();
    for &seed in &chaos_seeds(16) {
        let run = |store: Option<Arc<dyn StateStore>>, label: &str| -> Result<ChaosRun, String> {
            let r = run_workflow_under_chaos_store(
                DEEP_SEQ_WF,
                "main",
                vec![Value::Int(5)],
                ChaosConfig::turbulence(seed),
                VinzConfig::default(),
                store,
                None,
            )
            .map_err(|e| format!("seed {seed}: {label}: {e}"))?;
            if r.value != Value::Int(47) {
                return Err(format!("seed {seed}: {label}: wrong result {:?}", r.value));
            }
            Ok(r)
        };
        let dir = temp_dir(&format!("equiv-{seed}"));
        // Tiny segments + a real commit window so the sweep crosses
        // rotation, group-commit batching, and compaction constantly.
        let log: Arc<dyn StateStore> = Arc::new(
            LogStore::builder(&dir)
                .segment_bytes(16 * 1024)
                .build()
                .unwrap(),
        );
        log_dirs.push(dir);
        let (mem, log) = match (run(None, "mem"), run(Some(log), "log")) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                failures.push(e);
                continue;
            }
        };
        if mem.profile.opcodes != log.profile.opcodes {
            failures.push(format!(
                "seed {seed}: opcode counts diverge between store backends:\n    \
                 mem: {:?}\n    log: {:?}",
                mem.profile.opcodes, log.profile.opcodes
            ));
        }
        let (calls_mem, calls_log) = (calls_by_name(&mem), calls_by_name(&log));
        if calls_mem != calls_log {
            failures.push(format!(
                "seed {seed}: function call counts diverge:\n    mem: {calls_mem:?}\n    \
                 log: {calls_log:?}"
            ));
        }
    }
    for dir in log_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    fail_sweep("log_store_is_opcode_identical_to_mem_store_sixteen_seeds", failures);
}
