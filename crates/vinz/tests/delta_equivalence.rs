//! Full-vs-delta snapshot equivalence under deterministic chaos.
//!
//! Delta persistence is a pure encoding change: a fiber reconstituted
//! from base + delta chain must be bit-identical to one saved whole, so
//! two runs of the same `(workload, seed)` — one with delta snapshots
//! off, one with them on and an aggressive compaction cadence — must
//! produce the same final value and execute the exact same opcodes.
//! The survivability preset additionally kills nodes and crashes
//! instances, so the delta-side runs resume from delta chains after
//! node kills and across compaction boundaries, with chaos armed the
//! whole time.

use std::collections::BTreeMap;

use gozer_lang::Value;
use vinz::testing::{
    chaos_seeds, repro_command, run_workflow_under_chaos_vinz, ChaosConfig, ChaosRun,
};
use vinz::VinzConfig;

/// Three frames deep at every suspension (`main` → `mid` → `leaf`, all
/// non-tail), with three *sequential* fork+joins in the leaf: every
/// resume re-runs only the leaf frame, which is exactly the shape delta
/// snapshots exist for. Each `join-process` suspends on a unique child
/// id and `JoinProcess` resumes are deduplicated by target, so every
/// fiber segment runs exactly once no matter how messages are dropped,
/// duplicated, or reordered — per-seed opcode totals are
/// schedule-independent.
const DEEP_SEQ_WF: &str = "
(defun triple (n) (* n 3))
(defun leaf (n)
  (+ (join-process (fork-and-exec #'triple :argument n))
     (join-process (fork-and-exec #'triple :argument n))
     (join-process (fork-and-exec #'triple :argument n))))
(defun mid (n) (+ 1 (leaf n)))
(defun main (n) (+ (mid n) 1))
";

/// Parallel-forking variant: the parent suspends once per child
/// wake-up, so its repeated saves exercise the delta path (the sleeps
/// only add scheduling jitter — children never suspend). Parent
/// wake-loop lengths are schedule-dependent (so opcode totals are not
/// comparable), but named-function call counts are.
const DEEP_FORK_WF: &str = "
(defun inner (i) (progn (sleep-millis 2) (* i i)))
(defun square (i) (+ 0 (inner i)))
(defun main (n)
  (apply #'+ (for-each (i in (range n)) (square i))))
";

fn full_config() -> VinzConfig {
    VinzConfig {
        delta_snapshots: false,
        ..VinzConfig::default()
    }
}

fn delta_config() -> VinzConfig {
    VinzConfig {
        delta_snapshots: true,
        // Compact every other save so the sweep crosses compaction
        // boundaries many times per run, not just at the tail.
        compact_every: 2,
        ..VinzConfig::default()
    }
}

fn calls_by_name(run: &ChaosRun) -> BTreeMap<String, u64> {
    run.profile
        .functions
        .iter()
        .map(|(name, f)| (name.clone(), f.calls))
        .collect()
}

fn fail_sweep(test: &str, failures: Vec<String>) {
    if failures.is_empty() {
        return;
    }
    let repros: Vec<String> = failures
        .iter()
        .filter_map(|f| f.split(':').next())
        .filter_map(|s| s.strip_prefix("seed "))
        .filter_map(|s| s.trim().parse::<u64>().ok())
        .map(|seed| {
            format!(
                "    {}",
                repro_command("-p vinz --test delta_equivalence", test, seed)
            )
        })
        .collect();
    panic!(
        "{} seed(s) failed:\n  {}\n  replay with:\n{}",
        failures.len(),
        failures.join("\n  "),
        repros.join("\n")
    );
}

/// 16 seeds, turbulence preset (drops, delays, duplicates, reordering —
/// no crashes, so opcode totals are exactly comparable): the delta
/// deployment must match the full-snapshot deployment opcode for
/// opcode, and must actually take the delta path.
#[test]
fn delta_resume_is_opcode_identical_sixteen_seeds() {
    let mut failures = Vec::new();
    let mut total_delta_saves = 0u64;
    let mut total_persists = 0u64;
    for &seed in &chaos_seeds(16) {
        let run = |vinz: VinzConfig, label: &str| -> Result<ChaosRun, String> {
            let r = run_workflow_under_chaos_vinz(
                DEEP_SEQ_WF,
                "main",
                vec![Value::Int(5)],
                ChaosConfig::turbulence(seed),
                vinz,
                None,
            )
            .map_err(|e| format!("seed {seed}: {label}: {e}"))?;
            if r.value != Value::Int(47) {
                return Err(format!(
                    "seed {seed}: {label}: wrong result {:?}",
                    r.value
                ));
            }
            Ok(r)
        };
        let (full, delta) = match (run(full_config(), "full"), run(delta_config(), "delta")) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                failures.push(e);
                continue;
            }
        };
        if full.delta_saves != 0 {
            failures.push(format!(
                "seed {seed}: delta_snapshots=false still wrote {} deltas",
                full.delta_saves
            ));
        }
        total_delta_saves += delta.delta_saves;
        total_persists += delta.persists;
        if full.profile.opcodes != delta.profile.opcodes {
            failures.push(format!(
                "seed {seed}: opcode counts diverge between snapshot formats:\n    \
                 full:  {:?}\n    delta: {:?}",
                full.profile.opcodes, delta.profile.opcodes
            ));
        }
        let (calls_full, calls_delta) = (calls_by_name(&full), calls_by_name(&delta));
        if calls_full != calls_delta {
            failures.push(format!(
                "seed {seed}: function call counts diverge:\n    full:  {calls_full:?}\n    \
                 delta: {calls_delta:?}"
            ));
        }
    }
    // Three suspensions per fiber with two clean outer frames: the
    // sweep as a whole must exercise the delta path heavily, or the
    // equivalence above proved nothing.
    assert!(
        total_delta_saves > 0,
        "delta deployments never took the delta path ({total_persists} persists)"
    );
    eprintln!(
        "delta_resume_is_opcode_identical_sixteen_seeds: {total_delta_saves}/{total_persists} \
         saves were deltas"
    );
    fail_sweep("delta_resume_is_opcode_identical_sixteen_seeds", failures);
}

/// Survivability preset (instance crashes and node kills included): the
/// delta deployment must still complete every seed with the exact
/// fault-free value, resuming from base + delta chains on surviving
/// nodes, and per-function call counts must match the full-snapshot
/// deployment.
#[test]
fn delta_resume_survives_crashes_sixteen_seeds() {
    let mut failures = Vec::new();
    let mut total_delta_saves = 0u64;
    let expected = Value::Int((0..6).map(|i| i * i).sum());
    for &seed in &chaos_seeds(16) {
        let run = |vinz: VinzConfig, label: &str| -> Result<ChaosRun, String> {
            let r = run_workflow_under_chaos_vinz(
                DEEP_FORK_WF,
                "main",
                vec![Value::Int(6)],
                ChaosConfig::survivability(seed),
                vinz,
                None,
            )
            .map_err(|e| format!("seed {seed}: {label}: {e}"))?;
            if r.value != expected {
                return Err(format!(
                    "seed {seed}: {label}: wrong result {:?} (expected {expected:?})",
                    r.value
                ));
            }
            Ok(r)
        };
        let (full, delta) = match (run(full_config(), "full"), run(delta_config(), "delta")) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                failures.push(e);
                continue;
            }
        };
        total_delta_saves += delta.delta_saves;
        // Chaos can duplicate the client's Start (one extra identical
        // task), so compare counts scaled per main entry within each
        // run, then require agreement on the per-task shape.
        for r in [("full", &full), ("delta", &delta)] {
            let calls = calls_by_name(r.1);
            let tasks = calls.get("main").copied().unwrap_or(0);
            if tasks == 0 {
                failures.push(format!("seed {seed}: {}: no main frame profiled", r.0));
                continue;
            }
            for name in ["square", "inner"] {
                if calls.get(name) != Some(&(6 * tasks)) {
                    failures.push(format!(
                        "seed {seed}: {}: expected {} calls of {name}, got {:?}",
                        r.0,
                        6 * tasks,
                        calls.get(name)
                    ));
                }
            }
        }
    }
    assert!(
        total_delta_saves > 0,
        "survivability sweep never exercised the delta path"
    );
    eprintln!(
        "delta_resume_survives_crashes_sixteen_seeds: {total_delta_saves} delta saves across \
         the sweep"
    );
    fail_sweep("delta_resume_survives_crashes_sixteen_seeds", failures);
}
