//! Adversarial store-corruption tests: a node handed a corrupt
//! persisted continuation must fail the task through the dead-letter
//! path (PR 4), never wedge it, and corrupt auxiliary records (task-var
//! versions) must not panic instances.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bluebox::{Cluster, Message, RecoveryConfig};
use gozer_lang::Value;
use vinz::{MemStore, StateStore, SupervisorConfig, TaskStatus, VinzConfig, WorkflowService};

const HOLD_WF: &str = "(defun hold () (yield {:reason :hold}) :released)";

fn quiet_config() -> VinzConfig {
    VinzConfig {
        // Supervision off: the orphan scan would otherwise keep
        // re-sending resumes on its own schedule and blur the assertions
        // (the dead-letter observer installs regardless).
        supervision: SupervisorConfig {
            enabled: false,
            ..SupervisorConfig::default()
        },
        ..VinzConfig::default()
    }
}

fn wait_for_suspension(wf: &WorkflowService) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while wf
        .obs()
        .counters()
        .suspended_fibers
        .load(std::sync::atomic::Ordering::Relaxed)
        == 0
    {
        assert!(Instant::now() < deadline, "fiber never suspended");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn awake(cluster: &Arc<Cluster>, task: &str) {
    cluster.send(
        Message::new("wf", "AwakeFiber", Vec::new()).header("fiber-id", format!("{task}/f0")),
    );
}

/// A corrupt `fiber-v/` meta record (chain pointing at a generation
/// that does not exist) makes every resume fail; the failed deliveries
/// must spend the redelivery budget and dead-letter the task — a
/// terminal `Failed`, not a wedge.
#[test]
fn corrupt_fiber_chain_dead_letters_the_task() {
    let cluster = Cluster::new();
    cluster.set_recovery(RecoveryConfig {
        redelivery_budget: 3,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        ..RecoveryConfig::default()
    });
    let store = Arc::new(MemStore::new());
    let wf = WorkflowService::builder(&cluster, "wf")
        .source(HOLD_WF)
        .store(store.clone())
        .config(quiet_config())
        .instances(0, 2)
        .deploy()
        .unwrap();
    let task = wf.start("hold", vec![], None).unwrap();
    wait_for_suspension(&wf);

    // Corrupt the version chain: a version no cache holds and a
    // generation no base snapshot was ever written under.
    let mut garbage = [0u8; 24];
    garbage[0..8].copy_from_slice(&u64::MAX.to_le_bytes()); // version
    garbage[8..16].copy_from_slice(&777_777u64.to_le_bytes()); // generation
    store.put(&format!("fiber-v/{task}/f0"), &garbage).unwrap();

    awake(&cluster, &task);
    let rec = wf
        .wait(&task, Duration::from_secs(30))
        .expect("a corrupt chain must dead-letter the task, not wedge it");
    match rec.status {
        TaskStatus::Failed(c) => assert!(c.matches("dead-letter"), "{c}"),
        other => panic!("expected Failed via quarantine, got {other:?}"),
    }
    assert!(cluster.dead_letter_total() > 0, "quarantine counter moved");
    assert!(
        cluster
            .dead_letters("wf")
            .iter()
            .any(|d| d.msg.operation == "AwakeFiber"),
        "the failing resume is what got quarantined"
    );
    cluster.shutdown();
}

/// A mutated persisted snapshot (bit-flipped base record) is a typed
/// deserialize error on load, which takes the same dead-letter path.
#[test]
fn mutated_snapshot_dead_letters_the_task() {
    let cluster = Cluster::new();
    cluster.set_recovery(RecoveryConfig {
        redelivery_budget: 3,
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(5),
        ..RecoveryConfig::default()
    });
    let store = Arc::new(MemStore::new());
    let wf = WorkflowService::builder(&cluster, "wf")
        .source(HOLD_WF)
        .store(store.clone())
        .config(quiet_config())
        .instances(0, 2)
        .deploy()
        .unwrap();
    let task = wf.start("hold", vec![], None).unwrap();
    wait_for_suspension(&wf);

    // Flip bytes in the middle of the base snapshot payload and bump
    // the meta version so the node cache misses and actually re-loads
    // the mangled record from the store.
    let vkey = format!("fiber-v/{task}/f0");
    let meta = store.get(&vkey).unwrap().expect("meta exists");
    let mut version = [0u8; 8];
    version.copy_from_slice(&meta[0..8]);
    let mut bumped = meta.clone();
    bumped[0..8].copy_from_slice(&(u64::from_le_bytes(version) + 100).to_le_bytes());
    store.put(&vkey, &bumped).unwrap();

    let bkey = format!("fiber/{task}/f0");
    let mut snap = store.get(&bkey).unwrap().expect("base snapshot exists");
    let mid = snap.len() / 2;
    let end = (mid + 8).min(snap.len());
    for b in &mut snap[mid..end] {
        *b ^= 0xA5;
    }
    store.put(&bkey, &snap).unwrap();

    awake(&cluster, &task);
    let rec = wf
        .wait(&task, Duration::from_secs(30))
        .expect("a mangled snapshot must dead-letter the task, not wedge it");
    match rec.status {
        TaskStatus::Failed(c) => assert!(c.matches("dead-letter"), "{c}"),
        other => panic!("expected Failed via quarantine, got {other:?}"),
    }
    cluster.shutdown();
}

/// Regression for the `read_version` slice-copy panic: a truncated
/// task-variable version record (fewer than 8 bytes) must parse
/// length-tolerantly — the workflow still resumes and completes instead
/// of panicking the instance that reads it.
#[test]
fn truncated_taskvar_version_record_does_not_panic() {
    let cluster = Cluster::new();
    let store = Arc::new(MemStore::new());
    let wf = WorkflowService::builder(&cluster, "wf")
        .source(
            "(deftaskvar flag \"adversarial test variable\")
             (defun main ()
               (setf ^flag^ 7)
               (yield {:reason :hold})
               ^flag^)",
        )
        .store(store.clone())
        .config(quiet_config())
        .instances(0, 2)
        .deploy()
        .unwrap();
    let task = wf.start("main", vec![], None).unwrap();
    wait_for_suspension(&wf);

    // Truncate the version record to 3 bytes (little-endian prefix of
    // version 1): the tolerant parse reads a low version, the data
    // record is still present, and the read succeeds.
    store
        .put(&format!("taskvar-v/{task}/flag"), &[1u8, 0, 0])
        .unwrap();

    awake(&cluster, &task);
    let rec = wf
        .wait(&task, Duration::from_secs(30))
        .expect("a truncated version record must not wedge or panic");
    assert_eq!(rec.status, TaskStatus::Completed(Value::Int(7)));
    cluster.shutdown();
}
