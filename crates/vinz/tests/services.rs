//! deflink stub generation, non-blocking service requests, and the
//! defhandler/with-handler condition actions — §3.2, §3.3, §3.7.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bluebox::{Cluster, Fault};
use gozer_lang::Value;
use gozer_xml::ServiceDescription;
use vinz::testing::register_value_service;
use vinz::{TaskStatus, WorkflowService};

const TIMEOUT: Duration = Duration::from_secs(60);

fn security_manager_desc() -> ServiceDescription {
    ServiceDescription::new("SecurityManager", "urn:security-manager-service")
        .operation(
            "ListSessions",
            "Returns a list of sessions visible to the caller.",
            &[("FilterParams", "string"), ("WithinRealm", "string")],
        )
        .operation("Square", "Squares the field n.", &[("n", "int")])
        .unsupported_operation("NativeOnly", "JNI-backed; cannot be bridged.")
}

fn cluster_with_sm() -> Arc<Cluster> {
    let cluster = Cluster::new();
    register_value_service(
        &cluster,
        "SecurityManager",
        Some(security_manager_desc()),
        |op, req| match op {
            "ListSessions" => {
                let realm = req
                    .as_map()
                    .and_then(|m| m.get(&Value::str("WithinRealm")).cloned())
                    .unwrap_or(Value::Nil);
                Ok(Value::list(vec![
                    Value::str("session-1"),
                    Value::str("session-2"),
                    realm,
                ]))
            }
            "Square" => {
                let n = req
                    .as_map()
                    .and_then(|m| m.get(&Value::str("n")).cloned())
                    .and_then(|v| v.as_int())
                    .ok_or_else(|| Fault::new("{urn:sm}BadArg", "need n"))?;
                Ok(Value::Int(n * n))
            }
            other => Err(Fault::new("{urn:sm}NoSuchOp", other)),
        },
    );
    cluster.spawn_instances("SecurityManager", 0, 2);
    cluster
}

fn deploy(cluster: &Arc<Cluster>, source: &str) -> WorkflowService {
    WorkflowService::builder(cluster, "wf")
        .source(source)
        .instances(0, 2)
        .instances(1, 2)
        .deploy()
        .unwrap()
}

#[test]
fn deflink_generates_working_stubs() {
    // The Listing 2 shape: deflink at load, generated -Method function
    // with keyword args, non-blocking call, response parse.
    let cluster = cluster_with_sm();
    let wf = deploy(
        &cluster,
        "(deflink SM :wsdl \"urn:security-manager-service\" :port \"SecurityManager\")
         (defun main ()
           (SM-ListSessions-Method :FilterParams \"all\" :WithinRealm \"prod\"))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(
        result,
        Value::list(vec![
            Value::str("session-1"),
            Value::str("session-2"),
            Value::str("prod"),
        ])
    );
    cluster.shutdown();
}

#[test]
fn deflink_preserves_documentation() {
    let cluster = cluster_with_sm();
    let wf = deploy(
        &cluster,
        "(deflink SM :wsdl \"urn:security-manager-service\" :port \"SecurityManager\")
         (defun main () (doc #'SM-ListSessions-Method))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(
        result,
        Value::str("Returns a list of sessions visible to the caller.")
    );
    cluster.shutdown();
}

#[test]
fn nonblocking_call_yields_and_resumes() {
    // The call must go through a yield + ResumeFromCall round trip, not
    // block the instance.
    let cluster = cluster_with_sm();
    let wf = deploy(
        &cluster,
        "(deflink SM :wsdl \"urn:security-manager-service\" :port \"SecurityManager\")
         (defun main (n) (SM-Square-Method :n n))",
    );
    let obs = wf.obs();
    obs.set_tracing(true);
    let result = wf.call("main", vec![Value::Int(9)], TIMEOUT).unwrap();
    assert_eq!(result, Value::Int(81));
    let events = obs.trace_view().events();
    assert!(
        events
            .iter()
            .any(|e| matches!(&e.kind, vinz::TraceKind::ServiceCall(s) if s.contains("Square"))),
        "async dispatch recorded"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(&e.kind, vinz::TraceKind::Resume(r) if r == "service-call")),
        "ResumeFromCall recorded"
    );
    cluster.shutdown();
}

#[test]
fn unsupported_operation_fails_at_compile_time() {
    let cluster = cluster_with_sm();
    // Merely loading a workflow that *references* the unsupported op
    // fails at compile (load) time — deploy reports the error.
    let err = WorkflowService::builder(&cluster, "wf-bad")
        .source(
            "(deflink SM :wsdl \"urn:security-manager-service\" :port \"SecurityManager\")
             (defun main () (SM-NativeOnly))",
        )
        .deploy();
    let err = match err {
        Err(e) => e,
        Ok(_) => panic!("deploy should fail at compile time"),
    };
    assert!(err.to_string().contains("cannot be invoked"), "{err}");
    // But a workflow that never calls it loads fine.
    let wf = deploy(
        &cluster,
        "(deflink SM :wsdl \"urn:security-manager-service\" :port \"SecurityManager\")
         (defun main () :loaded)",
    );
    assert_eq!(wf.call("main", vec![], TIMEOUT).unwrap(), Value::keyword("loaded"));
    cluster.shutdown();
}

#[test]
fn service_fault_becomes_condition_with_qname_designator() {
    let cluster = cluster_with_sm();
    let wf = deploy(
        &cluster,
        "(deflink SM :wsdl \"urn:security-manager-service\" :port \"SecurityManager\")
         (defun main ()
           ;; Square with a missing arg faults; catch by QName.
           (restart-case
             (handler-bind (lambda (c)
                             (if (condition-matches? c \"{urn:sm}BadArg\")
                                 (invoke-restart 'fallback :caught)
                                 nil))
               (SM-Square-Method))
             (fallback (v) v)))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(result, Value::keyword("caught"));
    cluster.shutdown();
}

#[test]
fn defhandler_ignore_action() {
    // Listing 6's ignore-handler: failures in an "optional" operation are
    // swallowed through the deflink-bound ignore restart.
    let cluster = cluster_with_sm();
    let wf = deploy(
        &cluster,
        "(deflink SM :wsdl \"urn:security-manager-service\" :port \"SecurityManager\")
         (defhandler ignore-handler
           :java (\"condition\")
           :action ignore)
         (defun main ()
           (list (with-handler ignore-handler (SM-Square-Method)) ; faults -> nil
                 :continued))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(
        result,
        Value::list(vec![Value::Nil, Value::keyword("continued")])
    );
    cluster.shutdown();
}

#[test]
fn defhandler_retry_action_with_count() {
    // A service that fails twice then succeeds; retry-handler retries.
    let cluster = Cluster::new();
    let attempts = Arc::new(AtomicU64::new(0));
    let attempts2 = attempts.clone();
    register_value_service(
        &cluster,
        "Flaky",
        Some(
            ServiceDescription::new("Flaky", "urn:flaky").operation("Get", "Flaky get.", &[]),
        ),
        move |_op, _req| {
            let n = attempts2.fetch_add(1, Ordering::SeqCst);
            if n < 2 {
                Err(Fault::new("{urn:flaky}Transient", "try again"))
            } else {
                Ok(Value::Int(42))
            }
        },
    );
    cluster.spawn_instances("Flaky", 0, 1);
    let wf = deploy(
        &cluster,
        "(deflink FL :wsdl \"urn:flaky\" :port \"Flaky\")
         (defhandler retry-handler
           :code (\"{urn:flaky}Transient\")
           :action retry
           :count 5)
         (defun main ()
           (with-handler retry-handler (FL-Get-Method)))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(result, Value::Int(42));
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
    cluster.shutdown();
}

#[test]
fn defhandler_retry_count_exhausts() {
    // Always-failing service: after :count retries the handler declines
    // and the task fails.
    let cluster = Cluster::new();
    register_value_service(
        &cluster,
        "Broken",
        Some(ServiceDescription::new("Broken", "urn:broken").operation("Get", "", &[])),
        |_op, _req| -> Result<Value, Fault> {
            Err(Fault::new("{urn:broken}Always", "nope"))
        },
    );
    cluster.spawn_instances("Broken", 0, 1);
    let wf = deploy(
        &cluster,
        "(deflink BR :wsdl \"urn:broken\" :port \"Broken\")
         (defhandler retry-handler
           :code (\"{urn:broken}Always\")
           :action retry
           :count 2)
         (defun main ()
           (with-handler retry-handler (BR-Get-Method)))",
    );
    let task = wf.start("main", vec![], None).unwrap();
    let rec = wf.wait(&task, TIMEOUT).unwrap();
    match rec.status {
        TaskStatus::Failed(c) => assert!(c.matches("{urn:broken}Always"), "{c}"),
        other => panic!("expected failure, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn defhandler_terminate_action() {
    let cluster = cluster_with_sm();
    let wf = deploy(
        &cluster,
        "(deflink SM :wsdl \"urn:security-manager-service\" :port \"SecurityManager\")
         (defhandler fatal-handler
           :code (\"{urn:sm}BadArg\")
           :action terminate)
         (defun main ()
           (with-handler fatal-handler (SM-Square-Method)))",
    );
    let task = wf.start("main", vec![], None).unwrap();
    let rec = wf.wait(&task, TIMEOUT).unwrap();
    assert!(matches!(rec.status, TaskStatus::Terminated(_)));
    cluster.shutdown();
}

#[test]
fn sync_call_from_future_thread() {
    // §3.2: service requests from a future's background thread
    // automatically become synchronous (no migration possible).
    let cluster = cluster_with_sm();
    let wf = deploy(
        &cluster,
        "(deflink SM :wsdl \"urn:security-manager-service\" :port \"SecurityManager\")
         (defun main ()
           (touch (future (SM-Square-Method :n 6))))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(result, Value::Int(36));
    cluster.shutdown();
}

#[test]
fn for_each_from_future_thread_forks_a_fiber() {
    // §3.5: for-each on a background thread forks a fiber and joins it
    // synchronously.
    let cluster = cluster_with_sm();
    let wf = deploy(
        &cluster,
        "(defun main ()
           (touch (future (apply #'+ (for-each (i in (range 4)) (* i i))))))",
    );
    let result = wf.call("main", vec![], TIMEOUT).unwrap();
    assert_eq!(result, Value::Int(14));
    cluster.shutdown();
}
