//! Phase-attribution acceptance suite: every completed task's
//! wall-clock must decompose into named phases that sum back to its
//! measured latency — exactly at the tracker (the ledger chains
//! instants), and within nanosecond accounting at the histogram family
//! — with `durability_hold` appearing only under a deferred-durability
//! store. Plus the live introspection endpoint: `/metrics` over HTTP
//! must be byte-identical to the in-process exporter.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bluebox::Cluster;
use gozer_lang::Value;
use gozer_obs::Phase;
use vinz::testing::{chaos_seeds, repro_command, ChaosConfig, ChaosPlan};
use vinz::{LogStore, StateStore, TaskStatus, WorkflowService};

const FOR_EACH_WF: &str = "
(defun main (n)
  (apply #'+ (for-each (i in (range n)) (* i i))))
";

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "gozer-phases-it-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ))
}

/// Poll the tracker until every record is final and the set stops
/// changing (chaos-duplicated Starts can register stragglers).
fn drain_stragglers(workflow: &WorkflowService) {
    let obs = workflow.obs();
    let drain = Instant::now();
    let mut stable = 0u32;
    let mut last = usize::MAX;
    while drain.elapsed() < Duration::from_secs(10) && stable < 3 {
        let records = obs.tracker().all();
        if records.len() == last && records.iter().all(|r| r.status.is_final()) {
            stable += 1;
        } else {
            stable = 0;
        }
        last = records.len();
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One seeded run; returns an error string on any ledger violation.
fn chaos_run_ledgers(seed: u64) -> Result<(), String> {
    let cluster = Cluster::new();
    let plan = ChaosPlan::new(ChaosConfig::survivability(seed));
    cluster.set_chaos(plan.clone());
    let workflow = WorkflowService::builder(&cluster, "workflow")
        .source(FOR_EACH_WF)
        .instances(0, 2)
        .instances(1, 2)
        .deploy()
        .map_err(|e| format!("seed {seed}: deploy failed: {e}"))?;
    let obs = workflow.obs();
    obs.set_tracing(true);
    let before = obs.snapshot();
    let task = workflow
        .start("main", vec![Value::Int(10)], None)
        .map_err(|e| format!("seed {seed}: start failed: {e}"))?;
    let record = workflow.wait(&task, Duration::from_secs(45));
    drain_stragglers(&workflow);

    let mut err = None;
    match record.map(|r| r.status) {
        Some(TaskStatus::Completed(v)) if v == Value::Int((0..10).map(|i| i * i).sum()) => {}
        other => err = Some(format!("seed {seed}: unexpected outcome {other:?}")),
    }
    let mut finals = 0usize;
    for rec in obs.tracker().all() {
        if !rec.status.is_final() {
            continue;
        }
        finals += 1;
        // The headline invariant: the ledger telescopes to exactly the
        // task's measured latency — zero tolerance, the same instants
        // chain through every roll.
        if rec.phases.total() != rec.duration() {
            err.get_or_insert(format!(
                "seed {seed}: task {} phases sum {:?} != latency {:?} ({})",
                rec.id,
                rec.phases.total(),
                rec.duration(),
                rec.phases.render(),
            ));
        }
        if rec.current_phase.is_some() {
            err.get_or_insert(format!("seed {seed}: task {} ledger left open", rec.id));
        }
        // Admission lives outside the tracker window, always.
        if !rec.phases.get(Phase::Admission).is_zero() {
            err.get_or_insert(format!(
                "seed {seed}: task {} banked admission time inside its ledger",
                rec.id
            ));
        }
    }
    if finals == 0 {
        err.get_or_insert(format!("seed {seed}: no final task records"));
    }
    // Histogram-level accounting: summed phase observations equal
    // summed latency observations. Both sides are exact nanosecond
    // totals of the same closed ledgers, so the slack is zero; keep a
    // one-nanosecond-per-task allowance for future rounding changes.
    let delta = obs.snapshot().diff(&before);
    let latency = delta
        .histogram("gozer_task_latency_seconds{service=\"workflow\"}")
        .map(|h| (h.count, h.sum_nanos))
        .unwrap_or((0, 0));
    let mut phase_nanos = 0u64;
    for phase in Phase::ALL {
        if phase == Phase::Admission {
            continue;
        }
        if let Some(h) = delta.histogram(&format!(
            "gozer_task_phase_seconds{{phase=\"{}\",service=\"workflow\"}}",
            phase.as_str()
        )) {
            phase_nanos += h.sum_nanos;
        }
    }
    if latency.1.abs_diff(phase_nanos) > latency.0 {
        err.get_or_insert(format!(
            "seed {seed}: phase histograms sum to {phase_nanos}ns but latency observed {}ns \
             across {} task(s)",
            latency.1, latency.0
        ));
    }
    cluster.shutdown();
    match err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// The tentpole acceptance test: across the 16-seed chaos sweep, every
/// finished task's phase durations sum to exactly its latency, the
/// ledger is closed, and the phase histogram family accounts for the
/// latency histogram nanosecond for nanosecond.
#[test]
fn chaos_sweep_phase_ledgers_sum_to_latency() {
    let mut failures = Vec::new();
    for &seed in &chaos_seeds(16) {
        if let Err(e) = chaos_run_ledgers(seed) {
            failures.push(e);
        }
    }
    if !failures.is_empty() {
        let repros: Vec<String> = failures
            .iter()
            .filter_map(|f| f.split(':').next())
            .filter_map(|s| s.strip_prefix("seed "))
            .filter_map(|s| s.trim().parse::<u64>().ok())
            .map(|seed| {
                format!(
                    "    {}",
                    repro_command(
                        "-p vinz --test phases",
                        "chaos_sweep_phase_ledgers_sum_to_latency",
                        seed
                    )
                )
            })
            .collect();
        panic!(
            "{} seed(s) failed:\n  {}\n  replay with:\n{}",
            failures.len(),
            failures.join("\n  "),
            repros.join("\n")
        );
    }
}

/// Run the workflow once on `store` (or the default MemStore) and
/// return the root task's durability_hold total.
fn hold_time_under(store: Option<Arc<dyn StateStore>>) -> Duration {
    let cluster = Cluster::new();
    let mut builder = WorkflowService::builder(&cluster, "workflow")
        .source(FOR_EACH_WF)
        .instances(0, 2)
        .instances(1, 2);
    if let Some(store) = store {
        builder = builder.store(store);
    }
    let workflow = builder.deploy().unwrap();
    let task = workflow.start("main", vec![Value::Int(8)], None).unwrap();
    let rec = workflow.wait(&task, Duration::from_secs(45)).expect("task finishes");
    assert_eq!(rec.status, TaskStatus::Completed(Value::Int((0..8).map(|i| i * i).sum())));
    let rec = workflow.obs().tracker().get(&task).unwrap();
    cluster.shutdown();
    rec.phases.get(Phase::DurabilityHold)
}

/// `durability_hold` is real attribution, not noise: a group-commit
/// LogStore (deferred durability tickets park fiber-bound messages)
/// banks hold time; the synchronous MemStore banks none, ever.
#[test]
fn durability_hold_nonzero_under_logstore_zero_under_memstore() {
    assert_eq!(
        hold_time_under(None),
        Duration::ZERO,
        "MemStore is synchronous: no message ever parks on a watermark"
    );
    let dir = temp_dir("hold");
    let store = LogStore::builder(&dir)
        .group_commit_window(Duration::from_millis(2))
        .build()
        .unwrap();
    let held = hold_time_under(Some(Arc::new(store)));
    assert!(
        held > Duration::ZERO,
        "group-commit LogStore must park at least one message on a durability ticket"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(format!("GET {path} HTTP/1.1\r\nHost: gozer\r\n\r\n").as_bytes())
        .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let (head, body) = resp.split_once("\r\n\r\n").expect("http response head");
    (head.lines().next().unwrap().to_string(), body.to_string())
}

/// The introspection endpoint serves the same exporter the in-process
/// handle renders: for a quiesced deployment, `/metrics` over HTTP is
/// byte-identical to `obs().export_text()`. Also exercises `/healthz`,
/// `/tasks`, and `/timeline/<id>` against a real run.
#[test]
fn introspect_http_matches_in_process_exporter() {
    let cluster = Cluster::new();
    let workflow = WorkflowService::builder(&cluster, "workflow")
        .source(FOR_EACH_WF)
        .instances(0, 2)
        .instances(1, 2)
        .introspect("127.0.0.1:0")
        .deploy()
        .unwrap();
    let addr = workflow.introspect_addr().expect("introspect server bound");
    let obs = workflow.obs();
    obs.set_tracing(true);
    let task = workflow.start("main", vec![Value::Int(6)], None).unwrap();
    let rec = workflow.wait(&task, Duration::from_secs(45)).expect("task finishes");
    assert!(rec.status.is_final());
    drain_stragglers(&workflow);

    // Byte identity: scrape and render between queue-quiet moments.
    // Closure-backed samples (queue gauges, drop counters) can tick
    // between the two reads, so retry until a stable pair appears.
    let mut matched = false;
    for _ in 0..20 {
        let (status, scraped) = http_get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        if scraped == obs.export_text() {
            matched = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(matched, "/metrics never matched export_text() byte for byte");

    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK", "healthy deployment: {health}");
    assert!(health.starts_with("ok\n"));
    assert!(health.contains("reaper: alive"));
    assert!(health.contains("instances: 4/4"));

    let (status, tasks) = http_get(addr, "/tasks");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let row = tasks
        .lines()
        .find(|l| l.starts_with(&format!("{task} ")))
        .unwrap_or_else(|| panic!("no /tasks row for {task} in:\n{tasks}"));
    assert!(row.contains(" completed "), "row: {row}");
    assert!(row.contains(" - "), "final task shows no open phase: {row}");

    let (status, timeline) = http_get(addr, &format!("/timeline/{task}"));
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(timeline.starts_with(&format!("task {task}")));
    assert!(timeline.contains("critical path:"), "timeline:\n{timeline}");
    assert!(timeline.contains("critical totals:"));

    let (status, _) = http_get(addr, "/timeline/task-none");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // Shutdown kills the cluster but the server lives with the
    // deployment handle: /healthz now reports degraded.
    cluster.shutdown();
    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 503 Service Unavailable", "{health}");
    assert!(health.starts_with("degraded\n"));
}
