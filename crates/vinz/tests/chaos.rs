//! Randomized survivability under deterministic chaos (§3.2).
//!
//! Every test here is a pure function of `(workload, seed)`: the fault
//! schedule is derived by hashing the seed with stable message content,
//! never from wall-clock time or OS scheduling. A failing seed prints a
//! one-line repro command; run it to replay the exact same schedule.
//!
//! Knobs: `CHAOS_SEED=<n>` replays one seed, `CHAOS_SEEDS=<count>`
//! resizes the sweep (default 16, the CI width).

use gozer_lang::Value;
use vinz::testing::{
    chaos_seeds, repro_command, run_workflow_under_chaos, ChaosConfig, ChaosPlan,
};

/// Listing 1's distributed shape: `for-each` fans each iteration out as
/// its own fiber, so chaos hits the spawn, awake, and join paths.
const FOR_EACH_WF: &str = "
(defun main (n)
  (apply #'+ (for-each (i in (range n)) (* i i))))
";

fn sum_squares(n: i64) -> Value {
    Value::Int((0..n).map(|i| i * i).sum())
}

/// The `parallel` variant: fixed fan-out of concurrent fibers whose
/// results must come back in order despite reordering faults.
const PARALLEL_WF: &str = "
(defun main ()
  (apply #'+ (parallel (* 1 1) (* 2 2) (* 3 3) (* 4 4) (* 5 5))))
";

/// Run `(source, function, args)` against `expected` across the sweep,
/// collecting per-seed failures into one panic that lists a repro
/// command for each failing seed.
fn sweep(
    test_name: &str,
    source: &str,
    function: &str,
    args: Vec<Value>,
    expected: &Value,
    config_for: impl Fn(u64) -> ChaosConfig,
) {
    let seeds = chaos_seeds(16);
    let mut failures = Vec::new();
    let mut recovered = 0usize;
    for &seed in &seeds {
        match run_workflow_under_chaos(source, function, args.clone(), config_for(seed)) {
            Ok(run) => {
                if run.recovered {
                    recovered += 1;
                }
                if run.value != *expected {
                    failures.push(format!(
                        "seed {seed}: wrong value {:?} (expected {:?}, faults {:?})",
                        run.value, expected, run.stats
                    ));
                }
            }
            Err(e) => failures.push(e),
        }
    }
    if !failures.is_empty() {
        let repros: Vec<String> = failures
            .iter()
            .filter_map(|f| f.split(':').next())
            .filter_map(|s| s.strip_prefix("seed "))
            .filter_map(|s| s.trim().parse::<u64>().ok())
            .map(|seed| {
                format!(
                    "    {}",
                    repro_command("-p vinz --test chaos", test_name, seed)
                )
            })
            .collect();
        panic!(
            "{}/{} seeds failed:\n  {}\n  replay with:\n{}",
            failures.len(),
            seeds.len(),
            failures.join("\n  "),
            repros.join("\n")
        );
    }
    // Not an assertion — crash scheduling decides whether any run needed
    // the recovery path — but worth surfacing in `--nocapture` output.
    eprintln!(
        "{test_name}: {} seeds passed ({} via crash recovery)",
        seeds.len(),
        recovered
    );
}

/// The headline sweep: 16 seeds of the full survivability preset (drops,
/// delays, duplicates, reordering, instance and node crashes) against
/// the Listing-1 workflow. Every seed must produce the exact fault-free
/// answer, either straight through or by resuming persisted
/// continuations on fresh instances.
#[test]
fn survives_sixteen_seeds_for_each() {
    sweep(
        "survives_sixteen_seeds_for_each",
        FOR_EACH_WF,
        "main",
        vec![Value::Int(12)],
        &sum_squares(12),
        ChaosConfig::survivability,
    );
}

/// Same preset, `parallel` construct: concurrent sibling fibers joined
/// positionally.
#[test]
fn survives_sixteen_seeds_parallel() {
    sweep(
        "survives_sixteen_seeds_parallel",
        PARALLEL_WF,
        "main",
        vec![],
        &Value::Int(55),
        ChaosConfig::survivability,
    );
}

/// At-least-once must not become more-than-once in effect: under the
/// duplication/reorder-heavy preset (no crashes), redelivered and
/// duplicated messages re-run handlers that are idempotent by fiber
/// version, so the sum comes out exact — never double-counted.
#[test]
fn turbulence_never_double_applies() {
    sweep(
        "turbulence_never_double_applies",
        FOR_EACH_WF,
        "main",
        vec![Value::Int(10)],
        &sum_squares(10),
        ChaosConfig::turbulence,
    );
}

/// The acceptance criterion made executable: two plans built from the
/// same seed make bit-identical decisions at every fault point for a
/// large corpus of message keys, and a third plan with a different seed
/// disagrees somewhere. No `Instant::now()`, no scheduling dependence.
#[test]
fn same_seed_same_fault_schedule() {
    let a = ChaosPlan::new(ChaosConfig::survivability(0xB1EB));
    let b = ChaosPlan::new(ChaosConfig::survivability(0xB1EB));
    let c = ChaosPlan::new(ChaosConfig::survivability(0xB1EC));
    let mut c_differs = false;
    for key in 0..2000u64 {
        for redeliveries in 0..3 {
            assert_eq!(
                a.decide_delivery(key, redeliveries),
                b.decide_delivery(key, redeliveries),
                "delivery decision diverged at key {key}"
            );
        }
        assert_eq!(a.decide_crash_after(key), b.decide_crash_after(key));
        assert_eq!(a.decide_duplicate(key), b.decide_duplicate(key));
        assert_eq!(a.decide_reorder(key), b.decide_reorder(key));
        assert_eq!(a.decide_node_scope(key), b.decide_node_scope(key));
        assert_eq!(a.decide_reply_loss(key), b.decide_reply_loss(key));
        c_differs |= a.decide_delivery(key, 0) != c.decide_delivery(key, 0)
            || a.decide_duplicate(key) != c.decide_duplicate(key)
            || a.decide_crash_after(key) != c.decide_crash_after(key);
    }
    assert!(c_differs, "a different seed must yield a different schedule");
}

/// End-to-end determinism: the same seed run twice injects the same
/// *decided* schedule. Thread interleaving varies which messages exist
/// run to run, so raw fault counts may differ — what must agree is the
/// outcome (the exact fault-free value) and that both runs were really
/// under fire.
#[test]
fn same_seed_reproduces_end_to_end() {
    let seed = chaos_seeds(1)[0];
    let args = vec![Value::Int(8)];
    let first =
        run_workflow_under_chaos(FOR_EACH_WF, "main", args.clone(), ChaosConfig::turbulence(seed))
            .unwrap_or_else(|e| {
                panic!(
                    "{e}\n  replay with: {}",
                    repro_command("-p vinz --test chaos", "same_seed_reproduces_end_to_end", seed)
                )
            });
    let second =
        run_workflow_under_chaos(FOR_EACH_WF, "main", args, ChaosConfig::turbulence(seed))
            .unwrap_or_else(|e| {
                panic!(
                    "{e}\n  replay with: {}",
                    repro_command("-p vinz --test chaos", "same_seed_reproduces_end_to_end", seed)
                )
            });
    assert_eq!(first.value, sum_squares(8));
    assert_eq!(first.value, second.value);
    assert!(
        first.stats.total() > 0 && second.stats.total() > 0,
        "turbulence preset should actually inject faults \
         (first {:?}, second {:?})",
        first.stats,
        second.stats
    );
}

/// A disarmed plan is a no-op: the off preset injects nothing and the
/// workflow completes without ever taking the recovery path.
#[test]
fn off_preset_injects_nothing() {
    let run = run_workflow_under_chaos(
        FOR_EACH_WF,
        "main",
        vec![Value::Int(6)],
        ChaosConfig::off(7),
    )
    .expect("fault-free run completes");
    assert_eq!(run.value, sum_squares(6));
    assert_eq!(run.stats.total(), 0, "off preset injected {:?}", run.stats);
    assert!(!run.recovered);
}
