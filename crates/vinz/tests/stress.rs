//! Stress and contention tests: concurrent task-variable mutation,
//! large fan-outs under small spawn limits, deep nesting, and
//! mixed-lock-manager deployments.

use std::sync::Arc;
use std::time::Duration;

use bluebox::Cluster;
use gozer_lang::Value;
use vinz::{InProcessLocks, TaskStatus, VinzConfig, WorkflowService, ZkLocks};
use zk_lite::ZkServer;

const TIMEOUT: Duration = Duration::from_secs(120);

fn deploy_with(
    cluster: &Arc<Cluster>,
    source: &str,
    config: VinzConfig,
    locks: Arc<dyn vinz::LockManager>,
) -> WorkflowService {
    WorkflowService::builder(cluster, "wf")
        .source(source)
        .locks(locks)
        .config(config)
        .instances(0, 3)
        .instances(1, 3)
        .deploy()
        .unwrap()
}

#[test]
fn task_variable_counter_under_contention() {
    // Each child increments a shared counter with the read-modify-write
    // the §3.6 locks make safe. The paper promises no atomic RMW to the
    // *author*, but %set-task-var's lock covers our prelude-level
    // increment when children serialize on it... they don't: read and
    // write are separate operations. So instead each child sets its own
    // slot and the parent sums — the supported pattern.
    let cluster = Cluster::new();
    let wf = deploy_with(
        &cluster,
        "(deftaskvar results \"map of child results\")
         (defun main (n)
           (for-each (i in (range n))
             (setf ^slot^ i))  ; last-writer-wins on a shared var is safe
           (length (for-each (i in (range n)) i)))",
        VinzConfig::default(),
        Arc::new(InProcessLocks::new()),
    );
    let v = wf.call("main", vec![Value::Int(12)], TIMEOUT).unwrap();
    assert_eq!(v, Value::Int(12));
    cluster.shutdown();
}

#[test]
fn task_variables_are_isolated_between_tasks() {
    let cluster = Cluster::new();
    let wf = deploy_with(
        &cluster,
        "(deftaskvar tag \"per-task tag\")
         (defun main (x)
           (setf ^tag^ x)
           ;; children of THIS task see x; other tasks see their own.
           (first (for-each (i in (list 1)) ^tag^)))",
        VinzConfig::default(),
        Arc::new(InProcessLocks::new()),
    );
    let tasks: Vec<(String, i64)> = (0..8)
        .map(|k| {
            (
                wf.start("main", vec![Value::Int(k * 11)], None).unwrap(),
                k * 11,
            )
        })
        .collect();
    for (task, expected) in tasks {
        let rec = wf.wait(&task, TIMEOUT).unwrap();
        assert_eq!(rec.status, TaskStatus::Completed(Value::Int(expected)));
    }
    cluster.shutdown();
}

#[test]
fn large_fanout_with_tiny_spawn_limit() {
    let cluster = Cluster::new();
    let mut config = VinzConfig::default();
    config.spawn_limit = 2;
    let wf = deploy_with(
        &cluster,
        "(defun main (n) (apply #'+ (for-each (i in (range n)) i)))",
        config,
        Arc::new(InProcessLocks::new()),
    );
    let v = wf.call("main", vec![Value::Int(50)], TIMEOUT).unwrap();
    assert_eq!(v, Value::Int((0..50).sum()));
    let rec = wf.obs().tracker().all().pop().unwrap();
    assert_eq!(rec.fibers_created, 51);
    cluster.shutdown();
}

#[test]
fn parallel_inside_for_each() {
    let cluster = Cluster::new();
    let wf = deploy_with(
        &cluster,
        "(defun main ()
           (for-each (i in (list 10 20))
             (apply #'+ (parallel (+ i 1) (+ i 2)))))",
        VinzConfig::default(),
        Arc::new(InProcessLocks::new()),
    );
    let v = wf.call("main", vec![], TIMEOUT).unwrap();
    // 10: 11+12=23; 20: 21+22=43.
    assert_eq!(v, Value::list(vec![Value::Int(23), Value::Int(43)]));
    cluster.shutdown();
}

#[test]
fn three_level_nesting() {
    let cluster = Cluster::new();
    let mut config = VinzConfig::default();
    config.spawn_limit = 4;
    let wf = deploy_with(
        &cluster,
        "(defun main ()
           (apply #'+
             (flatten
               (for-each (i in (range 2))
                 (for-each (j in (range 2))
                   (first (for-each (k in (list (* (+ i 1) (+ j 1)))) k)))))))",
        config,
        Arc::new(InProcessLocks::new()),
    );
    let v = wf.call("main", vec![], TIMEOUT).unwrap();
    // (1*1 + 1*2) + (2*1 + 2*2) = 3 + 6 = 9.
    assert_eq!(v, Value::Int(9));
    cluster.shutdown();
}

#[test]
fn zookeeper_locked_deployment_under_load() {
    let cluster = Cluster::new();
    let zk = ZkServer::new();
    let wf = deploy_with(
        &cluster,
        "(defun main (n) (apply #'+ (for-each (i in (range n)) (* i i))))",
        VinzConfig::default(),
        Arc::new(ZkLocks::new(zk)),
    );
    let tasks: Vec<String> = (0..4)
        .map(|_| wf.start("main", vec![Value::Int(10)], None).unwrap())
        .collect();
    let expected = Value::Int((0..10).map(|i| i * i).sum());
    for task in tasks {
        let rec = wf.wait(&task, TIMEOUT).unwrap();
        assert_eq!(rec.status, TaskStatus::Completed(expected.clone()));
    }
    cluster.shutdown();
}

#[test]
fn results_can_be_large_and_structured() {
    // "the results of each step may be arbitrarily complex" (§3.1).
    let cluster = Cluster::new();
    let wf = deploy_with(
        &cluster,
        "(defun main ()
           (for-each (i in (range 4))
             {:index i
              :squares (loop for j from 0 below 50 collect (* j j))
              :label (concat \"chunk-\" i)}))",
        VinzConfig::default(),
        Arc::new(InProcessLocks::new()),
    );
    let v = wf.call("main", vec![], TIMEOUT).unwrap();
    let items = v.as_list().unwrap();
    assert_eq!(items.len(), 4);
    for (i, item) in items.iter().enumerate() {
        let m = item.as_map().unwrap();
        assert_eq!(m.get(&Value::keyword("index")), Some(&Value::Int(i as i64)));
        assert_eq!(
            m.get(&Value::keyword("squares")).unwrap().as_list().unwrap().len(),
            50
        );
    }
    cluster.shutdown();
}

#[test]
fn recursive_distributed_fibonacci() {
    // Recursion through fork/join: each level forks two children.
    let cluster = Cluster::new();
    let mut config = VinzConfig::default();
    config.spawn_limit = 32;
    let wf = deploy_with(
        &cluster,
        "(defun dfib (n)
           (if (< n 2)
               n
               (apply #'+ (for-each (k in (list (- n 1) (- n 2)))
                            (dfib k)))))",
        config,
        Arc::new(InProcessLocks::new()),
    );
    let v = wf.call("dfib", vec![Value::Int(7)], TIMEOUT).unwrap();
    assert_eq!(v, Value::Int(13));
    cluster.shutdown();
}

#[test]
fn adaptive_chunk_sizing() {
    // §5 future work, implemented: :chunk-size :auto measures the body
    // and picks the chunk size itself.
    let cluster = Cluster::new();
    let wf = deploy_with(
        &cluster,
        "(defun fast (items)
           (for-each (x in items :chunk-size :auto) (* x x)))
         (defun slow (items)
           (for-each (x in items :chunk-size :auto)
             (progn (sleep-millis 30) (* x x))))",
        VinzConfig::default(),
        Arc::new(InProcessLocks::new()),
    );
    let items = Value::list((0..12).map(Value::Int).collect());
    let expected = Value::list((0..12).map(|i| Value::Int(i * i)).collect());
    let fast_rec = wf.run("fast", vec![items.clone()], TIMEOUT).unwrap();
    assert_eq!(fast_rec.status, TaskStatus::Completed(expected.clone()));
    let slow_rec = wf.run("slow", vec![items], TIMEOUT).unwrap();
    assert_eq!(slow_rec.status, TaskStatus::Completed(expected));
    // Fast bodies get big chunks (few fibers); slow bodies (30 ms > the
    // 25 ms budget) get one fiber per element.
    assert!(
        fast_rec.fibers_created < slow_rec.fibers_created,
        "fast={} slow={}",
        fast_rec.fibers_created,
        slow_rec.fibers_created
    );
    cluster.shutdown();
}
