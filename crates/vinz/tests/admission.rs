//! Admission-control tests: the gate sheds `Start`s with a *typed*
//! rejection (never a hang), delayed starts admit once pressure clears,
//! and — across a 16-seed chaos sweep — every accepted task still
//! completes exactly once with the right value while shed ones come
//! back as `StartError::Rejected`.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bluebox::{ChaosPlan, Cluster, Message};
use gozer_lang::Value;
use vinz::testing::{chaos_seeds, repro_command, ChaosConfig};
use vinz::{StartError, SupervisorConfig, TaskStatus, VinzConfig, WorkflowService};

const WF: &str = "(defun hold () (yield {:reason :hold}) :released)
(defun main (n) (* n n))";

const TIMEOUT: Duration = Duration::from_secs(30);

fn deploy(cluster: &Arc<Cluster>, config: VinzConfig) -> WorkflowService {
    WorkflowService::builder(cluster, "wf")
        .source(WF)
        .config(config)
        .instances(0, 2)
        .instances(1, 2)
        .deploy()
        .unwrap()
}

fn hold_config(max_inflight: usize, retries: u32) -> VinzConfig {
    VinzConfig {
        max_inflight_tasks: max_inflight,
        admission_retries: retries,
        admission_backoff: Duration::from_millis(2),
        supervision: SupervisorConfig {
            enabled: false,
            ..SupervisorConfig::default()
        },
        ..VinzConfig::default()
    }
}

fn wait_suspended(wf: &WorkflowService, count: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while wf
        .obs()
        .counters()
        .suspended_fibers
        .load(Ordering::Relaxed)
        < count
    {
        assert!(Instant::now() < deadline, "fibers never suspended");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn awake(cluster: &Arc<Cluster>, task: &str) {
    cluster.send(
        Message::new("wf", "AwakeFiber", Vec::new()).header("fiber-id", format!("{task}/f0")),
    );
}

/// With capacity full of held tasks and zero retries, `try_start` is a
/// prompt typed rejection naming the threshold — and admits again once
/// the held tasks finish.
#[test]
fn full_capacity_sheds_with_typed_rejection() {
    let cluster = Cluster::new();
    let wf = deploy(&cluster, hold_config(3, 0));
    let held: Vec<String> = (0..3).map(|_| wf.start("hold", vec![], None).unwrap()).collect();
    wait_suspended(&wf, 3);

    let t0 = Instant::now();
    let shed = wf.try_start("main", vec![Value::Int(5)], None);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "a shed start must return promptly, took {:?}",
        t0.elapsed()
    );
    match shed {
        Err(StartError::Rejected { reason }) => {
            assert!(reason.contains("inflight"), "reason names the signal: {reason}");
        }
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    let obs = wf.obs();
    let counters = obs.counters();
    assert_eq!(counters.admission_rejected.load(Ordering::Relaxed), 1);
    assert_eq!(counters.admission_delayed.load(Ordering::Relaxed), 0);

    // The `start` facade maps the same shed to a recognizable VinzError.
    let err = wf.start("main", vec![Value::Int(5)], None).unwrap_err();
    assert!(err.to_string().contains("admission rejected"), "{err}");

    // Pressure clears → starts are admitted again.
    for t in &held {
        awake(&cluster, t);
    }
    for t in &held {
        let rec = wf.wait(t, TIMEOUT).expect("held task finished");
        assert!(rec.status.is_final());
    }
    let task = wf.try_start("main", vec![Value::Int(5)], None).unwrap();
    let rec = wf.wait(&task, TIMEOUT).unwrap();
    assert_eq!(rec.status, TaskStatus::Completed(Value::Int(25)));

    // The gate's counters are exported through the shared registry.
    let text = cluster.obs().registry.render_text();
    assert!(text.contains("gozer_admission_rejected_total"), "{text}");
    assert!(text.contains("gozer_suspended_fibers"), "{text}");
    cluster.shutdown();
}

/// A start arriving under pressure that clears within the backoff
/// budget is *delayed*, then admitted — counted as delayed, not
/// rejected.
#[test]
fn delayed_start_admits_once_pressure_clears() {
    let cluster = Cluster::new();
    let wf = deploy(&cluster, hold_config(1, 500));
    let held = wf.start("hold", vec![], None).unwrap();
    wait_suspended(&wf, 1);

    let c2 = cluster.clone();
    let h = held.clone();
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        awake(&c2, &h);
    });
    let task = wf
        .try_start("main", vec![Value::Int(4)], None)
        .expect("pressure clears within the budget, start admits");
    releaser.join().unwrap();
    let rec = wf.wait(&task, TIMEOUT).unwrap();
    assert_eq!(rec.status, TaskStatus::Completed(Value::Int(16)));
    let obs = wf.obs();
    let counters = obs.counters();
    assert!(counters.admission_delayed.load(Ordering::Relaxed) >= 1);
    assert_eq!(counters.admission_rejected.load(Ordering::Relaxed), 0);
    cluster.shutdown();
}

/// The 16-seed sweep: under message-level chaos (drops, duplicates,
/// reordering, delays) with capacity mostly consumed by held fibers,
/// concurrent `try_start`s either admit — and then the task completes
/// exactly once with the right value — or shed with a typed rejection.
/// No outcome may be a hang.
#[test]
fn chaos_sweep_accepted_complete_once_shed_are_typed() {
    let seeds = chaos_seeds(16);
    let mut failures = Vec::new();
    for &seed in &seeds {
        if let Err(e) = run_seed(seed) {
            failures.push(format!(
                "seed {seed}: {e}\n  replay: {}",
                repro_command("-p vinz --test admission", "chaos_sweep", seed)
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

fn run_seed(seed: u64) -> Result<(), String> {
    let cluster = Cluster::new();
    cluster.set_chaos(ChaosPlan::new(ChaosConfig::turbulence(seed)));
    // Capacity 4 with 3 held: roughly one quick slot, so concurrent
    // starts genuinely race the gate — some admit, some shed. The gate
    // is advisory under concurrency (checks are not a reservation), so
    // the test asserts outcomes, not an exact acceptance count.
    let wf = deploy(&cluster, hold_config(4, 0));
    // Chaos can duplicate a Start in flight, and Start is not
    // idempotent: each duplicate is a fresh task consuming capacity, so
    // even a held start may shed on unlucky seeds. A typed rejection
    // here is correct gate behaviour — keep what was admitted.
    let mut held = Vec::new();
    let mut held_rejected = 0u64;
    for _ in 0..3 {
        match wf.try_start("hold", vec![], None) {
            Ok(t) => held.push(t),
            Err(StartError::Rejected { .. }) => held_rejected += 1,
            Err(StartError::Failed(e)) => return Err(format!("held start failed: {e}")),
        }
    }
    wait_suspended(&wf, held.len() as u64);

    let wf = Arc::new(wf);
    let mut workers = Vec::new();
    for w in 0..4u8 {
        let wf = wf.clone();
        workers.push(std::thread::spawn(move || {
            let mut outcomes = Vec::new();
            for k in 0..3i64 {
                let n = i64::from(w) * 3 + k + 2;
                let t0 = Instant::now();
                let res = wf.try_start("main", vec![Value::Int(n)], None);
                outcomes.push((n, res, t0.elapsed()));
            }
            outcomes
        }));
    }
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for worker in workers {
        for (n, res, elapsed) in worker.join().expect("worker panicked") {
            if elapsed > Duration::from_secs(31) {
                return Err(format!("try_start({n}) took {elapsed:?} — that is a hang"));
            }
            match res {
                Ok(task) => accepted.push((task, n)),
                Err(StartError::Rejected { .. }) => rejected += 1,
                Err(StartError::Failed(e)) => {
                    return Err(format!("start({n}) failed untyped: {e}"));
                }
            }
        }
    }
    // Every accepted task completes (exactly once: first-final-wins in
    // the tracker; a second completion of the same id is impossible by
    // construction, so completing *at all* with the right value is the
    // assertion) …
    for (task, n) in &accepted {
        let rec = wf
            .wait(task, TIMEOUT)
            .ok_or_else(|| format!("accepted task {task} (n={n}) never finished"))?;
        match rec.status {
            TaskStatus::Completed(Value::Int(v)) if v == n * n => {}
            other => return Err(format!("task {task} (n={n}): wrong outcome {other:?}")),
        }
    }
    // … and the shed count matches the exported counter.
    let obs = wf.obs();
    let counters = obs.counters();
    let counted = counters.admission_rejected.load(Ordering::Relaxed);
    if counted != rejected + held_rejected {
        return Err(format!(
            "rejection counter {counted} != observed rejections {} ({rejected} workers + {held_rejected} held)",
            rejected + held_rejected
        ));
    }
    if accepted.is_empty() && rejected == 0 {
        return Err("no outcomes at all — the harness is broken".into());
    }
    // Held fibers are still suspended (shedding never cancels work) …
    if counters.suspended_fibers.load(Ordering::Relaxed) < held.len() as u64 {
        return Err("held fibers lost their suspended state".into());
    }
    // … and releasing them drains the deployment clean.
    for t in &held {
        awake(&cluster, t);
    }
    for t in &held {
        wf.wait(t, TIMEOUT)
            .ok_or_else(|| format!("held task {t} never released"))?;
    }
    cluster.shutdown();
    Ok(())
}
