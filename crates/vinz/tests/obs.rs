//! Observability under fire: span-tree reconstruction across the chaos
//! sweep. Every injected fault is stamped with the ids of the message it
//! hit, so it must land inside a live task's timeline — a fault the
//! timeline cannot place (a "correlated orphan") is a correlation bug.

use std::time::Duration;

use bluebox::Cluster;
use gozer_lang::Value;
use gozer_obs::{EventKind, TimelineSet};
use vinz::testing::{chaos_seeds, repro_command, ChaosConfig, ChaosPlan};
use vinz::{TaskStatus, WorkflowService};

const FOR_EACH_WF: &str = "
(defun main (n)
  (apply #'+ (for-each (i in (range n)) (* i i))))
";

/// Run one seeded chaos run with full event recording and return the
/// reconstructed timelines plus the root task id. Mirrors the
/// survivability harness: chaos stays armed for the whole run and the
/// recovery layer (lease reaper + supervisor) absorbs every failure.
fn chaos_run_timelines(seed: u64) -> Result<(TimelineSet, String), String> {
    let cluster = Cluster::new();
    let plan = ChaosPlan::new(ChaosConfig::survivability(seed));
    cluster.set_chaos(plan.clone());
    let workflow = WorkflowService::builder(&cluster, "workflow")
        .source(FOR_EACH_WF)
        .instances(0, 2)
        .instances(1, 2)
        .deploy()
        .map_err(|e| format!("seed {seed}: deploy failed: {e}"))?;
    let obs = workflow.obs();
    obs.set_tracing(true);
    let task = workflow
        .start("main", vec![Value::Int(10)], None)
        .map_err(|e| format!("seed {seed}: start failed: {e}"))?;

    let record = workflow.wait(&task, Duration::from_secs(45));
    let timelines = obs.timelines();
    cluster.shutdown();

    match record.map(|r| r.status) {
        Some(TaskStatus::Completed(v)) if v == Value::Int((0..10).map(|i| i * i).sum()) => {
            Ok((timelines, task))
        }
        other => Err(format!("seed {seed}: unexpected outcome {other:?}")),
    }
}

/// The tentpole acceptance test: across the 16-seed sweep, every fault
/// event that names a task attaches to that task's reconstructed
/// timeline, and no correlated event is left orphaned.
#[test]
fn chaos_sweep_faults_attach_to_task_timelines() {
    let mut failures = Vec::new();
    let mut total_attached = 0usize;
    for &seed in &chaos_seeds(16) {
        let (timelines, task) = match chaos_run_timelines(seed) {
            Ok(r) => r,
            Err(e) => {
                failures.push(e);
                continue;
            }
        };
        let Some(timeline) = timelines.task(&task) else {
            failures.push(format!("seed {seed}: no timeline for root task {task}"));
            continue;
        };
        // Every task-correlated fault in the stream must be findable
        // through the timeline's fault view.
        let placed = timeline.faults().len();
        let stamped = timelines
            .tasks
            .iter()
            .map(|t| t.faults().len())
            .sum::<usize>();
        let orphaned: Vec<String> = timelines
            .correlated_orphans()
            .iter()
            .map(|e| format!("{:?} task={:?} fiber={:?}", e.kind, e.task, e.fiber))
            .collect();
        if !orphaned.is_empty() {
            failures.push(format!(
                "seed {seed}: {} correlated orphan event(s): {}",
                orphaned.len(),
                orphaned.join("; ")
            ));
        }
        // Sanity: fault counting is consistent (placed faults are a
        // subset of all stamped faults across tasks).
        assert!(placed <= stamped);
        total_attached += stamped;
    }
    // Positive half of the contract: the survivability preset really
    // injects faults on id-stamped messages, so across the sweep some
    // must have landed inside task timelines — otherwise the orphan
    // check above is vacuous.
    if failures.is_empty() {
        assert!(
            total_attached > 0,
            "no fault event attached to any timeline across the sweep"
        );
        eprintln!(
            "chaos_sweep_faults_attach_to_task_timelines: \
             {total_attached} fault events attached across the sweep"
        );
    }
    if !failures.is_empty() {
        let repros: Vec<String> = failures
            .iter()
            .filter_map(|f| f.split(':').next())
            .filter_map(|s| s.strip_prefix("seed "))
            .filter_map(|s| s.trim().parse::<u64>().ok())
            .map(|seed| {
                format!(
                    "    {}",
                    repro_command(
                        "-p vinz --test obs",
                        "chaos_sweep_faults_attach_to_task_timelines",
                        seed
                    )
                )
            })
            .collect();
        panic!(
            "{} seed(s) failed:\n  {}\n  replay with:\n{}",
            failures.len(),
            failures.join("\n  "),
            repros.join("\n")
        );
    }
}

/// Fault-free span-tree shape: the root fiber f0 forks one child per
/// item, every child span links back to its parent, and the task-level
/// events bracket the whole tree.
#[test]
fn span_tree_reconstructs_fiber_parentage() {
    let cluster = Cluster::new();
    let wf = WorkflowService::builder(&cluster, "workflow")
        .source(FOR_EACH_WF)
        .instances(0, 2)
        .instances(1, 2)
        .deploy()
        .unwrap();
    let obs = wf.obs();
    obs.set_tracing(true);
    let v = wf
        .call("main", vec![Value::Int(5)], Duration::from_secs(60))
        .unwrap();
    assert_eq!(v, Value::Int(30));

    let timelines = obs.timelines();
    assert_eq!(timelines.tasks.len(), 1);
    let t = &timelines.tasks[0];
    let root_id = format!("{}/f0", t.task);
    let root = t.span(&root_id).expect("root fiber span");
    assert_eq!(root.parent, None);
    assert_eq!(root.children.len(), 5, "one fork per item");
    for child in &root.children {
        let span = t.span(child).expect("child span exists");
        assert_eq!(span.parent.as_deref(), Some(root_id.as_str()));
        assert!(
            span.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::FiberDone)),
            "child {child} completed"
        );
    }
    // TaskDone is recorded by whichever fiber finished the task — here
    // the root — so look through the whole timeline.
    assert!(
        t.events
            .iter()
            .chain(t.spans.iter().flat_map(|s| s.events.iter()))
            .any(|e| matches!(e.kind, EventKind::TaskDone { .. })),
        "TaskDone recorded in the timeline"
    );
    assert!(t.faults().is_empty(), "no faults in a fault-free run");
    assert!(timelines.correlated_orphans().is_empty());

    // The rendered report leads with the task header and nests children.
    let rendered = t.render();
    assert!(rendered.starts_with(&format!("task {}\n", t.task)));
    assert!(rendered.contains(&format!("fiber {root_id}")));
    cluster.shutdown();
}

/// In-process version of the `obs-check` CI gate: after one workflow
/// run, the exporter must serve all required metric families with
/// non-zero activity.
#[test]
fn exporter_serves_required_families_after_a_run() {
    let cluster = Cluster::new();
    let wf = WorkflowService::builder(&cluster, "workflow")
        .source(FOR_EACH_WF)
        .instances(0, 2)
        .instances(1, 2)
        .deploy()
        .unwrap();
    let obs = wf.obs();
    let before = obs.snapshot();
    let v = wf
        .call("main", vec![Value::Int(4)], Duration::from_secs(60))
        .unwrap();
    assert_eq!(v, Value::Int(14));

    let text = obs.export_text();
    for family in [
        "bluebox_messages_sent_total",
        "bluebox_messages_delivered_total",
        "bluebox_queue_wait_seconds",
        "bluebox_handler_busy_seconds",
        "vinz_tasks_started_total",
        "vinz_fibers_run_total",
        "vinz_fiber_persists_total",
        "gozer_events_dropped_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family}")),
            "exporter missing family {family}"
        );
    }

    // The snapshot diff isolates this run and yields computable means.
    let delta = obs.snapshot().diff(&before);
    let wait = delta
        .histogram("bluebox_queue_wait_seconds")
        .expect("wait histogram");
    assert!(wait.count > 0, "queue-wait observations recorded");
    assert!(wait.mean().is_some(), "mean queue wait computable");
    let busy = delta
        .histogram("bluebox_handler_busy_seconds")
        .expect("busy histogram");
    assert!(busy.count > 0 && busy.mean().is_some());
    cluster.shutdown();
}
